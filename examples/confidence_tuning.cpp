/**
 * @file
 * Explore the confidence-estimator design space on one workload: JRS
 * counter width, threshold and indexing variant (the knobs §4.2 and
 * §5.1 discuss), reporting PVN and the resulting SEE speedup.
 *
 * Usage: confidence_tuning [workload] [scale]   (default: gcc 0.2)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats_util.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace polypath;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "gcc";
    WorkloadParams params;
    params.scale = argc > 2 ? std::atof(argv[2]) : 0.2;

    Program program = buildWorkload(name, params);
    InterpResult golden = runGolden(program);

    double mono_ipc =
        simulate(program, SimConfig::monopath(), golden).ipc();
    std::printf("workload '%s': monopath IPC %.3f\n\n", name.c_str(),
                mono_ipc);
    std::printf("%-9s %-10s %-9s %-10s %8s %8s %9s\n", "counters",
                "threshold", "indexing", "diverge%", "PVN%", "IPC",
                "speedup%");

    struct Variant
    {
        unsigned bits;
        unsigned threshold;
        bool enhanced;
    };
    const Variant variants[] = {
        {1, 1, true},       // the paper's choice
        {1, 1, false},      // original JRS indexing
        {2, 3, true},
        {4, 15, true},      // JRS's advocated 4-bit counters
        {4, 15, false},
    };

    for (const Variant &v : variants) {
        SimConfig cfg = SimConfig::seeJrs();
        cfg.jrsCounterBits = v.bits;
        cfg.jrsThreshold = v.threshold;
        cfg.enhancedConfidenceIndex = v.enhanced;
        SimResult r = simulate(program, cfg, golden);
        double diverge_pct =
            r.stats.committedBranches
                ? 100.0 * static_cast<double>(
                              r.stats.lowConfidenceBranches) /
                      static_cast<double>(r.stats.committedBranches)
                : 0.0;
        std::printf("%-9u %-10u %-9s %9.1f %8.1f %8.3f %+8.1f\n",
                    v.bits, v.threshold, v.enhanced ? "enhanced" : "orig",
                    diverge_pct, 100 * r.stats.pvn(), r.ipc(),
                    percentChange(mono_ipc, r.ipc()));
    }

    std::printf("\n(PVN = fraction of low-confidence estimates that were "
                "real mispredictions;\n the paper reports 1-bit counters "
                "beating 4-bit on PVN, which drives SEE.)\n");
    return 0;
}
