/**
 * @file
 * Compare SEE against monopath execution on one of the bundled
 * SPECint95-like workloads, reporting the headline statistics the paper
 * discusses in §5.1 (IPC, useless fetches, PVN, path utilisation).
 *
 * Usage: see_vs_monopath [workload] [scale]
 *        (default: go 0.25 — the paper's best case)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats_util.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace polypath;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "go";
    WorkloadParams params;
    params.scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    Program program = buildWorkload(name, params);
    InterpResult golden = runGolden(program);
    std::printf("workload '%s': %llu dynamic instructions\n\n",
                name.c_str(),
                static_cast<unsigned long long>(golden.instructions));

    SimResult mono = simulate(program, SimConfig::monopath(), golden);
    SimResult see = simulate(program, SimConfig::seeJrs(), golden);

    auto row = [](const char *label, double a, double b,
                  const char *fmt) {
        std::printf("  %-28s", label);
        std::printf(fmt, a);
        std::printf("  ");
        std::printf(fmt, b);
        std::printf("\n");
    };

    std::printf("  %-28s%12s  %12s\n", "", "monopath", "SEE(JRS)");
    row("IPC", mono.ipc(), see.ipc(), "%12.3f");
    row("cycles", double(mono.stats.cycles), double(see.stats.cycles),
        "%12.0f");
    row("misprediction rate (%)", 100 * mono.stats.mispredictRate(),
        100 * see.stats.mispredictRate(), "%12.2f");
    row("fetched / committed", mono.stats.fetchToCommitRatio(),
        see.stats.fetchToCommitRatio(), "%12.2f");
    row("useless instructions", double(mono.stats.uselessInstrs()),
        double(see.stats.uselessInstrs()), "%12.0f");
    row("avg live paths", mono.stats.avgLivePaths(),
        see.stats.avgLivePaths(), "%12.2f");
    row("divergences", double(mono.stats.divergences),
        double(see.stats.divergences), "%12.0f");
    row("recoveries", double(mono.stats.recoveries),
        double(see.stats.recoveries), "%12.0f");
    row("JRS PVN (%)", 100 * mono.stats.pvn(), 100 * see.stats.pvn(),
        "%12.1f");

    std::printf("\n  SEE speedup over monopath: %+.1f%%\n",
                percentChange(mono.ipc(), see.ipc()));
    std::printf("  SEE uses <= 3 paths %.0f%% of cycles (paper: ~75%%)\n",
                100 * see.stats.fractionCyclesWithPathsAtMost(3));
    return 0;
}
