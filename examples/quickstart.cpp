/**
 * @file
 * Quickstart: assemble a tiny PPR program, run it on the PolyPath
 * simulator in monopath and SEE modes, and print the results.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "asmkit/assembler.hh"
#include "sim/machine.hh"

using namespace polypath;

int
main()
{
    // --- 1. Write a program against the assembler API -----------------
    // Sum the "odd-ish" elements of a pseudo-random array: the branch on
    // the element value is data-dependent and hard to predict.
    Assembler a;
    Addr table = a.dataAlign(8);
    u64 x = 0x2545f491;
    for (int i = 0; i < 512; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        a.d64(x & 0xffff);
    }

    a.li(30, 0x4000000);            // stack pointer (unused but canonical)
    a.li(1, table);                 // cursor
    a.li(2, 512);                   // elements left
    a.li(3, 0);                     // sum
    Label loop = a.newLabel();
    Label skip = a.newLabel();
    Label done = a.newLabel();
    a.bind(loop);
    a.beq(2, done);
    a.addi(2, -1, 2);
    a.ldq(4, 0, 1);
    a.addi(1, 8, 1);
    a.andi(4, 1, 5);
    a.beq(5, skip);                 // ~50/50 data-dependent branch
    a.add(3, 4, 3);
    a.bind(skip);
    a.br(loop);
    a.bind(done);
    a.halt();

    Program program = a.assemble("quickstart");
    std::printf("assembled '%s': %zu static instructions\n",
                program.name.c_str(), program.codeSize());

    // --- 2. Golden run (also provides the oracle trace) ---------------
    InterpResult golden = runGolden(program);
    std::printf("reference: %llu instructions, %llu conditional "
                "branches\n\n",
                static_cast<unsigned long long>(golden.instructions),
                static_cast<unsigned long long>(golden.condBranches));

    // --- 3. Timing runs ------------------------------------------------
    for (const SimConfig &cfg :
         {SimConfig::monopath(), SimConfig::seeJrs(),
          SimConfig::seeOracleConfidence(),
          SimConfig::oraclePrediction()}) {
        SimResult r = simulate(program, cfg, golden);
        std::printf("%-24s IPC %5.2f  cycles %7llu  mispred %5.1f%%  "
                    "divergences %llu  verified %s\n",
                    r.category.c_str(), r.ipc(),
                    static_cast<unsigned long long>(r.stats.cycles),
                    100.0 * r.stats.mispredictRate(),
                    static_cast<unsigned long long>(r.stats.divergences),
                    r.verified ? "yes" : "NO");
    }
    return 0;
}
