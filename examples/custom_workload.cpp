/**
 * @file
 * Shows how to write a custom workload with the assembler kit and run
 * it across machine configurations: a binary-search benchmark whose
 * comparison branches are inherently unpredictable — the textbook case
 * for eager execution.
 */

#include <cstdio>

#include "asmkit/assembler.hh"
#include "common/prng.hh"
#include "common/stats_util.hh"
#include "sim/machine.hh"

using namespace polypath;

namespace
{

/** Binary search over a sorted table, repeated for random keys. */
Program
buildBinarySearch(unsigned table_size, unsigned lookups)
{
    Assembler a;
    Prng prng(1234);

    // Sorted table of strictly increasing keys.
    Addr table = a.dataAlign(8);
    u64 key = 0;
    std::vector<u64> keys;
    for (unsigned i = 0; i < table_size; ++i) {
        key += 1 + prng.nextBelow(9);
        keys.push_back(key);
        a.d64(key);
    }
    // Lookup sequence: random existing keys.
    Addr queries = a.dataAlign(8);
    for (unsigned i = 0; i < lookups; ++i)
        a.d64(keys[prng.nextBelow(table_size)]);
    Addr result = a.d64(0);

    // r1 queries cursor, r2 lookups left, r3 found-sum
    a.li(30, 0x4000000);
    a.li(1, queries);
    a.li(2, lookups);
    a.li(3, 0);
    Label outer = a.newLabel();
    Label done = a.newLabel();
    a.bind(outer);
    a.beq(2, done);
    a.addi(2, -1, 2);
    a.ldq(4, 0, 1);             // key to find
    a.addi(1, 8, 1);

    // Binary search: lo in r5, hi in r6 (exclusive), mid r7.
    a.li(5, 0);
    a.li(6, table_size);
    Label search = a.newLabel();
    Label found = a.newLabel();
    Label go_right = a.newLabel();
    Label next = a.newLabel();
    a.bind(search);
    a.cmplt(5, 6, 8);
    a.beq(8, next);             // not found (empty range)
    a.add(5, 6, 7);
    a.srli(7, 1, 7);            // mid
    a.slli(7, 3, 9);
    a.li(10, table);
    a.add(10, 9, 9);
    a.ldq(9, 0, 9);             // table[mid]
    a.cmpeq(9, 4, 8);
    a.bne(8, found);
    a.cmplt(9, 4, 8);           // the unpredictable comparison
    a.bne(8, go_right);
    a.or_(7, 31, 6);            // hi = mid
    a.br(search);
    a.bind(go_right);
    a.addi(7, 1, 5);            // lo = mid + 1
    a.br(search);
    a.bind(found);
    a.add(3, 7, 3);             // accumulate found index
    a.bind(next);
    a.br(outer);
    a.bind(done);
    a.li(11, result);
    a.stq(3, 0, 11);
    a.halt();
    return a.assemble("binary_search");
}

} // anonymous namespace

int
main()
{
    Program program = buildBinarySearch(4096, 1500);
    InterpResult golden = runGolden(program);
    std::printf("binary search: %llu instructions, %llu branches\n\n",
                static_cast<unsigned long long>(golden.instructions),
                static_cast<unsigned long long>(golden.condBranches));

    double mono = 0;
    for (const SimConfig &cfg :
         {SimConfig::monopath(), SimConfig::dualPathJrs(),
          SimConfig::seeJrs(), SimConfig::seeOracleConfidence(),
          SimConfig::oraclePrediction()}) {
        SimResult r = simulate(program, cfg, golden);
        if (cfg.categoryName() == "gshare/monopath")
            mono = r.ipc();
        std::printf("%-26s IPC %5.2f  (%+6.1f%% vs monopath)  "
                    "mispred %4.1f%%  paths %.2f\n",
                    r.category.c_str(), r.ipc(),
                    mono > 0 ? percentChange(mono, r.ipc()) : 0.0,
                    100 * r.stats.mispredictRate(),
                    r.stats.avgLivePaths());
    }
    std::printf("\nBinary-search compares are coin flips: gshare cannot "
                "learn them, so SEE's\neager execution of both "
                "comparison outcomes pays off directly.\n");
    return 0;
}
