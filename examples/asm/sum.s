; sum.s — sum the integers 1..100 and store the result.
;
; The simplest complete PPR program: a counted loop, a memory store
; for the result, and a halt. Lints clean under pplint.

        .data
        .align  8
result: .quad   0

        .text
        li      r1, 100         ; n
        li      v0, 0           ; accumulator
loop:   add     v0, r1, v0
        addi    r1, -1, r1
        bgt     r1, loop
        li      r2, result
        stq     v0, 0(r2)
        halt
