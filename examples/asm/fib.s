; fib.s — compute fib(12) in a called routine and store the result.
;
; Demonstrates the JSR/RET calling convention: r16 carries the
; argument, v0 the return value, ra the return address. pplint's
; interprocedural analysis checks the argument is written before the
; call and knows the callee defines v0.

        .data
        .align  8
result: .quad   0

        .text
        li      r16, 12
        jsr     ra, fib
        li      r1, result
        stq     v0, 0(r1)
        halt

; fib(r16) -> v0, iteratively. Clobbers r2, r3, r16.
fib:    li      v0, 0           ; fib(0)
        li      r2, 1           ; fib(1)
floop:  ble     r16, fdone
        add     v0, r2, r3
        mov     r2, v0
        mov     r3, r2
        addi    r16, -1, r16
        br      floop
fdone:  ret     ra
