; dotprod.s — dot product of two constant 4-element vectors.
;
; Exercises aligned quadword loads behind a strided pointer walk; the
; .align directive keeps every access 8-byte aligned, which pplint's
; constant-propagation pass verifies where it can derive the address.

        .data
        .align  8
veca:   .quad   1, 2, 3, 4
vecb:   .quad   5, 6, 7, 8
result: .quad   0

        .text
        li      r1, veca
        li      r2, vecb
        li      r3, 4           ; element counter
        li      r4, 0           ; accumulator
dloop:  ldq     r5, 0(r1)
        ldq     r6, 0(r2)
        mul     r5, r6, r5
        add     r4, r5, r4
        addi    r1, 8, r1
        addi    r2, 8, r2
        addi    r3, -1, r3
        bgt     r3, dloop
        li      r7, result
        stq     r4, 0(r7)
        halt
