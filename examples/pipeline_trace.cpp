/**
 * @file
 * Pipeline viewer: runs a small program with an eager divergence and
 * prints every pipeline event — watch the divergent branch fork two
 * CTX-tagged paths, both sides fetch and execute, and the resolution
 * bus kill the wrong side.
 */

#include <cstdio>

#include "asmkit/assembler.hh"
#include "sim/machine.hh"

using namespace polypath;

int
main()
{
    // r1 = random-ish value; branch on its low bit; both sides do some
    // work; loop 3 times.
    Assembler a;
    Label loop = a.newLabel();
    Label odd = a.newLabel();
    Label join = a.newLabel();
    a.li(1, 0x5a5a);
    a.li(2, 3);                 // iterations
    a.bind(loop);
    a.mul(1, 1, 1);             // slow to resolve: divergence pays off
    a.addi(1, 13, 1);
    a.andi(1, 1, 3);
    a.bne(3, odd);
    a.addi(4, 2, 4);            // even side
    a.slli(4, 1, 4);
    a.br(join);
    a.bind(odd);
    a.addi(5, 7, 5);            // odd side
    a.xor_(5, 1, 5);
    a.bind(join);
    a.addi(2, -1, 2);
    a.bgt(2, loop);
    a.halt();

    Program program = a.assemble("trace_demo");
    InterpResult golden = runGolden(program);

    SimConfig cfg = SimConfig::seeJrs();
    cfg.confidence = ConfidenceKind::AlwaysLow;     // force divergence

    std::printf("%8s  %-9s %-7s %8s  %s\n", "cycle", "event", "seq",
                "pc", "instruction [ctx tag]");
    PolyPathCore core(cfg, program, golden);
    FileTraceSink sink(stdout);
    core.setTraceSink(&sink);
    while (!core.halted())
        core.tick();

    std::printf("\n%s", core.stats().toString().c_str());
    return 0;
}
