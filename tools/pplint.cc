/**
 * @file
 * pplint — static analyzer for PPR programs.
 *
 * Lints assembly files and/or bundled workloads and reports the
 * findings catalogued in docs/ANALYSIS.md (use-before-def, unreachable
 * code, out-of-range branch targets, misaligned accesses, ...).
 *
 *     pplint program.s
 *     pplint --workload go
 *     pplint --all-workloads --json
 *
 * Options:
 *     --workload NAME     lint a bundled benchmark (repeatable)
 *     --all-workloads     lint every bundled benchmark (incl. FP)
 *     --scale X           workload scale factor (default 1.0)
 *     --json              emit findings as JSON
 *     --min-severity S    note | warning | error (default: note)
 *     --no-dead-writes    skip the dead-write liveness notes
 *     --quiet             suppress per-program summary lines
 *
 * Exit status: 0 when every program is free of error-severity findings,
 * 1 when any error was found, 2 on usage or I/O problems.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "asmkit/parser.hh"
#include "asmkit/program.hh"
#include "workloads/workloads.hh"

using namespace polypath;

namespace
{

void
usage(int status)
{
    std::fprintf(
        stderr,
        "usage: pplint [options] [program.s ...]\n"
        "       pplint --workload NAME | --all-workloads\n"
        "options:\n"
        "  --workload NAME    lint a bundled benchmark (repeatable)\n"
        "  --all-workloads    lint every bundled benchmark\n"
        "  --scale X          workload scale factor (default 1.0)\n"
        "  --json             emit findings as JSON\n"
        "  --min-severity S   note | warning | error (default: note)\n"
        "  --no-dead-writes   skip dead-write notes\n"
        "  --quiet            suppress per-program summary lines\n");
    std::exit(status);
}

Severity
parseSeverity(const std::string &name)
{
    if (name == "note")
        return Severity::Note;
    if (name == "warning")
        return Severity::Warning;
    if (name == "error")
        return Severity::Error;
    std::fprintf(stderr, "pplint: unknown severity '%s'\n",
                 name.c_str());
    std::exit(2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workloads;
    std::vector<std::string> files;
    bool all_workloads = false;
    bool json = false;
    bool quiet = false;
    double scale = 1.0;
    Severity min_severity = Severity::Note;
    AnalysisOptions options;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "pplint: %s needs an argument\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            workloads.push_back(next());
        } else if (arg == "--all-workloads") {
            all_workloads = true;
        } else if (arg == "--scale") {
            scale = std::atof(next().c_str());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--min-severity") {
            min_severity = parseSeverity(next());
        } else if (arg == "--no-dead-writes") {
            options.deadWrites = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help") {
            usage(0);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "pplint: unknown option %s\n",
                         arg.c_str());
            usage(2);
        } else {
            files.push_back(arg);
        }
    }

    if (all_workloads) {
        for (const WorkloadInfo &info : workloadRegistry())
            workloads.push_back(info.name);
        for (const WorkloadInfo &info : fpWorkloadRegistry())
            workloads.push_back(info.name);
    }
    if (workloads.empty() && files.empty())
        usage(2);

    // --- assemble every requested program ------------------------------
    std::vector<Program> programs;
    WorkloadParams params;
    params.scale = scale;
    for (const std::string &name : workloads) {
        bool found = false;
        for (const auto *registry :
             {&workloadRegistry(), &fpWorkloadRegistry()}) {
            for (const WorkloadInfo &info : *registry) {
                if (info.name == name) {
                    programs.push_back(info.build(params));
                    found = true;
                }
            }
        }
        if (!found) {
            std::fprintf(stderr, "pplint: unknown workload '%s'\n",
                         name.c_str());
            return 2;
        }
    }
    for (const std::string &path : files) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "pplint: cannot open '%s'\n",
                         path.c_str());
            return 2;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        programs.push_back(assembleText(buffer.str(), path));
    }

    // --- analyze -------------------------------------------------------
    bool any_errors = false;
    for (const Program &program : programs) {
        AnalysisResult result = analyzeProgram(program, options);
        any_errors |= !result.ok();
        if (json) {
            std::fputs(result.diags.renderJson().c_str(), stdout);
            continue;
        }
        std::fputs(result.diags.renderText(min_severity).c_str(),
                   stdout);
        if (!quiet) {
            std::printf(
                "%s: %zu error%s, %zu warning%s, %zu note%s "
                "(%zu instrs, %zu blocks, %zu routines)\n",
                program.name.c_str(),
                result.diags.count(Severity::Error),
                result.diags.count(Severity::Error) == 1 ? "" : "s",
                result.diags.count(Severity::Warning),
                result.diags.count(Severity::Warning) == 1 ? "" : "s",
                result.diags.count(Severity::Note),
                result.diags.count(Severity::Note) == 1 ? "" : "s",
                result.numInstrs, result.numBlocks,
                result.numRoutines);
        }
    }
    return any_errors ? 1 : 0;
}
