/**
 * @file
 * ppdis — disassemble a bundled workload (or an assembled .s file) to
 * reassemblable PPR source on stdout.
 *
 *     ppdis --workload compress [--scale 0.1]
 *     ppdis program.s              # assemble, then dump (round trip)
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "asmkit/disasm.hh"
#include "asmkit/parser.hh"
#include "common/logging.hh"
#include "workloads/workloads.hh"

using namespace polypath;

int
main(int argc, char **argv)
{
    std::string workload;
    std::string source_path;
    double scale = 1.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workload" && i + 1 < argc) {
            workload = argv[++i];
        } else if (arg == "--scale" && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else if (arg.rfind("--", 0) != 0) {
            source_path = arg;
        } else {
            std::fprintf(stderr,
                         "usage: ppdis --workload NAME [--scale X]\n"
                         "       ppdis program.s\n");
            return 1;
        }
    }

    Program program;
    if (!workload.empty()) {
        WorkloadParams params;
        params.scale = scale;
        program = buildWorkload(workload, params);
    } else if (!source_path.empty()) {
        std::ifstream in(source_path);
        fatal_if(!in, "cannot open '%s'", source_path.c_str());
        std::stringstream buffer;
        buffer << in.rdbuf();
        program = assembleText(buffer.str(), source_path);
    } else {
        fatal("nothing to disassemble (see usage)");
    }

    std::fputs(disassembleProgram(program).c_str(), stdout);
    return 0;
}
