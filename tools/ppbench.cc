/**
 * @file
 * ppbench — run any subset of the paper-figure benches against one
 * shared, content-addressed result cache.
 *
 *     ppbench --list
 *     ppbench fig8_baseline
 *     ppbench fig8 fig9 fig10            # unique prefixes work
 *     ppbench --all --cache-dir /tmp/pc
 *     ppbench --all --json manifest.json
 *
 * Options:
 *     --cache-dir DIR   result cache location
 *                       (default bench_results/.ppcache)
 *     --no-cache        bypass the cache entirely
 *     --json PATH       write a machine-readable run manifest
 *     --list            list available figures and exit
 *     --all             run every figure
 *
 * Figure tables go to stdout and are byte-identical between a cold
 * (all-miss) and a warm (all-hit) run; cache statistics and progress go
 * to stderr. With the cache enabled, every miss is exactly one timing
 * simulation executed, so a fully warm run reports zero misses and
 * performs zero simulations (golden reference runs still execute: they
 * provide the instruction counts and are not cached).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "figures.hh"

using namespace polypath;
using namespace polypath::benchfig;

namespace
{

int
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: ppbench [options] FIGURE...\n"
        "       ppbench --all | --list\n"
        "options:\n"
        "  --cache-dir DIR  result cache (default "
        "bench_results/.ppcache)\n"
        "  --no-cache       bypass the result cache\n"
        "  --json PATH      write a run manifest\n");
    return code;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** One figure's slice of the shared cache counters. */
struct FigureReport
{
    std::string name;
    u64 hits = 0;
    u64 misses = 0;
    u64 stores = 0;
    double seconds = 0;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string cache_dir = "bench_results/.ppcache";
    std::string json_path;
    bool no_cache = false;
    bool all = false;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "ppbench: %s needs an argument\n",
                             arg.c_str());
                std::exit(usage(1));
            }
            return argv[++i];
        };
        if (arg == "--cache-dir") {
            cache_dir = next();
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--list") {
            for (const FigureBench &fig : figureRegistry())
                std::printf("%-22s %s\n", fig.name.c_str(),
                            fig.description.c_str());
            return 0;
        } else if (arg == "--help") {
            return usage(0);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "ppbench: unknown option %s\n",
                         arg.c_str());
            return usage(1);
        } else {
            names.push_back(arg);
        }
    }

    std::vector<const FigureBench *> figures;
    if (all) {
        for (const FigureBench &fig : figureRegistry())
            figures.push_back(&fig);
    } else if (names.empty()) {
        return usage(1);
    } else {
        for (const std::string &name : names) {
            const FigureBench *fig = findFigure(name);
            if (!fig) {
                std::fprintf(stderr,
                             "ppbench: unknown or ambiguous figure "
                             "'%s' (try --list)\n",
                             name.c_str());
                return 1;
            }
            figures.push_back(fig);
        }
    }

    ResultCache cache(no_cache ? std::string() : cache_dir);
    setResultCache(&cache);
    if (cache.enabled())
        std::fprintf(stderr, "ppbench: result cache at %s (%s)\n",
                     cache.dir().c_str(), kSimVersionDigest);
    else
        std::fprintf(stderr, "ppbench: result cache disabled\n");

    std::vector<FigureReport> reports;
    for (size_t i = 0; i < figures.size(); ++i) {
        const FigureBench *fig = figures[i];
        std::fprintf(stderr, "ppbench: [%zu/%zu] %s\n", i + 1,
                     figures.size(), fig->name.c_str());
        FigureReport rep;
        rep.name = fig->name;
        u64 h0 = cache.hits(), m0 = cache.misses(), s0 = cache.stores();
        auto start = std::chrono::steady_clock::now();
        fig->fn();
        auto stop = std::chrono::steady_clock::now();
        std::fflush(stdout);
        rep.hits = cache.hits() - h0;
        rep.misses = cache.misses() - m0;
        rep.stores = cache.stores() - s0;
        rep.seconds =
            std::chrono::duration<double>(stop - start).count();
        std::fprintf(stderr,
                     "ppbench: %s: %llu cached, %llu simulated, "
                     "%.1f s\n",
                     fig->name.c_str(),
                     static_cast<unsigned long long>(rep.hits),
                     static_cast<unsigned long long>(rep.misses),
                     rep.seconds);
        reports.push_back(std::move(rep));
    }

    std::fprintf(stderr,
                 "ppbench: total %llu cache hits, %llu simulations, "
                 "%llu results stored\n",
                 static_cast<unsigned long long>(cache.hits()),
                 static_cast<unsigned long long>(cache.misses()),
                 static_cast<unsigned long long>(cache.stores()));
    setResultCache(nullptr);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "ppbench: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        out << "{\n"
            << "  \"sim_version\": \"" << jsonEscape(kSimVersionDigest)
            << "\",\n"
            << "  \"cache_enabled\": "
            << (cache.enabled() ? "true" : "false") << ",\n"
            << "  \"cache_dir\": \"" << jsonEscape(cache.dir())
            << "\",\n"
            << "  \"figures\": [\n";
        for (size_t i = 0; i < reports.size(); ++i) {
            const FigureReport &r = reports[i];
            out << "    {\"name\": \"" << jsonEscape(r.name)
                << "\", \"cache_hits\": " << r.hits
                << ", \"simulations\": " << r.misses
                << ", \"stored\": " << r.stores << ", \"seconds\": "
                << r.seconds << "}"
                << (i + 1 < reports.size() ? "," : "") << "\n";
        }
        out << "  ],\n"
            << "  \"total\": {\"cache_hits\": " << cache.hits()
            << ", \"simulations\": " << cache.misses()
            << ", \"stored\": " << cache.stores() << "}\n"
            << "}\n";
    }
    return 0;
}
