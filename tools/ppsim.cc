/**
 * @file
 * ppsim — the command-line PolyPath simulator.
 *
 * Runs a PPR assembly file or a bundled workload on a configurable
 * machine and prints the run statistics.
 *
 *     ppsim program.s
 *     ppsim --workload go --scale 0.5
 *     ppsim --config see --window 128 --tag-width 8 program.s
 *     ppsim --config monopath --trace program.s
 *     ppsim --compare program.s            # all main categories
 *
 * Options:
 *     --workload NAME     run a bundled benchmark instead of a file
 *     --scale X           workload scale factor (default 1.0)
 *     --config NAME       monopath | see | see-oracle | oracle |
 *                         dual-path | see-adaptive   (default: see)
 *     --window N          instruction window entries
 *     --tag-width N       CTX history positions
 *     --frontend N        front-end stages (total pipe = N + 3)
 *     --history-bits N    predictor/confidence table size (log2)
 *     --predictor NAME    gshare | bimodal | combining | taken
 *     --fu N              functional units of each type
 *     --imperfect-dcache  enable the D-cache timing model
 *     --verify            statically analyze the program before running
 *                         it; refuse to simulate on any error finding
 *     --trace             print every pipeline event
 *     --profile           per-PC branch profile plus the pp_prof
 *                         per-stage host-time breakdown (see
 *                         common/prof.hh; PP_PROF=1 adds the breakdown
 *                         to any run mode)
 *     --compare           run all six paper categories and summarise
 *     --kips              also time the run and report simulated KIPS
 *                         (committed kilo-instructions per host second)
 *     --stats-json FILE   also write the run's statistics to FILE as
 *                         JSON (single-run modes; not --compare)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "asmkit/parser.hh"
#include "common/logging.hh"
#include "common/prof.hh"
#include "common/stats_util.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace polypath;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: ppsim [options] [program.s]\n"
                 "       ppsim --workload NAME [options]\n"
                 "run 'ppsim --help' sources for the option list\n");
    std::exit(1);
}

SimConfig
namedConfig(const std::string &name)
{
    if (name == "monopath")
        return SimConfig::monopath();
    if (name == "see")
        return SimConfig::seeJrs();
    if (name == "see-oracle")
        return SimConfig::seeOracleConfidence();
    if (name == "oracle")
        return SimConfig::oraclePrediction();
    if (name == "dual-path")
        return SimConfig::dualPathJrs();
    if (name == "see-adaptive")
        return SimConfig::seeAdaptiveJrs();
    fatal("unknown --config '%s'", name.c_str());
}

PredictorKind
namedPredictor(const std::string &name)
{
    if (name == "gshare")
        return PredictorKind::Gshare;
    if (name == "bimodal")
        return PredictorKind::Bimodal;
    if (name == "combining")
        return PredictorKind::Combining;
    if (name == "taken")
        return PredictorKind::AlwaysTaken;
    fatal("unknown --predictor '%s'", name.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string source_path;
    std::string stats_json_path;
    double scale = 1.0;
    SimConfig cfg = SimConfig::seeJrs();
    bool trace = false;
    bool compare = false;
    bool kips = false;
    bool verify = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs an argument", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--scale") {
            scale = std::atof(next().c_str());
        } else if (arg == "--config") {
            // Preserve structural overrides given before --config by
            // applying the preset first, so order: preset then knobs.
            cfg = namedConfig(next());
        } else if (arg == "--window") {
            cfg.windowSize = std::atoi(next().c_str());
        } else if (arg == "--tag-width") {
            cfg.tagWidth = std::atoi(next().c_str());
        } else if (arg == "--frontend") {
            cfg.frontendStages = std::atoi(next().c_str());
        } else if (arg == "--history-bits") {
            cfg.historyBits = std::atoi(next().c_str());
        } else if (arg == "--predictor") {
            cfg.predictor = namedPredictor(next());
        } else if (arg == "--fu") {
            unsigned n = std::atoi(next().c_str());
            cfg.numIntAlu0 = cfg.numIntAlu1 = n;
            cfg.numFpAdd = cfg.numFpMul = cfg.numMemPorts = n;
        } else if (arg == "--imperfect-dcache") {
            cfg.dcache.perfect = false;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--profile") {
            cfg.profileBranches = true;
        } else if (arg == "--compare") {
            compare = true;
        } else if (arg == "--kips") {
            kips = true;
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
        } else {
            source_path = arg;
        }
    }

    // --- load the program ----------------------------------------------
    Program program;
    if (!workload.empty()) {
        bool known = false;
        for (const auto *registry :
             {&workloadRegistry(), &fpWorkloadRegistry()}) {
            for (const WorkloadInfo &info : *registry)
                known |= info.name == workload;
        }
        if (!known) {
            std::fprintf(stderr, "ppsim: unknown workload '%s'\n",
                         workload.c_str());
            std::fprintf(stderr, "available workloads:");
            for (const auto *registry :
                 {&workloadRegistry(), &fpWorkloadRegistry()}) {
                for (const WorkloadInfo &info : *registry)
                    std::fprintf(stderr, " %s", info.name.c_str());
            }
            std::fprintf(stderr, "\n");
            return 1;
        }
        WorkloadParams params;
        params.scale = scale;
        program = buildWorkload(workload, params);
    } else if (!source_path.empty()) {
        std::ifstream in(source_path);
        if (!in) {
            std::fprintf(stderr,
                         "ppsim: cannot open program file '%s'\n",
                         source_path.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        program = assembleText(buffer.str(), source_path);
    } else {
        usage();
    }

    // --- optional pre-run static verification --------------------------
    if (verify) {
        AnalysisResult lint = analyzeProgram(program);
        std::fputs(
            lint.diags.renderText(Severity::Warning).c_str(), stderr);
        if (!lint.ok()) {
            std::fprintf(stderr,
                         "ppsim: '%s' failed verification with %zu "
                         "error%s; not simulating\n",
                         program.name.c_str(),
                         lint.diags.count(Severity::Error),
                         lint.diags.count(Severity::Error) == 1 ? ""
                                                                : "s");
            return 1;
        }
        std::printf("verify: '%s' passed static analysis "
                    "(%zu instrs, %zu blocks, %zu routines)\n",
                    program.name.c_str(), lint.numInstrs,
                    lint.numBlocks, lint.numRoutines);
    }

    // -1 = unknown (modes that skip end-state verification).
    auto write_stats_json = [&](const SimStats &stats,
                                const std::string &category,
                                int verified_state) {
        if (stats_json_path.empty())
            return;
        std::ofstream out(stats_json_path);
        if (!out)
            fatal("cannot write --stats-json file '%s'",
                  stats_json_path.c_str());
        out << "{\n  \"program\": \"" << program.name << "\",\n"
            << "  \"category\": \"" << category << "\",\n"
            << "  \"verified\": "
            << (verified_state < 0 ? "null"
                                   : verified_state ? "true" : "false")
            << ",\n"
            << stats.toJson() << "\n}\n";
    };

    std::printf("program '%s': %zu static instructions\n",
                program.name.c_str(), program.codeSize());
    InterpResult golden = runGolden(program);
    std::printf("reference: %llu dynamic instructions, %llu branches, "
                "%llu returns\n\n",
                static_cast<unsigned long long>(golden.instructions),
                static_cast<unsigned long long>(golden.condBranches),
                static_cast<unsigned long long>(golden.trace->size() -
                                                golden.condBranches));

    if (compare) {
        double mono = 0;
        for (const SimConfig &category :
             {SimConfig::monopath(), SimConfig::dualPathJrs(),
              SimConfig::seeJrs(), SimConfig::seeAdaptiveJrs(),
              SimConfig::seeOracleConfidence(),
              SimConfig::oraclePrediction()}) {
            SimResult r = simulate(program, category, golden);
            if (category.categoryName() == "gshare/monopath")
                mono = r.ipc();
            std::printf("%-24s IPC %6.3f  (%+6.1f%%)  cycles %llu\n",
                        r.category.c_str(), r.ipc(),
                        mono > 0 ? percentChange(mono, r.ipc()) : 0.0,
                        static_cast<unsigned long long>(r.stats.cycles));
        }
        return 0;
    }

    if (trace) {
        FileTraceSink sink(stdout);
        PolyPathCore core(cfg, program, golden);
        core.setTraceSink(&sink);
        while (!core.halted())
            core.tick();
        std::printf("\n%s", core.stats().toString().c_str());
        write_stats_json(core.stats(), cfg.categoryName(), -1);
        return 0;
    }

    if (cfg.profileBranches) {
        // Profiling wants direct core access for the per-PC table.
        // --profile also turns on the in-simulator stage profiler.
        prof::setEnabled(true);
        prof::reset();
        PolyPathCore core(cfg, program, golden);
        auto start = std::chrono::steady_clock::now();
        while (!core.halted())
            core.tick();
        auto stop = std::chrono::steady_clock::now();
        std::printf("configuration: %s\n%s\n",
                    cfg.categoryName().c_str(),
                    core.stats().toString().c_str());
        u64 total_ns = static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                stop - start)
                .count());
        std::fputs(prof::report(total_ns).c_str(), stdout);
        std::printf("\n");

        std::vector<std::pair<Addr, BranchProfile>> rows(
            core.branchProfiles().begin(), core.branchProfiles().end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.mispredicts > b.second.mispredicts;
                  });
        std::printf("%10s %10s %10s %9s %10s %10s\n", "pc", "execs",
                    "mispred", "rate%", "low-conf", "diverged");
        size_t shown = 0;
        for (const auto &[pc, prof] : rows) {
            if (++shown > 20)
                break;
            std::printf("%#10llx %10llu %10llu %8.1f%% %10llu %10llu\n",
                        static_cast<unsigned long long>(pc),
                        static_cast<unsigned long long>(prof.execs),
                        static_cast<unsigned long long>(
                            prof.mispredicts),
                        100.0 * prof.mispredicts /
                            std::max<u64>(1, prof.execs),
                        static_cast<unsigned long long>(
                            prof.lowConfidence),
                        static_cast<unsigned long long>(
                            prof.divergences));
        }
        write_stats_json(core.stats(), cfg.categoryName(), -1);
        return 0;
    }

    if (prof::enabled())
        prof::reset();
    auto start = std::chrono::steady_clock::now();
    SimResult r = simulate(program, cfg, golden);
    auto stop = std::chrono::steady_clock::now();
    std::printf("configuration: %s\n%s", r.category.c_str(),
                r.stats.toString().c_str());
    std::printf("verified: %s\n", r.verified ? "yes" : "NO");
    write_stats_json(r.stats, r.category, r.verified ? 1 : 0);
    if (prof::enabled()) {
        u64 total_ns = static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                stop - start)
                .count());
        std::fputs(prof::report(total_ns).c_str(), stdout);
    }
    if (kips) {
        double secs =
            std::chrono::duration<double>(stop - start).count();
        std::printf("host time %.3f s  sim speed %.1f KIPS "
                    "(committed), %.1f KHz (cycles)\n",
                    secs,
                    r.stats.committedInstrs / secs / 1e3,
                    r.stats.cycles / secs / 1e3);
    }
    return 0;
}
