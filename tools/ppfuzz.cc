/**
 * @file
 * ppfuzz — differential fuzzer for the PolyPath timing core.
 *
 * Sweeps seeds of the testkit program generator across machine
 * configurations, checking every run with the lockstep oracle; writes
 * failing programs to a corpus directory and delta-debugs any failure
 * down to a minimal reproducer.
 *
 *     ppfuzz --seeds 0..500 --configs all
 *     ppfuzz --seeds 0..500 --preset branchy --configs see,tight
 *     ppfuzz --repro 1234 --preset legacy
 *     ppfuzz --reduce 7 --config see --bug-corrupt-output -o repro.s
 *
 * Modes (exactly one):
 *     --seeds A..B        sweep seeds A (inclusive) to B (exclusive)
 *     --repro SEED        run one seed verbosely across the configs
 *     --reduce SEED       shrink a failing seed to a minimal .s repro
 *
 * Options:
 *     --preset NAME       generator preset (default mixed); one of
 *                         legacy branchy memory calls fp mixed
 *     --configs LIST      comma-separated config names, or 'all':
 *                         monopath see see-oracle oracle dual-path
 *                         see-adaptive eager tight   (default all)
 *     --config NAME       single config for --reduce (default see)
 *     --jobs N            sweep worker threads (default: hardware)
 *     --corpus DIR        write failing programs there as .s files
 *     --bug-corrupt-output
 *                         fault injection: corrupt committed stores to
 *                         the write-only output region (plants a real
 *                         divergence; for exercising this tool and the
 *                         reducer — see SimConfig::bugCorruptStoreAbove)
 *     --max-instrs N      golden instruction cap (default 100M)
 *     -o FILE             --reduce output path (default reduced_SEED.s)
 *     --quiet             only print the final summary
 *
 * Exit status: 0 all runs verified, 1 divergences found (or --reduce
 * given a seed that does not fail), 2 usage error.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "asmkit/disasm.hh"
#include "common/logging.hh"
#include "sim/machine.hh"
#include "testkit/oracle.hh"
#include "testkit/progen.hh"
#include "testkit/reduce.hh"

using namespace polypath;
using namespace polypath::testkit;

namespace
{

struct NamedConfig
{
    std::string name;
    SimConfig cfg;
};

SimConfig
eagerConfig()
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.confidence = ConfidenceKind::AlwaysLow;     // max divergence
    return cfg;
}

SimConfig
tightConfig()
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.windowSize = 32;        // tight resources
    cfg.tagWidth = 4;
    cfg.numIntAlu0 = 1;
    cfg.numIntAlu1 = 1;
    cfg.numFpAdd = 1;
    cfg.numFpMul = 1;
    cfg.numMemPorts = 1;
    return cfg;
}

const std::vector<NamedConfig> &
configRegistry()
{
    static const std::vector<NamedConfig> registry = {
        {"monopath", SimConfig::monopath()},
        {"see", SimConfig::seeJrs()},
        {"see-oracle", SimConfig::seeOracleConfidence()},
        {"oracle", SimConfig::oraclePrediction()},
        {"dual-path", SimConfig::dualPathJrs()},
        {"see-adaptive", SimConfig::seeAdaptiveJrs()},
        {"eager", eagerConfig()},
        {"tight", tightConfig()},
    };
    return registry;
}

SimConfig
configByName(const std::string &name)
{
    for (const NamedConfig &entry : configRegistry()) {
        if (entry.name == name)
            return entry.cfg;
    }
    std::string have;
    for (const NamedConfig &entry : configRegistry())
        have += " " + entry.name;
    fatal("unknown config '%s' (have:%s)", name.c_str(), have.c_str());
}

std::vector<NamedConfig>
parseConfigs(const std::string &list)
{
    if (list == "all")
        return configRegistry();
    std::vector<NamedConfig> configs;
    std::stringstream stream(list);
    std::string name;
    while (std::getline(stream, name, ',')) {
        if (name.empty())
            continue;
        configs.push_back({name, configByName(name)});
    }
    if (configs.empty())
        fatal("--configs: empty config list '%s'", list.c_str());
    return configs;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: ppfuzz --seeds A..B [--preset P] [--configs "
                 "LIST|all] [--jobs N]\n"
                 "              [--corpus DIR] [--bug-corrupt-output] "
                 "[--quiet]\n"
                 "       ppfuzz --repro SEED [--preset P] [--configs ...]\n"
                 "       ppfuzz --reduce SEED [--preset P] [--config NAME] "
                 "[-o FILE]\n"
                 "see the header of tools/ppfuzz.cc for details\n");
    std::exit(2);
}

/** One verified mismatch found by the sweep. */
struct Failure
{
    u64 seed;
    std::string preset;
    std::string config;
    Divergence divergence;
};

/** The canonical repro command line for a seed (printed everywhere a
 *  failure is reported, including by the ported fuzz gtest). */
std::string
reproCommand(const std::string &preset, u64 seed, bool bug_knob)
{
    std::string cmd = "ppfuzz --repro " + std::to_string(seed) +
                      " --preset " + preset;
    if (bug_knob)
        cmd += " --bug-corrupt-output";
    return cmd;
}

/** Prefix every line of @p text with "; " (assembly comment). */
std::string
asComment(const std::string &text)
{
    std::string out;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line))
        out += "; " + line + "\n";
    return out;
}

void
writeCorpusFile(const std::string &dir, const Failure &failure,
                const Program &program)
{
    std::filesystem::create_directories(dir);
    std::string path = dir + "/" + failure.preset + "_seed" +
                       std::to_string(failure.seed) + "_" +
                       failure.config + ".s";
    std::ofstream out(path);
    fatal_if(!out, "cannot write corpus file %s", path.c_str());
    out << "; ppfuzz failure: preset=" << failure.preset
        << " seed=" << failure.seed << " config=" << failure.config
        << "\n; repro: "
        << reproCommand(failure.preset, failure.seed, false) << "\n;\n"
        << asComment(failure.divergence.report()) << "\n"
        << disassembleProgram(program);
}

unsigned
parseJobs(const std::string &value)
{
    unsigned long parsed = std::strtoul(value.c_str(), nullptr, 10);
    fatal_if(parsed == 0, "--jobs needs a positive integer");
    return static_cast<unsigned>(parsed);
}

int
runSweep(u64 seed_begin, u64 seed_end, const ProgenOptions &preset,
         const std::vector<NamedConfig> &configs, unsigned jobs,
         const std::string &corpus_dir, bool bug_knob, u64 max_instrs,
         bool quiet)
{
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 2;
    }

    OracleOptions oracle_opts;
    oracle_opts.maxGoldenInstrs = max_instrs;

    std::atomic<u64> next{seed_begin};
    std::atomic<u64> runs{0};
    std::mutex failures_mutex;
    std::vector<Failure> failures;

    auto worker = [&]() {
        while (true) {
            u64 seed = next.fetch_add(1);
            if (seed >= seed_end)
                break;
            GenPlan plan = buildPlan(preset, seed);
            Program program = emitPlan(plan);
            InterpResult golden = interpret(program, max_instrs);
            fatal_if(!golden.halted,
                     "seed %llu: golden run did not halt — generator "
                     "termination bug",
                     static_cast<unsigned long long>(seed));
            for (const NamedConfig &entry : configs) {
                SimConfig cfg = entry.cfg;
                if (bug_knob)
                    cfg.bugCorruptStoreAbove = outputBase;
                OracleResult result =
                    runOracle(program, cfg, golden, oracle_opts);
                runs.fetch_add(1);
                if (result.ok())
                    continue;
                Failure failure{seed, preset.name, entry.name,
                                result.divergence};
                std::lock_guard<std::mutex> lock(failures_mutex);
                if (!quiet) {
                    std::fprintf(
                        stderr,
                        "FAIL seed %llu preset %s config %s: %s\n%s",
                        static_cast<unsigned long long>(seed),
                        preset.name.c_str(), entry.name.c_str(),
                        divergenceKindName(result.divergence.kind),
                        result.divergence.report().c_str());
                    std::fprintf(
                        stderr, "  repro: %s\n",
                        reproCommand(preset.name, seed, bug_knob)
                            .c_str());
                }
                if (!corpus_dir.empty())
                    writeCorpusFile(corpus_dir, failure, program);
                failures.push_back(std::move(failure));
            }
        }
    };

    std::vector<std::thread> threads;
    unsigned spawn = static_cast<unsigned>(
        std::min<u64>(jobs, seed_end - seed_begin));
    for (unsigned i = 0; i < spawn; ++i)
        threads.emplace_back(worker);
    for (std::thread &thread : threads)
        thread.join();

    std::printf("ppfuzz: %llu runs (%llu seeds x %zu configs, preset "
                "%s): %zu divergence%s\n",
                static_cast<unsigned long long>(runs.load()),
                static_cast<unsigned long long>(seed_end - seed_begin),
                configs.size(), preset.name.c_str(), failures.size(),
                failures.size() == 1 ? "" : "s");
    for (const Failure &failure : failures) {
        std::printf("  seed %llu config %s: %s (%s)\n",
                    static_cast<unsigned long long>(failure.seed),
                    failure.config.c_str(),
                    divergenceKindName(failure.divergence.kind),
                    reproCommand(failure.preset, failure.seed, bug_knob)
                        .c_str());
    }
    return failures.empty() ? 0 : 1;
}

int
runRepro(u64 seed, const ProgenOptions &preset,
         const std::vector<NamedConfig> &configs, bool bug_knob,
         u64 max_instrs)
{
    GenPlan plan = buildPlan(preset, seed);
    Program program = emitPlan(plan);
    InterpResult golden = interpret(program, max_instrs);
    fatal_if(!golden.halted, "golden run did not halt");

    std::printf("seed %llu preset %s: %zu static instrs, %llu golden "
                "instrs\n",
                static_cast<unsigned long long>(seed),
                preset.name.c_str(), program.codeSize(),
                static_cast<unsigned long long>(golden.instructions));

    OracleOptions oracle_opts;
    oracle_opts.maxGoldenInstrs = max_instrs;
    int status = 0;
    for (const NamedConfig &entry : configs) {
        SimConfig cfg = entry.cfg;
        if (bug_knob)
            cfg.bugCorruptStoreAbove = outputBase;
        OracleResult result = runOracle(program, cfg, golden, oracle_opts);
        if (result.ok()) {
            std::printf("  %-14s ok (%llu cycles, IPC %.2f)\n",
                        entry.name.c_str(),
                        static_cast<unsigned long long>(
                            result.stats.cycles),
                        result.stats.ipc());
        } else {
            status = 1;
            std::printf("  %-14s FAIL\n%s", entry.name.c_str(),
                        result.divergence.report().c_str());
        }
    }
    return status;
}

int
runReduce(u64 seed, const ProgenOptions &preset,
          const NamedConfig &config, bool bug_knob, u64 max_instrs,
          const std::string &out_path, bool quiet)
{
    ReduceOptions opts;
    opts.cfg = config.cfg;
    if (bug_knob)
        opts.cfg.bugCorruptStoreAbove = outputBase;
    opts.oracle.maxGoldenInstrs = max_instrs;
    opts.verbose = !quiet;

    GenPlan plan = buildPlan(preset, seed);
    ReduceResult result = reduceFailure(plan, opts);
    if (!result.failedInitially) {
        std::fprintf(stderr,
                     "ppfuzz: seed %llu preset %s config %s does not "
                     "diverge — nothing to reduce\n",
                     static_cast<unsigned long long>(seed),
                     preset.name.c_str(), config.name.c_str());
        return 1;
    }

    std::string path = out_path.empty()
                           ? "reduced_" + std::to_string(seed) + ".s"
                           : out_path;
    std::ofstream out(path);
    fatal_if(!out, "cannot write %s", path.c_str());
    out << "; ppfuzz reduced repro: preset=" << preset.name
        << " seed=" << seed << " config=" << config.name << "\n;\n"
        << asComment(result.divergence.report()) << "\n"
        << disassembleProgram(result.program);
    out.close();

    std::printf("ppfuzz: reduced seed %llu from %zu to %zu static "
                "instructions (%u oracle runs)\n",
                static_cast<unsigned long long>(seed),
                result.staticBefore, result.staticAfter,
                result.oracleRuns);
    std::printf("  divergence preserved: %s\n",
                divergenceKindName(result.divergence.kind));
    std::printf("  wrote %s\n", path.c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    enum class Mode { None, Sweep, Repro, Reduce };
    Mode mode = Mode::None;
    u64 seed_begin = 0;
    u64 seed_end = 0;
    u64 single_seed = 0;
    std::string preset_name = "mixed";
    std::string configs_list = "all";
    std::string single_config = "see";
    std::string corpus_dir;
    std::string out_path;
    unsigned jobs = 0;
    bool bug_knob = false;
    bool quiet = false;
    u64 max_instrs = 100'000'000ull;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs an argument", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seeds") {
            mode = Mode::Sweep;
            std::string range = next();
            size_t dots = range.find("..");
            if (dots == std::string::npos) {
                seed_begin = 0;
                seed_end = std::strtoull(range.c_str(), nullptr, 10);
            } else {
                seed_begin = std::strtoull(range.substr(0, dots).c_str(),
                                           nullptr, 10);
                seed_end = std::strtoull(range.substr(dots + 2).c_str(),
                                         nullptr, 10);
            }
            if (seed_end <= seed_begin)
                fatal("--seeds: empty range '%s'", range.c_str());
        } else if (arg == "--repro") {
            mode = Mode::Repro;
            single_seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--reduce") {
            mode = Mode::Reduce;
            single_seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--preset") {
            preset_name = next();
        } else if (arg == "--configs") {
            configs_list = next();
        } else if (arg == "--config") {
            single_config = next();
        } else if (arg == "--jobs") {
            jobs = parseJobs(next());
        } else if (arg == "--corpus") {
            corpus_dir = next();
        } else if (arg == "-o") {
            out_path = next();
        } else if (arg == "--bug-corrupt-output") {
            bug_knob = true;
        } else if (arg == "--max-instrs") {
            max_instrs = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else {
            std::fprintf(stderr, "ppfuzz: unknown option '%s'\n",
                         arg.c_str());
            usage();
        }
    }

    ProgenOptions preset = presetByName(preset_name);
    switch (mode) {
      case Mode::Sweep:
        return runSweep(seed_begin, seed_end, preset,
                        parseConfigs(configs_list), jobs, corpus_dir,
                        bug_knob, max_instrs, quiet);
      case Mode::Repro:
        return runRepro(single_seed, preset, parseConfigs(configs_list),
                        bug_knob, max_instrs);
      case Mode::Reduce:
        return runReduce(single_seed, preset,
                         {single_config, configByName(single_config)},
                         bug_knob, max_instrs, out_path, quiet);
      case Mode::None:
        usage();
    }
    return 2;
}
