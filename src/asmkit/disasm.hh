/**
 * @file
 * Program-level disassembler producing *reassemblable* source.
 *
 * The output parses back through assembleText() into a bit-identical
 * program: control-flow targets become synthetic labels, data segments
 * become .quad/.byte directives. The tests use this for a full
 * round-trip property over every bundled workload.
 */

#ifndef POLYPATH_ASMKIT_DISASM_HH
#define POLYPATH_ASMKIT_DISASM_HH

#include <string>

#include "asmkit/program.hh"

namespace polypath
{

/** Disassemble @p program into reassemblable PPR source text. */
std::string disassembleProgram(const Program &program);

} // namespace polypath

#endif // POLYPATH_ASMKIT_DISASM_HH
