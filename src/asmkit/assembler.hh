/**
 * @file
 * A programmatic assembler for PPR.
 *
 * Workloads are written directly in C++ against this builder API (there is
 * no external toolchain to depend on). Typical use:
 *
 * @code
 *     Assembler a;
 *     Label loop = a.newLabel();
 *     a.li(1, 100);                 // r1 = 100
 *     a.bind(loop);
 *     a.addi(1, -1, 1);             // r1 -= 1
 *     a.bgt(1, loop);               // while (r1 > 0)
 *     a.halt();
 *     Program p = a.assemble("countdown");
 * @endcode
 *
 * Software conventions used by the bundled workloads (Alpha-flavoured):
 * r30 = stack pointer, r26 = return address, r16..r21 = arguments,
 * r0 = return value, r31 = zero.
 */

#ifndef POLYPATH_ASMKIT_ASSEMBLER_HH
#define POLYPATH_ASMKIT_ASSEMBLER_HH

#include <string>
#include <vector>

#include "asmkit/program.hh"
#include "common/types.hh"
#include "isa/instr.hh"

namespace polypath
{

/** Opaque forward-referenceable code label. */
struct Label
{
    u32 id = 0xffffffff;
    bool valid() const { return id != 0xffffffff; }
};

/** Builder producing Program images. */
class Assembler
{
  public:
    /** @param code_base load address of the first instruction */
    explicit Assembler(Addr code_base = 0x1000, Addr data_base = 0x100000);

    // --- labels -----------------------------------------------------

    /** Create a fresh, unbound label. */
    Label newLabel();

    /** Bind @p label to the current code position. */
    void bind(Label label);

    /** Create a label already bound to the current position. */
    Label here();

    /**
     * Give @p label a human-readable name, used by assemble()-time
     * error messages (undefined label, displacement out of range).
     */
    void nameLabel(Label label, const std::string &name);

    // --- source locations -------------------------------------------

    /**
     * Record the source position of subsequently emitted instructions.
     * The textual front end calls this once per statement; the location
     * flows into Program::srcLines and into error messages raised here
     * (immediate range, displacement range, unbound labels).
     */
    void setLocation(const std::string &unit, unsigned line);

    // --- generic emission -------------------------------------------

    /** Append a fully formed instruction. */
    void emit(const Instr &instr);

    /** Address the next emitted instruction will occupy. */
    Addr pc() const;

    // --- integer R-type ----------------------------------------------

    void add(u8 ra, u8 rb, u8 rc) { emitR(Opcode::ADD, ra, rb, rc); }
    void sub(u8 ra, u8 rb, u8 rc) { emitR(Opcode::SUB, ra, rb, rc); }
    void mul(u8 ra, u8 rb, u8 rc) { emitR(Opcode::MUL, ra, rb, rc); }
    void and_(u8 ra, u8 rb, u8 rc) { emitR(Opcode::AND, ra, rb, rc); }
    void or_(u8 ra, u8 rb, u8 rc) { emitR(Opcode::OR, ra, rb, rc); }
    void xor_(u8 ra, u8 rb, u8 rc) { emitR(Opcode::XOR, ra, rb, rc); }
    void sll(u8 ra, u8 rb, u8 rc) { emitR(Opcode::SLL, ra, rb, rc); }
    void srl(u8 ra, u8 rb, u8 rc) { emitR(Opcode::SRL, ra, rb, rc); }
    void sra(u8 ra, u8 rb, u8 rc) { emitR(Opcode::SRA, ra, rb, rc); }
    void cmpeq(u8 ra, u8 rb, u8 rc) { emitR(Opcode::CMPEQ, ra, rb, rc); }
    void cmplt(u8 ra, u8 rb, u8 rc) { emitR(Opcode::CMPLT, ra, rb, rc); }
    void cmple(u8 ra, u8 rb, u8 rc) { emitR(Opcode::CMPLE, ra, rb, rc); }
    void cmpult(u8 ra, u8 rb, u8 rc) { emitR(Opcode::CMPULT, ra, rb, rc); }

    // --- integer I-type ----------------------------------------------

    void addi(u8 ra, s32 imm, u8 rc) { emitI(Opcode::ADDI, ra, imm, rc); }
    void andi(u8 ra, s32 imm, u8 rc) { emitI(Opcode::ANDI, ra, imm, rc); }
    void ori(u8 ra, s32 imm, u8 rc) { emitI(Opcode::ORI, ra, imm, rc); }
    void xori(u8 ra, s32 imm, u8 rc) { emitI(Opcode::XORI, ra, imm, rc); }
    void slli(u8 ra, s32 imm, u8 rc) { emitI(Opcode::SLLI, ra, imm, rc); }
    void srli(u8 ra, s32 imm, u8 rc) { emitI(Opcode::SRLI, ra, imm, rc); }
    void srai(u8 ra, s32 imm, u8 rc) { emitI(Opcode::SRAI, ra, imm, rc); }
    void cmpeqi(u8 ra, s32 imm, u8 rc) { emitI(Opcode::CMPEQI, ra, imm, rc); }
    void cmplti(u8 ra, s32 imm, u8 rc) { emitI(Opcode::CMPLTI, ra, imm, rc); }
    void cmplei(u8 ra, s32 imm, u8 rc) { emitI(Opcode::CMPLEI, ra, imm, rc); }
    void cmpulti(u8 ra, s32 imm, u8 rc)
    {
        emitI(Opcode::CMPULTI, ra, imm, rc);
    }
    void ldah(u8 ra, s32 imm, u8 rc) { emitI(Opcode::LDAH, ra, imm, rc); }

    // --- memory -------------------------------------------------------

    void ldq(u8 rc, s32 disp, u8 ra) { emitM(Opcode::LDQ, ra, disp, rc); }
    void stq(u8 rc, s32 disp, u8 ra) { emitM(Opcode::STQ, ra, disp, rc); }
    void ldbu(u8 rc, s32 disp, u8 ra) { emitM(Opcode::LDBU, ra, disp, rc); }
    void stb(u8 rc, s32 disp, u8 ra) { emitM(Opcode::STB, ra, disp, rc); }
    void fld(u8 fc, s32 disp, u8 ra) { emitM(Opcode::FLD, ra, disp, fc); }
    void fst(u8 fc, s32 disp, u8 ra) { emitM(Opcode::FST, ra, disp, fc); }

    // --- control flow --------------------------------------------------

    void beq(u8 ra, Label t) { emitB(Opcode::BEQ, ra, t); }
    void bne(u8 ra, Label t) { emitB(Opcode::BNE, ra, t); }
    void blt(u8 ra, Label t) { emitB(Opcode::BLT, ra, t); }
    void bge(u8 ra, Label t) { emitB(Opcode::BGE, ra, t); }
    void ble(u8 ra, Label t) { emitB(Opcode::BLE, ra, t); }
    void bgt(u8 ra, Label t) { emitB(Opcode::BGT, ra, t); }
    void br(Label t);
    void jsr(u8 link, Label t) { emitB(Opcode::JSR, link, t); }
    void ret(u8 ra = 26);

    // --- floating point -------------------------------------------------

    void fadd(u8 fa, u8 fb, u8 fc) { emitR(Opcode::FADD, fa, fb, fc); }
    void fsub(u8 fa, u8 fb, u8 fc) { emitR(Opcode::FSUB, fa, fb, fc); }
    void fmul(u8 fa, u8 fb, u8 fc) { emitR(Opcode::FMUL, fa, fb, fc); }
    void fdiv(u8 fa, u8 fb, u8 fc) { emitR(Opcode::FDIV, fa, fb, fc); }
    void fcmpeq(u8 fa, u8 fb, u8 rc) { emitR(Opcode::FCMPEQ, fa, fb, rc); }
    void fcmplt(u8 fa, u8 fb, u8 rc) { emitR(Opcode::FCMPLT, fa, fb, rc); }
    void cvtif(u8 ra, u8 fc) { emitR(Opcode::CVTIF, ra, 0, fc); }
    void cvtfi(u8 fa, u8 rc) { emitR(Opcode::CVTFI, fa, 0, rc); }

    // --- misc -----------------------------------------------------------

    void nop();
    void halt();

    // --- pseudo instructions ---------------------------------------------

    /** Load an arbitrary 64-bit constant into @p rc (1..7 instructions). */
    void li(u8 rc, u64 value);

    /** Register move (or with zero). */
    void mov(u8 ra, u8 rc) { or_(ra, 31, rc); }

    // --- data segment ------------------------------------------------------

    /** Align the data cursor to @p alignment bytes (power of two). */
    Addr dataAlign(unsigned alignment);

    /** Append a 64-bit little-endian word; returns its address. */
    Addr d64(u64 value);

    /** Append raw bytes; returns the base address. */
    Addr dBytes(const std::vector<u8> &bytes);

    /** Reserve @p count zeroed bytes; returns the base address. */
    Addr dZero(size_t count);

    /** Current data cursor address. */
    Addr dataPc() const;

    // --- assembly -------------------------------------------------------

    /**
     * Resolve all label references and produce the program image.
     * It is a (user) fatal error if any referenced label is unbound.
     */
    Program assemble(const std::string &name) const;

  private:
    void emitR(Opcode op, u8 ra, u8 rb, u8 rc);
    void emitI(Opcode op, u8 ra, s32 imm, u8 rc);
    void emitM(Opcode op, u8 ra, s32 disp, u8 rc);
    void emitB(Opcode op, u8 ra, Label target);

    /** "unit:line: " prefix for error messages; "" with no location. */
    std::string locPrefix() const;

    /** Same, for the previously recorded line of instruction @p idx. */
    std::string locPrefixAt(size_t idx) const;

    /** Printable name of @p label_id ("'name'" or "label N"). */
    std::string labelDesc(u32 label_id) const;

    Addr codeBase;
    Addr dataBase;
    std::vector<Instr> instrs;
    std::vector<u8> data;

    /** Source unit and line tracked by setLocation(). */
    std::string unitName;
    unsigned curLine = 0;

    /** Per-instruction source line (parallel to instrs; 0 unknown). */
    std::vector<u32> instrLines;

    /** Bound position (instruction index) per label; -1 if unbound. */
    std::vector<s64> labelPos;

    /** Optional human-readable label names (parallel to labelPos). */
    std::vector<std::string> labelNames;

    struct Fixup
    {
        size_t instrIndex;
        u32 labelId;
    };
    std::vector<Fixup> fixups;
};

} // namespace polypath

#endif // POLYPATH_ASMKIT_ASSEMBLER_HH
