#include "program.hh"

#include "isa/decoded_program.hh"
#include "memsys/memory.hh"

namespace polypath
{

const DecodedProgram &
Program::predecode()
{
    if (!decodedText) {
        decodedText = std::make_shared<const DecodedProgram>(
            codeBase, code.data(), code.size());
    }
    return *decodedText;
}

void
Program::loadInto(SparseMemory &mem) const
{
    Addr addr = codeBase;
    for (u32 word : code) {
        mem.write(addr, word, 4);
        addr += 4;
    }
    for (const auto &[base, bytes] : dataSegments) {
        for (size_t i = 0; i < bytes.size(); ++i)
            mem.writeByte(base + i, bytes[i]);
    }
}

} // namespace polypath
