#include "parser.hh"

#include <cctype>
#include <map>
#include <vector>

#include "asmkit/assembler.hh"
#include "common/logging.hh"

namespace polypath
{

namespace
{

/** Parsing context for one source unit. */
class TextAssembler
{
  public:
    TextAssembler(const std::string &source, const std::string &name,
                  Addr code_base, Addr data_base)
        : asmb(code_base, data_base), unitName(name), text(source)
    {}

    Program run();

  private:
    [[noreturn]] void
    error(const std::string &message) const
    {
        fatal("%s:%u: %s", unitName.c_str(), lineNo, message.c_str());
    }

    // --- lexing helpers ------------------------------------------------

    static std::string
    stripComment(const std::string &line)
    {
        size_t pos = line.find_first_of(";#");
        return pos == std::string::npos ? line : line.substr(0, pos);
    }

    static std::string
    trim(const std::string &str)
    {
        size_t begin = str.find_first_not_of(" \t\r");
        if (begin == std::string::npos)
            return "";
        size_t end = str.find_last_not_of(" \t\r");
        return str.substr(begin, end - begin + 1);
    }

    /** Split "a, b, c" on commas (whitespace-trimmed parts). */
    std::vector<std::string>
    splitOperands(const std::string &str) const
    {
        std::vector<std::string> parts;
        std::string current;
        for (char c : str) {
            if (c == ',') {
                parts.push_back(trim(current));
                current.clear();
            } else {
                current += c;
            }
        }
        std::string last = trim(current);
        if (!last.empty() || !parts.empty())
            parts.push_back(last);
        for (const std::string &part : parts) {
            if (part.empty())
                error("empty operand");
        }
        return parts;
    }

    // --- operand parsing -------------------------------------------------

    u8
    parseIntReg(const std::string &token) const
    {
        static const std::map<std::string, u8> aliases = {
            {"zero", 31}, {"sp", 30}, {"ra", 26}, {"v0", 0}};
        auto it = aliases.find(token);
        if (it != aliases.end())
            return it->second;
        if (token.size() >= 2 && token[0] == 'r') {
            unsigned idx = 0;
            for (size_t i = 1; i < token.size(); ++i) {
                if (!std::isdigit(static_cast<unsigned char>(token[i])))
                    error("bad register '" + token + "'");
                idx = idx * 10 + (token[i] - '0');
            }
            if (idx < 32)
                return static_cast<u8>(idx);
        }
        error("expected integer register, got '" + token + "'");
    }

    u8
    parseFpReg(const std::string &token) const
    {
        if (token.size() >= 2 && token[0] == 'f') {
            unsigned idx = 0;
            for (size_t i = 1; i < token.size(); ++i) {
                if (!std::isdigit(static_cast<unsigned char>(token[i])))
                    error("bad register '" + token + "'");
                idx = idx * 10 + (token[i] - '0');
            }
            if (idx < 32)
                return static_cast<u8>(idx);
        }
        error("expected FP register, got '" + token + "'");
    }

    /** Number or previously-defined symbol. */
    s64
    parseValue(const std::string &token) const
    {
        if (token.empty())
            error("empty value");
        auto sym = symbols.find(token);
        if (sym != symbols.end())
            return static_cast<s64>(sym->second);

        size_t pos = 0;
        bool negative = false;
        if (token[pos] == '-' || token[pos] == '+') {
            negative = token[pos] == '-';
            ++pos;
        }
        if (pos >= token.size())
            error("bad number '" + token + "'");
        u64 value = 0;
        if (token.compare(pos, 2, "0x") == 0 ||
            token.compare(pos, 2, "0X") == 0) {
            pos += 2;
            if (pos >= token.size())
                error("bad number '" + token + "'");
            for (; pos < token.size(); ++pos) {
                char c = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(token[pos])));
                if (c >= '0' && c <= '9')
                    value = value * 16 + (c - '0');
                else if (c >= 'a' && c <= 'f')
                    value = value * 16 + (c - 'a' + 10);
                else
                    error("bad number '" + token + "'");
            }
        } else {
            for (; pos < token.size(); ++pos) {
                if (!std::isdigit(static_cast<unsigned char>(token[pos])))
                    error("undefined symbol or bad number '" + token +
                          "'");
                value = value * 10 + (token[pos] - '0');
            }
        }
        s64 signed_value = static_cast<s64>(value);
        return negative ? -signed_value : signed_value;
    }

    s32
    parseImm(const std::string &token) const
    {
        return static_cast<s32>(parseValue(token));
    }

    /** "disp(rB)" memory operand. */
    std::pair<s32, u8>
    parseMem(const std::string &token) const
    {
        size_t open = token.find('(');
        size_t close = token.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open || close + 1 != token.size()) {
            error("expected disp(reg), got '" + token + "'");
        }
        std::string disp = trim(token.substr(0, open));
        std::string base = trim(token.substr(open + 1, close - open - 1));
        s32 displacement = disp.empty() ? 0 : parseImm(disp);
        return {displacement, parseIntReg(base)};
    }

    Label
    codeLabel(const std::string &name)
    {
        auto it = codeLabels.find(name);
        if (it != codeLabels.end())
            return it->second;
        Label label = asmb.newLabel();
        asmb.nameLabel(label, name);
        codeLabels.emplace(name, label);
        labelFirstLine.emplace(name, lineNo);
        return label;
    }

    // --- statement handling -----------------------------------------------

    void handleDirective(const std::string &head,
                         const std::string &rest);
    void handleInstruction(const std::string &mnemonic,
                           const std::string &rest);

    Assembler asmb;
    std::string unitName;
    const std::string &text;
    unsigned lineNo = 0;
    bool inData = false;

    /** Constant symbols and data-label addresses. */
    std::map<std::string, u64> symbols;
    /** Code labels (forward references allowed). */
    std::map<std::string, Label> codeLabels;
    std::map<std::string, bool> codeLabelBound;
    /** Line of each code label's first appearance (for diagnostics). */
    std::map<std::string, unsigned> labelFirstLine;
};

void
TextAssembler::handleDirective(const std::string &head,
                               const std::string &rest)
{
    if (head == ".data") {
        inData = true;
        // An optional base argument is accepted for documentation but
        // the data base is fixed at construction.
        return;
    }
    if (head == ".text") {
        inData = false;
        return;
    }
    if (head == ".align") {
        asmb.dataAlign(static_cast<unsigned>(parseValue(trim(rest))));
        return;
    }
    if (head == ".quad") {
        for (const std::string &token : splitOperands(rest))
            asmb.d64(static_cast<u64>(parseValue(token)));
        return;
    }
    if (head == ".byte") {
        std::vector<u8> bytes;
        for (const std::string &token : splitOperands(rest))
            bytes.push_back(static_cast<u8>(parseValue(token)));
        asmb.dBytes(bytes);
        return;
    }
    if (head == ".space") {
        asmb.dZero(static_cast<size_t>(parseValue(trim(rest))));
        return;
    }
    if (head == ".equ") {
        std::vector<std::string> parts = splitOperands(rest);
        if (parts.size() != 2)
            error(".equ needs name, value");
        symbols[parts[0]] = static_cast<u64>(parseValue(parts[1]));
        return;
    }
    error("unknown directive '" + head + "'");
}

void
TextAssembler::handleInstruction(const std::string &mnemonic,
                                 const std::string &rest)
{
    std::vector<std::string> ops =
        rest.empty() ? std::vector<std::string>{} : splitOperands(rest);
    auto need = [&](size_t n) {
        if (ops.size() != n)
            error("'" + mnemonic + "' expects " + std::to_string(n) +
                  " operands");
    };

    // Integer R-type.
    static const std::map<std::string, Opcode> r3 = {
        {"add", Opcode::ADD}, {"sub", Opcode::SUB}, {"mul", Opcode::MUL},
        {"and", Opcode::AND}, {"or", Opcode::OR}, {"xor", Opcode::XOR},
        {"sll", Opcode::SLL}, {"srl", Opcode::SRL}, {"sra", Opcode::SRA},
        {"cmpeq", Opcode::CMPEQ}, {"cmplt", Opcode::CMPLT},
        {"cmple", Opcode::CMPLE}, {"cmpult", Opcode::CMPULT}};
    if (auto it = r3.find(mnemonic); it != r3.end()) {
        need(3);
        Instr instr;
        instr.op = it->second;
        instr.ra = parseIntReg(ops[0]);
        instr.rb = parseIntReg(ops[1]);
        instr.rc = parseIntReg(ops[2]);
        asmb.emit(instr);
        return;
    }

    // Integer I-type.
    static const std::map<std::string, Opcode> i3 = {
        {"addi", Opcode::ADDI}, {"andi", Opcode::ANDI},
        {"ori", Opcode::ORI}, {"xori", Opcode::XORI},
        {"slli", Opcode::SLLI}, {"srli", Opcode::SRLI},
        {"srai", Opcode::SRAI}, {"cmpeqi", Opcode::CMPEQI},
        {"cmplti", Opcode::CMPLTI}, {"cmplei", Opcode::CMPLEI},
        {"cmpulti", Opcode::CMPULTI}, {"ldah", Opcode::LDAH}};
    if (auto it = i3.find(mnemonic); it != i3.end()) {
        need(3);
        u8 ra = parseIntReg(ops[0]);
        s32 imm = parseImm(ops[1]);
        u8 rc = parseIntReg(ops[2]);
        // Route through the typed emitters for immediate range checks.
        switch (it->second) {
          case Opcode::ADDI: asmb.addi(ra, imm, rc); break;
          case Opcode::ANDI: asmb.andi(ra, imm, rc); break;
          case Opcode::ORI: asmb.ori(ra, imm, rc); break;
          case Opcode::XORI: asmb.xori(ra, imm, rc); break;
          case Opcode::SLLI: asmb.slli(ra, imm, rc); break;
          case Opcode::SRLI: asmb.srli(ra, imm, rc); break;
          case Opcode::SRAI: asmb.srai(ra, imm, rc); break;
          case Opcode::CMPEQI: asmb.cmpeqi(ra, imm, rc); break;
          case Opcode::CMPLTI: asmb.cmplti(ra, imm, rc); break;
          case Opcode::CMPLEI: asmb.cmplei(ra, imm, rc); break;
          case Opcode::CMPULTI: asmb.cmpulti(ra, imm, rc); break;
          default: asmb.ldah(ra, imm, rc); break;
        }
        return;
    }

    // Memory.
    static const std::map<std::string, Opcode> mem = {
        {"ldq", Opcode::LDQ}, {"stq", Opcode::STQ},
        {"ldbu", Opcode::LDBU}, {"stb", Opcode::STB},
        {"fld", Opcode::FLD}, {"fst", Opcode::FST}};
    if (auto it = mem.find(mnemonic); it != mem.end()) {
        need(2);
        bool fp = (it->second == Opcode::FLD || it->second == Opcode::FST);
        auto [disp, base] = parseMem(ops[1]);
        u8 rc = fp ? parseFpReg(ops[0]) : parseIntReg(ops[0]);
        // Route through the typed emitters for displacement range
        // checks (a raw emit would silently truncate to 16 bits).
        switch (it->second) {
          case Opcode::LDQ: asmb.ldq(rc, disp, base); break;
          case Opcode::STQ: asmb.stq(rc, disp, base); break;
          case Opcode::LDBU: asmb.ldbu(rc, disp, base); break;
          case Opcode::STB: asmb.stb(rc, disp, base); break;
          case Opcode::FLD: asmb.fld(rc, disp, base); break;
          case Opcode::FST: asmb.fst(rc, disp, base); break;
          default: break;
        }
        return;
    }

    // Branches.
    static const std::map<std::string, Opcode> branches = {
        {"beq", Opcode::BEQ}, {"bne", Opcode::BNE}, {"blt", Opcode::BLT},
        {"bge", Opcode::BGE}, {"ble", Opcode::BLE}, {"bgt", Opcode::BGT}};
    if (auto it = branches.find(mnemonic); it != branches.end()) {
        need(2);
        u8 reg = parseIntReg(ops[0]);
        Label target = codeLabel(ops[1]);
        switch (it->second) {
          case Opcode::BEQ: asmb.beq(reg, target); break;
          case Opcode::BNE: asmb.bne(reg, target); break;
          case Opcode::BLT: asmb.blt(reg, target); break;
          case Opcode::BGE: asmb.bge(reg, target); break;
          case Opcode::BLE: asmb.ble(reg, target); break;
          default: asmb.bgt(reg, target); break;
        }
        return;
    }

    // FP R-type.
    static const std::map<std::string, Opcode> fp3 = {
        {"fadd", Opcode::FADD}, {"fsub", Opcode::FSUB},
        {"fmul", Opcode::FMUL}, {"fdiv", Opcode::FDIV}};
    if (auto it = fp3.find(mnemonic); it != fp3.end()) {
        need(3);
        Instr instr;
        instr.op = it->second;
        instr.ra = parseFpReg(ops[0]);
        instr.rb = parseFpReg(ops[1]);
        instr.rc = parseFpReg(ops[2]);
        asmb.emit(instr);
        return;
    }
    if (mnemonic == "fcmpeq" || mnemonic == "fcmplt") {
        need(3);
        Instr instr;
        instr.op =
            mnemonic == "fcmpeq" ? Opcode::FCMPEQ : Opcode::FCMPLT;
        instr.ra = parseFpReg(ops[0]);
        instr.rb = parseFpReg(ops[1]);
        instr.rc = parseIntReg(ops[2]);
        asmb.emit(instr);
        return;
    }
    if (mnemonic == "cvtif") {
        need(2);
        asmb.cvtif(parseIntReg(ops[0]), parseFpReg(ops[1]));
        return;
    }
    if (mnemonic == "cvtfi") {
        need(2);
        asmb.cvtfi(parseFpReg(ops[0]), parseIntReg(ops[1]));
        return;
    }

    // Control / misc / pseudo.
    if (mnemonic == "br") {
        need(1);
        asmb.br(codeLabel(ops[0]));
        return;
    }
    if (mnemonic == "jsr") {
        need(2);
        asmb.jsr(parseIntReg(ops[0]), codeLabel(ops[1]));
        return;
    }
    if (mnemonic == "ret") {
        if (ops.empty())
            asmb.ret();
        else if (ops.size() == 1)
            asmb.ret(parseIntReg(ops[0]));
        else
            error("'ret' expects at most one operand");
        return;
    }
    if (mnemonic == "li") {
        need(2);
        asmb.li(parseIntReg(ops[0]),
                static_cast<u64>(parseValue(ops[1])));
        return;
    }
    if (mnemonic == "mov") {
        need(2);
        asmb.mov(parseIntReg(ops[0]), parseIntReg(ops[1]));
        return;
    }
    if (mnemonic == "nop") {
        need(0);
        asmb.nop();
        return;
    }
    if (mnemonic == "halt") {
        need(0);
        asmb.halt();
        return;
    }
    error("unknown mnemonic '" + mnemonic + "'");
}

Program
TextAssembler::run()
{
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t end = text.find('\n', pos);
        std::string line = text.substr(
            pos, end == std::string::npos ? std::string::npos
                                          : end - pos);
        ++lineNo;
        pos = end == std::string::npos ? text.size() + 1 : end + 1;
        asmb.setLocation(unitName, lineNo);

        line = trim(stripComment(line));

        // Labels (possibly several on one line).
        while (true) {
            size_t colon = line.find(':');
            if (colon == std::string::npos)
                break;
            std::string name = trim(line.substr(0, colon));
            if (name.empty() ||
                name.find_first_of(" \t(),") != std::string::npos) {
                break;      // not a label (e.g. a mem operand colon-free)
            }
            if (inData) {
                if (symbols.count(name))
                    error("symbol '" + name + "' redefined");
                symbols[name] = asmb.dataPc();
            } else {
                Label label = codeLabel(name);
                if (codeLabelBound[name])
                    error("label '" + name + "' redefined");
                asmb.bind(label);
                codeLabelBound[name] = true;
            }
            line = trim(line.substr(colon + 1));
        }
        if (line.empty())
            continue;

        // Head token.
        size_t ws = line.find_first_of(" \t");
        std::string head =
            ws == std::string::npos ? line : line.substr(0, ws);
        std::string rest =
            ws == std::string::npos ? "" : trim(line.substr(ws + 1));

        if (head[0] == '.')
            handleDirective(head, rest);
        else
            handleInstruction(head, rest);
    }

    // All referenced code labels must be bound.
    for (const auto &[name, label] : codeLabels) {
        if (!codeLabelBound[name]) {
            fatal("%s:%u: undefined label '%s' (first referenced here)",
                  unitName.c_str(), labelFirstLine[name], name.c_str());
        }
    }
    return asmb.assemble(unitName);
}

} // anonymous namespace

Program
assembleText(const std::string &source, const std::string &name,
             Addr code_base, Addr data_base)
{
    TextAssembler parser(source, name, code_base, data_base);
    return parser.run();
}

} // namespace polypath
