#include "disasm.hh"

#include <cstdio>
#include <map>
#include <set>

#include "common/logging.hh"
#include "isa/instr.hh"

namespace polypath
{

namespace
{

std::string
hex(u64 value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
labelFor(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // anonymous namespace

std::string
disassembleProgram(const Program &program)
{
    std::string out;
    out += "; program: " + program.name + "\n";
    out += "; code base " + hex(program.codeBase) + ", entry " +
           hex(program.entry) + "\n\n";

    // --- data segments -------------------------------------------------
    for (const auto &[base, bytes] : program.dataSegments) {
        out += "        .data           ; base " + hex(base) + "\n";
        size_t i = 0;
        while (i + 8 <= bytes.size()) {
            u64 word = 0;
            for (int b = 0; b < 8; ++b)
                word |= static_cast<u64>(bytes[i + b]) << (8 * b);
            out += "        .quad   " + hex(word) + "\n";
            i += 8;
        }
        if (i < bytes.size()) {
            out += "        .byte   ";
            for (bool first = true; i < bytes.size(); ++i) {
                if (!first)
                    out += ", ";
                out += hex(bytes[i]);
                first = false;
            }
            out += "\n";
        }
        out += "\n";
    }

    // --- pass 1: collect control-flow targets --------------------------
    std::set<Addr> targets;
    Addr code_end = program.codeBase + 4 * program.code.size();
    for (size_t i = 0; i < program.code.size(); ++i) {
        Instr instr = decodeInstr(program.code[i]);
        const OpInfo &info = instr.info();
        if (info.isCondBranch || info.isUncondBranch) {
            Addr pc = program.codeBase + 4 * i;
            Addr target = instr.targetFrom(pc);
            fatal_if(target < program.codeBase || target >= code_end ||
                         target % 4 != 0,
                     "%s: branch at %#llx targets %#llx outside code",
                     program.name.c_str(),
                     static_cast<unsigned long long>(pc),
                     static_cast<unsigned long long>(target));
            targets.insert(target);
        }
    }

    // --- pass 2: emit instructions --------------------------------------
    out += "        .text\n";
    for (size_t i = 0; i < program.code.size(); ++i) {
        Addr pc = program.codeBase + 4 * i;
        if (targets.count(pc))
            out += labelFor(pc) + ":\n";
        Instr instr = decodeInstr(program.code[i]);
        const OpInfo &info = instr.info();
        fatal_if(info.isInvalid,
                 "%s: INVALID encoding at %#llx is not disassemblable",
                 program.name.c_str(),
                 static_cast<unsigned long long>(pc));

        std::string text;
        if (info.isCondBranch) {
            text = std::string(info.name) + " r" +
                   std::to_string(instr.ra) + ", " +
                   labelFor(instr.targetFrom(pc));
        } else if (instr.op == Opcode::BR) {
            text = "br " + labelFor(instr.targetFrom(pc));
        } else if (instr.op == Opcode::JSR) {
            text = "jsr r" + std::to_string(instr.ra) + ", " +
                   labelFor(instr.targetFrom(pc));
        } else {
            // Everything else round-trips through the instruction
            // disassembler's syntax.
            text = instr.toString();
        }
        out += "        " + text + "\n";
    }
    return out;
}

} // namespace polypath
