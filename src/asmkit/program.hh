/**
 * @file
 * A loadable PPR program image: code, initial data and an entry point.
 */

#ifndef POLYPATH_ASMKIT_PROGRAM_HH
#define POLYPATH_ASMKIT_PROGRAM_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace polypath
{

class DecodedProgram;
class SparseMemory;

/** A fully assembled program ready to be loaded into simulator memory. */
struct Program
{
    std::string name;
    Addr entry = 0;
    Addr codeBase = 0;
    std::vector<u32> code;

    /** (base address, bytes) pairs of initialised data. */
    std::vector<std::pair<Addr, std::vector<u8>>> dataSegments;

    /**
     * Source unit the program was assembled from (empty when built
     * programmatically through the Assembler API).
     */
    std::string sourceName;

    /**
     * Per-instruction source line, parallel to @ref code; empty when no
     * location information was recorded. 0 means "unknown".
     */
    std::vector<u32> srcLines;

    /** Source line of instruction @p idx, or 0 when unknown. */
    u32
    lineOf(size_t idx) const
    {
        return idx < srcLines.size() ? srcLines[idx] : 0;
    }

    /** Number of static instructions. */
    size_t codeSize() const { return code.size(); }

    /** Copy code and data into @p mem. */
    void loadInto(SparseMemory &mem) const;

    /**
     * Build (or return the already-built) predecode table for the text
     * segment — each static instruction decoded exactly once. The
     * assembler calls this when producing the Program, so consumers
     * normally just read decoded(). Not thread-safe; call before the
     * Program is shared across threads.
     */
    const DecodedProgram &predecode();

    /**
     * The shared predecode table, or nullptr when the Program was built
     * by hand without a predecode() call (consumers fall back to
     * building their own table or to word-at-a-time decodeInstr).
     */
    const DecodedProgram *decoded() const { return decodedText.get(); }

    /** Shared ownership of the predecode table (may be null). */
    std::shared_ptr<const DecodedProgram> decodedTable() const
    {
        return decodedText;
    }

  private:
    std::shared_ptr<const DecodedProgram> decodedText;
};

} // namespace polypath

#endif // POLYPATH_ASMKIT_PROGRAM_HH
