/**
 * @file
 * A loadable PPR program image: code, initial data and an entry point.
 */

#ifndef POLYPATH_ASMKIT_PROGRAM_HH
#define POLYPATH_ASMKIT_PROGRAM_HH

#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace polypath
{

class SparseMemory;

/** A fully assembled program ready to be loaded into simulator memory. */
struct Program
{
    std::string name;
    Addr entry = 0;
    Addr codeBase = 0;
    std::vector<u32> code;

    /** (base address, bytes) pairs of initialised data. */
    std::vector<std::pair<Addr, std::vector<u8>>> dataSegments;

    /**
     * Source unit the program was assembled from (empty when built
     * programmatically through the Assembler API).
     */
    std::string sourceName;

    /**
     * Per-instruction source line, parallel to @ref code; empty when no
     * location information was recorded. 0 means "unknown".
     */
    std::vector<u32> srcLines;

    /** Source line of instruction @p idx, or 0 when unknown. */
    u32
    lineOf(size_t idx) const
    {
        return idx < srcLines.size() ? srcLines[idx] : 0;
    }

    /** Number of static instructions. */
    size_t codeSize() const { return code.size(); }

    /** Copy code and data into @p mem. */
    void loadInto(SparseMemory &mem) const;
};

} // namespace polypath

#endif // POLYPATH_ASMKIT_PROGRAM_HH
