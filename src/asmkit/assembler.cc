#include "assembler.hh"

#include <limits>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace polypath
{

Assembler::Assembler(Addr code_base, Addr data_base)
    : codeBase(code_base), dataBase(data_base)
{
    fatal_if(code_base % 4 != 0, "code base must be word aligned");
}

Label
Assembler::newLabel()
{
    Label label{static_cast<u32>(labelPos.size())};
    labelPos.push_back(-1);
    labelNames.emplace_back();
    return label;
}

void
Assembler::nameLabel(Label label, const std::string &name)
{
    fatal_if(!label.valid() || label.id >= labelNames.size(),
             "nameLabel of invalid label");
    labelNames[label.id] = name;
}

void
Assembler::setLocation(const std::string &unit, unsigned line)
{
    unitName = unit;
    curLine = line;
}

std::string
Assembler::locPrefix() const
{
    if (unitName.empty() && curLine == 0)
        return "";
    return unitName + ":" + std::to_string(curLine) + ": ";
}

std::string
Assembler::locPrefixAt(size_t idx) const
{
    if (unitName.empty() || idx >= instrLines.size() ||
        instrLines[idx] == 0) {
        return "";
    }
    return unitName + ":" + std::to_string(instrLines[idx]) + ": ";
}

std::string
Assembler::labelDesc(u32 label_id) const
{
    if (label_id < labelNames.size() && !labelNames[label_id].empty())
        return "'" + labelNames[label_id] + "'";
    return "label " + std::to_string(label_id);
}

void
Assembler::bind(Label label)
{
    fatal_if(!label.valid() || label.id >= labelPos.size(),
             "bind of invalid label");
    fatal_if(labelPos[label.id] >= 0, "label %u bound twice", label.id);
    labelPos[label.id] = static_cast<s64>(instrs.size());
}

Label
Assembler::here()
{
    Label label = newLabel();
    bind(label);
    return label;
}

void
Assembler::emit(const Instr &instr)
{
    instrs.push_back(instr);
    instrLines.push_back(curLine);
}

Addr
Assembler::pc() const
{
    return codeBase + 4 * instrs.size();
}

void
Assembler::emitR(Opcode op, u8 ra, u8 rb, u8 rc)
{
    Instr instr;
    instr.op = op;
    instr.ra = ra & 31;
    instr.rb = rb & 31;
    instr.rc = rc & 31;
    emit(instr);
}

void
Assembler::emitI(Opcode op, u8 ra, s32 imm, u8 rc)
{
    bool logical = (op == Opcode::ANDI || op == Opcode::ORI ||
                    op == Opcode::XORI);
    if (logical) {
        // Zero-extended immediates: accept the full unsigned 16-bit
        // range (negative values would silently change meaning).
        fatal_if(imm < 0 || imm > 65535,
                 "%s%s: immediate %d out of unsigned 16-bit range",
                 locPrefix().c_str(), opName(op), imm);
    } else {
        fatal_if(imm < -32768 || imm > 32767,
                 "%s%s: immediate %d out of 16-bit range",
                 locPrefix().c_str(), opName(op), imm);
    }
    Instr instr;
    instr.op = op;
    instr.ra = ra & 31;
    instr.rc = rc & 31;
    instr.imm = imm;
    emit(instr);
}

void
Assembler::emitM(Opcode op, u8 ra, s32 disp, u8 rc)
{
    fatal_if(disp < -32768 || disp > 32767,
             "%s%s: displacement %d out of 16-bit range",
             locPrefix().c_str(), opName(op), disp);
    Instr instr;
    instr.op = op;
    instr.ra = ra & 31;
    instr.rc = rc & 31;
    instr.imm = disp;
    emit(instr);
}

void
Assembler::emitB(Opcode op, u8 ra, Label target)
{
    fatal_if(!target.valid(), "branch to invalid label");
    Instr instr;
    instr.op = op;
    instr.ra = ra & 31;
    instr.imm = 0;
    fixups.push_back({instrs.size(), target.id});
    emit(instr);
}

void
Assembler::br(Label t)
{
    fatal_if(!t.valid(), "br to invalid label");
    Instr instr;
    instr.op = Opcode::BR;
    instr.imm = 0;
    fixups.push_back({instrs.size(), t.id});
    emit(instr);
}

void
Assembler::ret(u8 ra)
{
    Instr instr;
    instr.op = Opcode::RET;
    instr.ra = ra & 31;
    emit(instr);
}

void
Assembler::nop()
{
    Instr instr;
    instr.op = Opcode::NOP;
    emit(instr);
}

void
Assembler::halt()
{
    Instr instr;
    instr.op = Opcode::HALT;
    emit(instr);
}

void
Assembler::li(u8 rc, u64 value)
{
    s64 sval = static_cast<s64>(value);
    // Fits in a signed 16-bit immediate?
    if (sval >= -32768 && sval <= 32767) {
        addi(31, static_cast<s32>(sval), rc);
        return;
    }
    // Fits in a signed 32-bit value? Use ldah + ori (adjusting for the
    // sign of the low half the way Alpha assemblers do).
    if (sval >= std::numeric_limits<s32>::min() &&
        sval <= std::numeric_limits<s32>::max()) {
        s32 lo = static_cast<s32>(static_cast<s16>(value & 0xffff));
        s64 hi = (sval - lo) >> 16;
        if (hi >= -32768 && hi <= 32767) {
            ldah(31, static_cast<s32>(hi), rc);
            if (lo != 0)
                addi(rc, lo, rc);
            return;
        }
    }
    // General 64-bit build: four 16-bit chunks with shifts.
    u16 c3 = static_cast<u16>(value >> 48);
    u16 c2 = static_cast<u16>(value >> 32);
    u16 c1 = static_cast<u16>(value >> 16);
    u16 c0 = static_cast<u16>(value);
    ori(31, static_cast<s32>(c3), rc);
    slli(rc, 16, rc);
    ori(rc, static_cast<s32>(c2), rc);
    slli(rc, 16, rc);
    ori(rc, static_cast<s32>(c1), rc);
    slli(rc, 16, rc);
    ori(rc, static_cast<s32>(c0), rc);
}

Addr
Assembler::dataAlign(unsigned alignment)
{
    fatal_if(!isPowerOf2(alignment), "dataAlign: %u not a power of two",
             alignment);
    while ((dataBase + data.size()) % alignment != 0)
        data.push_back(0);
    return dataBase + data.size();
}

Addr
Assembler::d64(u64 value)
{
    Addr addr = dataAlign(8);
    for (int i = 0; i < 8; ++i)
        data.push_back(static_cast<u8>(value >> (8 * i)));
    return addr;
}

Addr
Assembler::dBytes(const std::vector<u8> &bytes)
{
    Addr addr = dataBase + data.size();
    data.insert(data.end(), bytes.begin(), bytes.end());
    return addr;
}

Addr
Assembler::dZero(size_t count)
{
    Addr addr = dataBase + data.size();
    data.insert(data.end(), count, 0);
    return addr;
}

Addr
Assembler::dataPc() const
{
    return dataBase + data.size();
}

Program
Assembler::assemble(const std::string &name) const
{
    fatal_if(dataBase < codeBase + 4 * instrs.size() && !data.empty() &&
                 dataBase >= codeBase,
             "%s: data segment overlaps code", name.c_str());

    std::vector<Instr> patched = instrs;
    for (const Fixup &fixup : fixups) {
        fatal_if(labelPos[fixup.labelId] < 0,
                 "%s%s: unbound %s referenced by instruction %zu",
                 locPrefixAt(fixup.instrIndex).c_str(), name.c_str(),
                 labelDesc(fixup.labelId).c_str(), fixup.instrIndex);
        s64 target = labelPos[fixup.labelId];
        s64 disp = target - (static_cast<s64>(fixup.instrIndex) + 1);
        Instr &instr = patched[fixup.instrIndex];
        s64 limit = (instr.op == Opcode::BR) ? (s64(1) << 25)
                                             : (s64(1) << 20);
        fatal_if(disp < -limit || disp >= limit,
                 "%s%s: branch displacement %lld to %s out of range",
                 locPrefixAt(fixup.instrIndex).c_str(), name.c_str(),
                 static_cast<long long>(disp),
                 labelDesc(fixup.labelId).c_str());
        instr.imm = static_cast<s32>(disp);
    }

    Program prog;
    prog.name = name;
    prog.entry = codeBase;
    prog.codeBase = codeBase;
    prog.code.reserve(patched.size());
    for (const Instr &instr : patched)
        prog.code.push_back(encodeInstr(instr));
    if (!data.empty())
        prog.dataSegments.emplace_back(dataBase, data);
    prog.sourceName = unitName;
    bool any_line = false;
    for (u32 line : instrLines)
        any_line = any_line || line != 0;
    if (any_line)
        prog.srcLines = instrLines;
    // Decode each static instruction exactly once, here at program
    // build time; the timing core, the golden interpreter and the
    // analysis CodeView all share this table instead of re-decoding.
    prog.predecode();
    return prog;
}

} // namespace polypath
