/**
 * @file
 * Textual assembler for PPR: parses assembly source into a Program.
 *
 * Syntax (one statement per line; ';' or '#' starts a comment):
 *
 *     .data [base]          switch to the data section (default base
 *                           0x100000); subsequent data directives append
 *     .text                 switch back to code
 *     .align N              align the data cursor
 *     .quad v [, v ...]     64-bit little-endian words
 *     .byte v [, v ...]     raw bytes
 *     .space N              N zeroed bytes
 *     .equ name, value      define a constant symbol
 *
 *     label:                define a label (code or data position)
 *
 *     add   r1, r2, r3      integer R-type     rc = ra OP rb
 *     addi  r1, -4, r3      integer I-type     rc = ra OP imm
 *     ldq   r3, 16(r2)      loads              rd = mem[rb + disp]
 *     stq   r3, 16(r2)      stores             mem[rb + disp] = rd
 *     beq   r1, target      conditional branches
 *     br    target          unconditional
 *     jsr   r26, target     call (link register first)
 *     ret   [r26]           return
 *     fadd  f1, f2, f3      FP R-type; fcmpeq f1, f2, r3; cvtif r1, f2
 *     li    r1, 0xdeadbeef  pseudo: load constant or symbol
 *     mov   r1, r2          pseudo: register copy
 *     nop / halt
 *
 * Registers: r0..r31 / f0..f31 plus the aliases zero (r31), sp (r30),
 * ra (r26), v0 (r0). Immediates are decimal or 0x hex, and may be
 * previously-defined symbols (.equ constants or data labels). Code
 * labels may be referenced before definition; data/constant symbols
 * must be defined before use (the conventional ".data first" layout).
 *
 * Errors are reported through fatal() with the line number.
 */

#ifndef POLYPATH_ASMKIT_PARSER_HH
#define POLYPATH_ASMKIT_PARSER_HH

#include <string>

#include "asmkit/program.hh"

namespace polypath
{

/** Assemble PPR source text into a loadable program. */
Program assembleText(const std::string &source,
                     const std::string &name = "program",
                     Addr code_base = 0x1000, Addr data_base = 0x100000);

} // namespace polypath

#endif // POLYPATH_ASMKIT_PARSER_HH
