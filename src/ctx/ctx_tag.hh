/**
 * @file
 * Context (CTX) tags — the PolyPath instruction tagging scheme (§3.2.1).
 *
 * A CTX tag encodes the branch history that leads to an execution path as
 * a fixed number of 2-bit history positions. Each position is one of
 *   X (invalid), T (valid, taken), N (valid, not-taken)
 * per Fig. 4 of the paper. Positions are allocated to in-flight branches
 * by HistAlloc; when a branch commits, its position is invalidated in
 * every live tag and recycled (wrap-around reuse, no realignment).
 *
 * The central operation is the *hierarchy comparator* of Fig. 5:
 * path A is an ancestor of (or equal to) path B iff every valid position
 * of A is also valid in B with the same direction — position order is
 * irrelevant, which is what permits wrap-around reuse and out-of-order
 * branch resolution (unlike the 1-bit ABT scheme the paper contrasts
 * against).
 *
 * The implementation stores the valid bits and the direction bits as two
 * packed 64-bit masks, so tags support up to 64 history positions and the
 * comparator is a handful of logic ops, mirroring the gate-level design.
 */

#ifndef POLYPATH_CTX_CTX_TAG_HH
#define POLYPATH_CTX_CTX_TAG_HH

#include <bit>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace polypath
{

/** Maximum number of history positions a tag can hold. */
constexpr unsigned maxHistPositions = 64;

/** A context tag: packed T/N/X history positions. */
class CtxTag
{
  public:
    /** The root tag: all positions invalid (XX..X). */
    constexpr CtxTag() = default;

    /** Is position @p pos valid (T or N)? */
    bool
    valid(unsigned pos) const
    {
        return (validMask >> pos) & 1;
    }

    /** Direction at @p pos; only meaningful when valid(pos). */
    bool
    taken(unsigned pos) const
    {
        return (dirMask >> pos) & 1;
    }

    /** Record a branch direction at @p pos (must be invalid before). */
    void
    setPosition(unsigned pos, bool is_taken)
    {
        panic_if(pos >= maxHistPositions, "history position %u too large",
                 pos);
        panic_if(valid(pos), "history position %u assigned twice", pos);
        validMask |= u64(1) << pos;
        if (is_taken)
            dirMask |= u64(1) << pos;
    }

    /** Invalidate position @p pos (branch commit bus, §3.2.3 "commit"). */
    void
    clearPosition(unsigned pos)
    {
        u64 bit = u64(1) << pos;
        validMask &= ~bit;
        dirMask &= ~bit;    // keep direction bits canonical for ==
    }

    /** Derive the child tag extended with @p is_taken at @p pos. */
    CtxTag
    child(unsigned pos, bool is_taken) const
    {
        CtxTag tag = *this;
        tag.setPosition(pos, is_taken);
        return tag;
    }

    /**
     * The Fig. 5 hierarchy comparator: true iff this path is an ancestor
     * of @p other, or the same path.
     */
    bool
    isAncestorOrSelf(const CtxTag &other) const
    {
        // Every valid position of the (candidate) ancestor must be valid
        // in the descendant with an identical direction bit.
        bool subset = (validMask & ~other.validMask) == 0;
        bool dirs_match = ((dirMask ^ other.dirMask) & validMask) == 0;
        return subset && dirs_match;
    }

    /** True iff the two tags denote related paths (either direction). */
    bool
    isRelated(const CtxTag &other) const
    {
        return isAncestorOrSelf(other) || other.isAncestorOrSelf(*this);
    }

    /**
     * Branch-resolution kill predicate (§3.2.3 "resolution"): does this
     * tag lie on the wrong side of the branch holding history position
     * @p pos whose actual outcome was @p actual_taken?
     *
     * While a branch is in flight its position is unique to it, so any
     * tag with the position valid is a descendant of that branch; it is
     * on the wrong path iff its direction bit disagrees with the actual
     * outcome.
     */
    bool
    onWrongSide(unsigned pos, bool actual_taken) const
    {
        return valid(pos) && taken(pos) != actual_taken;
    }

    /** Tree depth: number of valid history positions. */
    unsigned depth() const { return std::popcount(validMask); }

    /** Reset to the root tag (§3.2.3 "clear"). */
    void
    clear()
    {
        validMask = 0;
        dirMask = 0;
    }

    bool
    operator==(const CtxTag &other) const
    {
        return validMask == other.validMask && dirMask == other.dirMask;
    }

    /** Render as e.g. "TNXX" for the first @p width positions. */
    std::string
    toString(unsigned width = 8) const
    {
        std::string out;
        for (unsigned pos = 0; pos < width; ++pos)
            out += !valid(pos) ? 'X' : (taken(pos) ? 'T' : 'N');
        return out;
    }

  private:
    u64 validMask = 0;
    u64 dirMask = 0;
};

} // namespace polypath

#endif // POLYPATH_CTX_CTX_TAG_HH
