/**
 * @file
 * Deferred branch-commit broadcast (§3.2.3 "commit", lazily applied).
 *
 * When a branch commits, its history position becomes dead state in
 * every live CTX tag. The seed implementation swept the whole
 * instruction window and front-end per branch commit to reset that one
 * valid bit — O(window) work on every commit of a branch.
 *
 * CommitClearLog defers the broadcast instead: commits append the
 * vacated position to a log, and every instruction carries a watermark
 * (`DynInst::clearsSeen`) of how much of the log its tag has absorbed.
 * Consumers either
 *   - apply() the outstanding suffix of the log to a tag when they next
 *     touch the instruction (rename, load issue, tracing), or
 *   - answer the only question the resolution bus asks — "is the bit at
 *     position P stale?" — in O(1) via pendingSince(), because the log
 *     records the index of each position's most recent clear.
 *
 * Wrap-around position reuse is what makes the staleness check
 * necessary AND sufficient: a tag can never *gain* a position after
 * fetch, so a set bit is either current (no clear recorded since the
 * watermark) or stale (a clear was recorded after it — the position
 * now belongs to a younger branch and must be ignored).
 */

#ifndef POLYPATH_CTX_CLEAR_LOG_HH
#define POLYPATH_CTX_CLEAR_LOG_HH

#include <array>
#include <vector>

#include "ctx/ctx_tag.hh"

namespace polypath
{

/** Append-only log of committed (vacated) history positions. */
class CommitClearLog
{
  public:
    /** Record the commit broadcast for @p pos. */
    void
    record(u8 pos)
    {
        log.push_back(pos);
        lastClear[pos] = static_cast<u32>(log.size());
    }

    /** Broadcasts recorded so far (watermark for new instructions). */
    u32 watermark() const { return static_cast<u32>(log.size()); }

    /**
     * Has position @p pos been cleared after watermark @p seen?
     * If so, a valid bit at @p pos in a tag with that watermark is
     * stale and must be treated as invalid.
     */
    bool
    pendingSince(u32 seen, unsigned pos) const
    {
        return lastClear[pos] > seen;
    }

    /** Apply all broadcasts past @p seen to @p tag and advance the
     *  watermark. */
    void
    apply(CtxTag &tag, u32 &seen) const
    {
        for (u32 i = seen; i < log.size(); ++i)
            tag.clearPosition(log[i]);
        seen = static_cast<u32>(log.size());
    }

    /**
     * Forget the whole history. Only legal once every live tag has
     * absorbed the full log (the core rebases watermarks to zero in the
     * same pass); bounds log growth on very long runs.
     */
    void
    rebase()
    {
        log.clear();
        lastClear.fill(0);
    }

  private:
    std::vector<u8> log;
    /** 1-based log index of each position's most recent clear;
     *  0 = never cleared. */
    std::array<u32, maxHistPositions> lastClear{};
};

} // namespace polypath

#endif // POLYPATH_CTX_CLEAR_LOG_HH
