/**
 * @file
 * History-position allocator (part of the CTX manager, §3.2.2 / §3.2.6).
 *
 * The CTX tag field width limits the number of in-flight conditional
 * branches, exactly as the number of checkpoint RegMaps limits pending
 * branches in a monopath machine. Positions are handed out left to right;
 * once exhausted, allocation wraps around and reuses positions as they
 * are vacated by committing (or killed) branches. The position-order
 * independence of the hierarchy comparator is what makes this reuse safe
 * without tag realignment.
 */

#ifndef POLYPATH_CTX_HIST_ALLOC_HH
#define POLYPATH_CTX_HIST_ALLOC_HH

#include <deque>

#include "common/logging.hh"
#include "common/types.hh"
#include "ctx/ctx_tag.hh"

namespace polypath
{

/** FIFO free list of CTX history positions. */
class HistAlloc
{
  public:
    explicit HistAlloc(unsigned num_positions)
        : numPositions(num_positions)
    {
        panic_if(num_positions == 0 || num_positions > maxHistPositions,
                 "HistAlloc: %u positions unsupported", num_positions);
        for (unsigned pos = 0; pos < num_positions; ++pos) {
            freeList.push_back(static_cast<u8>(pos));
            freeMask |= u64(1) << pos;
        }
    }

    /** Total positions (the tag width in history entries). */
    unsigned width() const { return numPositions; }

    /** Free positions remaining. */
    unsigned numFree() const { return freeList.size(); }

    /** Any position available? */
    bool available() const { return !freeList.empty(); }

    /**
     * Allocate the next position in wrap-around order.
     * Callers must check available() first.
     */
    u8
    alloc()
    {
        panic_if(freeList.empty(), "HistAlloc: allocation with none free");
        u8 pos = freeList.front();
        freeList.pop_front();
        freeMask &= ~(u64(1) << pos);
        return pos;
    }

    /** Return a vacated position to the free list. */
    void
    release(u8 pos)
    {
        panic_if(pos >= numPositions, "HistAlloc: bad position %u", pos);
        panic_if(freeMask & (u64(1) << pos),
                 "HistAlloc: double release of %u", pos);
        freeMask |= u64(1) << pos;
        freeList.push_back(pos);
    }

  private:
    unsigned numPositions;
    std::deque<u8> freeList;
    /** Bit per position mirroring freeList membership: makes the
     *  double-release check O(1) instead of a list scan per commit. */
    u64 freeMask = 0;
};

} // namespace polypath

#endif // POLYPATH_CTX_HIST_ALLOC_HH
