/**
 * @file
 * The golden functional reference interpreter for PPR.
 *
 * Executes a program sequentially with no timing model. It is the source
 * of truth for (a) architectural correctness of the out-of-order core,
 * (b) the committed-path branch trace consumed by the oracle predictor
 * and confidence estimator, and (c) workload instruction counts
 * (Table 1 of the paper).
 */

#ifndef POLYPATH_ARCH_INTERPRETER_HH
#define POLYPATH_ARCH_INTERPRETER_HH

#include <memory>

#include "arch/arch_state.hh"
#include "arch/branch_trace.hh"
#include "asmkit/program.hh"
#include "common/types.hh"
#include "isa/decoded_program.hh"
#include "memsys/memory.hh"

namespace polypath
{

/** Aggregate result of a reference run. */
struct InterpResult
{
    ArchState finalRegs;
    std::shared_ptr<SparseMemory> finalMem;
    std::shared_ptr<BranchTrace> trace;

    u64 instructions = 0;       //!< committed instructions (incl. HALT)
    u64 condBranches = 0;
    u64 takenBranches = 0;
    u64 loads = 0;
    u64 stores = 0;
    u64 calls = 0;
    bool halted = false;        //!< false if the instruction cap was hit
};

/** Stepwise reference interpreter. */
class Interpreter
{
  public:
    explicit Interpreter(const Program &program);

    /**
     * Execute one instruction.
     * @return false once HALT has executed.
     */
    bool step();

    /** True after HALT. */
    bool halted() const { return isHalted; }

    /** Architectural state access (for tests). */
    ArchState &state() { return archState; }
    const ArchState &state() const { return archState; }
    SparseMemory &memory() { return *mem; }

    /** Statistics and trace accumulated so far. */
    const InterpResult &partialResult() const { return result; }

    /**
     * Run to completion.
     * @param max_instrs safety cap; exceeding it is a fatal workload bug
     */
    InterpResult run(u64 max_instrs = 2'000'000'000ull);

  private:
    ArchState archState;
    std::shared_ptr<SparseMemory> mem;
    std::shared_ptr<BranchTrace> trace;

    /**
     * Predecode table shared with the Program (or privately built for
     * hand-made Programs): the golden run re-executes hot loops
     * millions of times, so each static instruction is decoded once.
     * PCs outside the text segment fall back to decoding memory, which
     * then fatals on INVALID exactly as before.
     */
    std::shared_ptr<const DecodedProgram> decodedText;

    InterpResult result;
    bool isHalted = false;
};

/** Convenience: interpret @p program to completion. */
InterpResult interpret(const Program &program,
                       u64 max_instrs = 2'000'000'000ull);

} // namespace polypath

#endif // POLYPATH_ARCH_INTERPRETER_HH
