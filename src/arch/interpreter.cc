#include "interpreter.hh"

#include "common/logging.hh"
#include "isa/semantics.hh"

namespace polypath
{

Interpreter::Interpreter(const Program &program)
    : mem(std::make_shared<SparseMemory>()),
      trace(std::make_shared<BranchTrace>()),
      decodedText(program.decodedTable())
{
    program.loadInto(*mem);
    archState.pc = program.entry;
    if (!decodedText) {
        decodedText = std::make_shared<const DecodedProgram>(
            program.codeBase, program.code.data(), program.code.size());
    }
}

bool
Interpreter::step()
{
    if (isHalted)
        return false;

    Addr pc = archState.pc;
    const PredecodedInstr *slot = decodedText->lookup(pc);
    Instr instr = slot ? slot->instr : decodeInstr(mem->read32(pc));
    const OpInfo &info = slot ? *slot->info : instr.info();

    fatal_if(info.isInvalid,
             "reference interpreter decoded INVALID at pc %#llx "
             "(workload bug: fell off the program?)",
             static_cast<unsigned long long>(pc));

    ++result.instructions;
    Addr next_pc = pc + 4;

    if (info.isCondBranch) {
        bool taken = evalCondBranch(instr, archState.reg(instr.src1()));
        trace->push_back({pc, false, taken, 0});
        ++result.condBranches;
        if (taken) {
            ++result.takenBranches;
            next_pc = instr.targetFrom(pc);
        }
    } else if (info.isUncondBranch) {
        if (info.isCall) {
            archState.setReg(instr.dst(), pc + 4);
            ++result.calls;
        }
        next_pc = instr.targetFrom(pc);
    } else if (info.isReturn) {
        next_pc = archState.reg(instr.src1());
        trace->push_back({pc, true, false, next_pc});
    } else if (info.isLoad) {
        Addr ea = effectiveAddr(instr, archState.reg(instr.src1()));
        archState.setReg(instr.dst(), mem->read(ea, instr.accessSize()));
        ++result.loads;
    } else if (info.isStore) {
        Addr ea = effectiveAddr(instr, archState.reg(instr.src1()));
        mem->write(ea, archState.reg(instr.src2()), instr.accessSize());
        ++result.stores;
    } else if (info.isHalt) {
        isHalted = true;
        result.halted = true;
    } else if (instr.op != Opcode::NOP) {
        u64 a = archState.reg(instr.src1());
        u64 b = archState.reg(instr.src2());
        archState.setReg(instr.dst(), computeResult(instr, a, b, pc));
    }

    archState.pc = next_pc;
    return !isHalted;
}

InterpResult
Interpreter::run(u64 max_instrs)
{
    while (!isHalted) {
        fatal_if(result.instructions >= max_instrs,
                 "reference interpreter exceeded %llu instructions "
                 "without HALT (runaway workload?)",
                 static_cast<unsigned long long>(max_instrs));
        step();
    }
    result.finalRegs = archState;
    result.finalMem = mem;
    result.trace = trace;
    return result;
}

InterpResult
interpret(const Program &program, u64 max_instrs)
{
    Interpreter interp(program);
    return interp.run(max_instrs);
}

} // namespace polypath
