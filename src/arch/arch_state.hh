/**
 * @file
 * Architectural register state of a PPR machine.
 *
 * Registers live in a unified 64-entry file (0..31 integer, 32..63 FP
 * bit patterns); the two zero registers read as zero and swallow writes.
 */

#ifndef POLYPATH_ARCH_ARCH_STATE_HH
#define POLYPATH_ARCH_ARCH_STATE_HH

#include <array>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace polypath
{

/** Committed (architectural) register state. */
class ArchState
{
  public:
    ArchState() { regs.fill(0); }

    /** Read logical register @p reg; zero registers read as 0. */
    u64
    reg(LogReg reg) const
    {
        if (reg == noReg || isZeroReg(reg))
            return 0;
        return regs[reg];
    }

    /** Write logical register @p reg; writes to zero registers vanish. */
    void
    setReg(LogReg reg, u64 value)
    {
        if (reg == noReg || isZeroReg(reg))
            return;
        regs[reg] = value;
    }

    /** Current program counter. */
    Addr pc = 0;

    /** Full-file equality, ignoring the zero registers. */
    bool
    operator==(const ArchState &other) const
    {
        for (LogReg r = 0; r < numLogRegs; ++r) {
            if (isZeroReg(r))
                continue;
            if (regs[r] != other.regs[r])
                return false;
        }
        return true;
    }

  private:
    std::array<u64, numLogRegs> regs;
};

} // namespace polypath

#endif // POLYPATH_ARCH_ARCH_STATE_HH
