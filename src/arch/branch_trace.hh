/**
 * @file
 * Dynamic control-flow trace of the committed (correct) path.
 *
 * The golden interpreter records one entry per dynamic conditional branch
 * *and* per return (returns can mispredict through RAS over/underflow, so
 * the correct-path cursor must track them too). The timing simulator uses
 * the trace for three purposes:
 *   1. the oracle branch predictor (paper's "oracle" category);
 *   2. the oracle confidence estimator (paper's "gshare/oracle");
 *   3. end-to-end verification: every run checks its committed branch
 *      stream against this trace, so timing bugs that corrupt control
 *      flow cannot go unnoticed.
 */

#ifndef POLYPATH_ARCH_BRANCH_TRACE_HH
#define POLYPATH_ARCH_BRANCH_TRACE_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace polypath
{

/** One dynamic control-flow decision on the correct path. */
struct BranchRecord
{
    Addr pc;
    bool isReturn;      //!< false: conditional branch; true: RET
    bool taken;         //!< conditional branches only
    Addr target;        //!< returns only: actual return target
};

/** The committed-path control-flow trace. */
using BranchTrace = std::vector<BranchRecord>;

/**
 * A fetch path's position in the committed control-flow trace.
 *
 * Every path context carries one: while the context is on the correct
 * execution path, @p index is the dynamic number of the next trace
 * record (conditional branch or return) it will fetch. Once the context
 * strays — it followed a wrong prediction, the wrong side of a
 * divergence, or a wrong return target — onCorrectPath goes false and
 * the ground-truth outcome becomes unknowable, which is exactly the
 * information boundary a real oracle would have.
 */
struct TraceCursor
{
    bool onCorrectPath = false;
    u64 index = 0;

    /** Is the next record's outcome known (and of branch kind)? */
    bool
    outcomeKnown(const BranchTrace &trace) const
    {
        return onCorrectPath && index < trace.size() &&
               !trace[index].isReturn;
    }

    /** Actual outcome of the next branch; requires outcomeKnown(). */
    bool
    actualTaken(const BranchTrace &trace) const
    {
        panic_if(!onCorrectPath || index >= trace.size() ||
                     trace[index].isReturn,
                 "TraceCursor::actualTaken without a known branch");
        return trace[index].taken;
    }

    /** Is the next record a return with a known target? */
    bool
    returnKnown(const BranchTrace &trace) const
    {
        return onCorrectPath && index < trace.size() &&
               trace[index].isReturn;
    }
};

} // namespace polypath

#endif // POLYPATH_ARCH_BRANCH_TRACE_HH
