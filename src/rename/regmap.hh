/**
 * @file
 * Register mapping table (RegMap) with checkpointing (§3.1 / §3.2.5).
 *
 * Maps the 64 unified logical registers to physical registers. In the
 * PolyPath machine each live path owns one RegMap; a divergent branch
 * clones its path's map once for each successor path (the same two-copy
 * budget a monopath machine spends on active + checkpoint copies), and a
 * predicted branch stores a checkpoint clone for misprediction recovery.
 */

#ifndef POLYPATH_RENAME_REGMAP_HH
#define POLYPATH_RENAME_REGMAP_HH

#include <array>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/opcodes.hh"
#include "rename/phys_regfile.hh"

namespace polypath
{

/** One logical-to-physical register mapping table. */
class RegMap
{
  public:
    /** Fresh map: every logical register reads the constant zero. */
    RegMap() { map.fill(zeroPhysReg); }

    /** Translate logical register @p reg. */
    PhysReg
    lookup(LogReg reg) const
    {
        if (reg == noReg)
            return invalidPhysReg;
        panic_if(reg >= numLogRegs, "lookup of bad logical reg %u", reg);
        return map[reg];
    }

    /**
     * Point logical register @p reg at @p phys_reg.
     * @return the previous mapping (the instruction's "old destination",
     *         recycled at commit or on a squash)
     */
    PhysReg
    rename(LogReg reg, PhysReg phys_reg)
    {
        panic_if(reg == noReg || reg >= numLogRegs || isZeroReg(reg),
                 "rename of bad logical reg %u", reg);
        PhysReg old = map[reg];
        map[reg] = phys_reg;
        return old;
    }

    bool operator==(const RegMap &other) const { return map == other.map; }

  private:
    std::array<PhysReg, numLogRegs> map;
};

} // namespace polypath

#endif // POLYPATH_RENAME_REGMAP_HH
