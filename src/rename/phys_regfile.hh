/**
 * @file
 * Unified physical register file with free list and ready bits.
 *
 * Physical register 0 is reserved as the constant-zero register: the
 * logical zero registers (r31/f31) map to it permanently, it is always
 * ready, always reads 0, and is never allocated or freed.
 */

#ifndef POLYPATH_RENAME_PHYS_REGFILE_HH
#define POLYPATH_RENAME_PHYS_REGFILE_HH

#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace polypath
{

/** The constant-zero physical register. */
constexpr PhysReg zeroPhysReg = 0;

/** Physical register file: values, ready bits, free list. */
class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned num_regs)
        : values(num_regs, 0), readyBits(num_regs, false)
    {
        panic_if(num_regs < 2, "PhysRegFile needs at least 2 registers");
        readyBits[zeroPhysReg] = true;
        for (PhysReg reg = 1; reg < num_regs; ++reg)
            freeList.push_back(reg);
    }

    unsigned numRegs() const { return values.size(); }
    unsigned numFree() const { return freeList.size(); }
    bool hasFree() const { return !freeList.empty(); }

    /** Allocate a register; it starts not-ready. */
    PhysReg
    alloc()
    {
        panic_if(freeList.empty(), "physical register file exhausted");
        PhysReg reg = freeList.front();
        freeList.pop_front();
        readyBits[reg] = false;
        values[reg] = 0;
        return reg;
    }

    /** Return a register to the free list; phys 0 is never freed. */
    void
    release(PhysReg reg)
    {
        if (reg == zeroPhysReg || reg == invalidPhysReg)
            return;
        panic_if(reg >= values.size(), "release of bad phys reg %u", reg);
        freeList.push_back(reg);
    }

    /** Read a register value (phys 0 always reads 0). */
    u64
    value(PhysReg reg) const
    {
        panic_if(reg >= values.size(), "read of bad phys reg %u", reg);
        return values[reg];
    }

    /** Write a result and mark the register ready. */
    void
    setValue(PhysReg reg, u64 value)
    {
        panic_if(reg >= values.size(), "write of bad phys reg %u", reg);
        panic_if(reg == zeroPhysReg, "write to constant-zero phys reg");
        values[reg] = value;
        readyBits[reg] = true;
    }

    /** Has the register's value been produced yet? */
    bool
    ready(PhysReg reg) const
    {
        panic_if(reg >= values.size(), "ready check of bad phys reg %u",
                 reg);
        return readyBits[reg];
    }

    /** Bitmap of currently-free registers (invariant checking). */
    std::vector<bool>
    freeMask() const
    {
        std::vector<bool> mask(values.size(), false);
        for (PhysReg reg : freeList)
            mask[reg] = true;
        return mask;
    }

  private:
    std::vector<u64> values;
    std::vector<bool> readyBits;
    std::deque<PhysReg> freeList;
};

} // namespace polypath

#endif // POLYPATH_RENAME_PHYS_REGFILE_HH
