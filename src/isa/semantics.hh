/**
 * @file
 * Pure functional semantics of PPR instructions.
 *
 * Both the golden reference interpreter (src/arch) and the out-of-order
 * timing core (src/core) compute results through these functions, so the
 * two can never disagree on what an instruction *means* — any mismatch
 * between timing and reference runs is a genuine timing-model bug.
 *
 * All operations are total: shift amounts are masked to 6 bits, FP
 * division by zero follows IEEE (inf/nan bit patterns), and CVTFI of
 * non-finite values saturates. Nothing here can trap, which is essential
 * because wrong-path instructions execute on garbage values.
 */

#ifndef POLYPATH_ISA_SEMANTICS_HH
#define POLYPATH_ISA_SEMANTICS_HH

#include "common/types.hh"
#include "isa/instr.hh"

namespace polypath
{

/**
 * Compute the result of a non-memory, non-branch instruction.
 *
 * @param instr decoded instruction (ALU, FP, LDAH, JSR link, ...)
 * @param a value of src1 (or 0 if none); FP values as bit patterns
 * @param b value of src2 (or 0 if none)
 * @param pc the instruction's own PC (needed for the JSR link value)
 * @return the destination value (FP results as bit patterns)
 */
u64 computeResult(const Instr &instr, u64 a, u64 b, Addr pc);

/**
 * Evaluate a conditional branch.
 *
 * @param instr a conditional-branch instruction
 * @param a value of the condition register ra
 * @return true iff the branch is taken
 */
bool evalCondBranch(const Instr &instr, u64 a);

/**
 * Effective address of a memory instruction.
 *
 * @param instr a load or store
 * @param base value of the base register ra
 */
Addr effectiveAddr(const Instr &instr, u64 base);

} // namespace polypath

#endif // POLYPATH_ISA_SEMANTICS_HH
