/**
 * @file
 * Decoded PPR instruction representation, binary encode/decode and
 * disassembly.
 *
 * Encoding formats (32-bit words):
 *   R:  [31:26] op  [25:21] ra  [20:16] rb  [15:11] rc  [10:0] 0
 *   I:  [31:26] op  [25:21] ra  [20:16] rc  [15:0]  imm16
 *   M:  [31:26] op  [25:21] ra  [20:16] rc  [15:0]  disp16
 *   B:  [31:26] op  [25:21] ra  [20:0]  disp21   (word displacement)
 *   J:  [31:26] op  [25:0]  disp26               (word displacement)
 *
 * Branch/jump targets are pc + 4 + 4*disp.
 */

#ifndef POLYPATH_ISA_INSTR_HH
#define POLYPATH_ISA_INSTR_HH

#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace polypath
{

/** A decoded PPR instruction. */
struct Instr
{
    Opcode op = Opcode::INVALID;
    u8 ra = 0;      //!< first register field
    u8 rb = 0;      //!< second register field (R format)
    u8 rc = 0;      //!< destination / data register field
    s32 imm = 0;    //!< sign-extended immediate or word displacement

    /** Static properties of this opcode. */
    const OpInfo &info() const { return opInfo(op); }

    /**
     * First source register in the unified logical namespace, or noReg.
     * For memory ops this is the address base; for stores the data
     * register is src2.
     */
    LogReg src1() const;

    /** Second source register, or noReg. */
    LogReg src2() const;

    /**
     * Destination register, or noReg. Writes to the zero registers are
     * reported as noReg (they are architecturally discarded).
     */
    LogReg dst() const;

    /** Branch/call/jump target for pc-relative control flow. */
    Addr
    targetFrom(Addr pc) const
    {
        return pc + 4 + 4 * static_cast<s64>(imm);
    }

    /** True for conditional branches. */
    bool isCondBranch() const { return info().isCondBranch; }

    /** True for any control-transfer instruction. */
    bool
    isControl() const
    {
        const OpInfo &i = info();
        return i.isCondBranch || i.isUncondBranch || i.isReturn;
    }

    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isMem() const { return isLoad() || isStore(); }

    /**
     * True when execution can continue at pc + 4: everything except the
     * unconditional transfers (BR, RET) and HALT. Conditional branches
     * and JSR (which returns to pc + 4) fall through.
     */
    bool fallsThrough() const;

    /** True when this instruction ends a basic block. */
    bool
    endsBlock() const
    {
        return isControl() || info().isHalt;
    }

    /**
     * Collect the source registers into @p out (unified namespace,
     * zero registers included); returns how many were written (0..2).
     */
    unsigned srcRegs(LogReg out[2]) const;

    /** Memory access size in bytes (1 or 8); only valid for mem ops. */
    unsigned accessSize() const;

    /** Disassemble to a human-readable string. */
    std::string toString() const;
};

/** Encode @p instr into its 32-bit binary form. */
u32 encodeInstr(const Instr &instr);

/**
 * Decode a 32-bit word. Never fails: out-of-range opcode fields decode
 * to Opcode::INVALID (wrong-path fetch can pull arbitrary bits).
 */
Instr decodeInstr(u32 word);

} // namespace polypath

#endif // POLYPATH_ISA_INSTR_HH
