#include "semantics.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace polypath
{

namespace
{

double
asDouble(u64 bits_value)
{
    return std::bit_cast<double>(bits_value);
}

u64
asBits(double value)
{
    return std::bit_cast<u64>(value);
}

/** Total conversion double -> s64; saturates on overflow/NaN. */
s64
doubleToS64(double value)
{
    if (std::isnan(value))
        return 0;
    constexpr double lo = -9.223372036854776e18;
    constexpr double hi = 9.223372036854776e18;
    if (value <= lo)
        return std::numeric_limits<s64>::min();
    if (value >= hi)
        return std::numeric_limits<s64>::max();
    return static_cast<s64>(value);
}

} // anonymous namespace

u64
computeResult(const Instr &instr, u64 a, u64 b, Addr pc)
{
    s64 imm = instr.imm;
    switch (instr.op) {
      case Opcode::ADD:     return a + b;
      case Opcode::SUB:     return a - b;
      case Opcode::MUL:     return a * b;
      case Opcode::AND:     return a & b;
      case Opcode::OR:      return a | b;
      case Opcode::XOR:     return a ^ b;
      case Opcode::SLL:     return a << (b & 63);
      case Opcode::SRL:     return a >> (b & 63);
      case Opcode::SRA:
        return static_cast<u64>(static_cast<s64>(a) >> (b & 63));
      case Opcode::CMPEQ:   return a == b ? 1 : 0;
      case Opcode::CMPLT:
        return static_cast<s64>(a) < static_cast<s64>(b) ? 1 : 0;
      case Opcode::CMPLE:
        return static_cast<s64>(a) <= static_cast<s64>(b) ? 1 : 0;
      case Opcode::CMPULT:  return a < b ? 1 : 0;

      case Opcode::ADDI:    return a + static_cast<u64>(imm);
      case Opcode::ANDI:    return a & static_cast<u64>(imm);
      case Opcode::ORI:     return a | static_cast<u64>(imm);
      case Opcode::XORI:    return a ^ static_cast<u64>(imm);
      case Opcode::SLLI:    return a << (imm & 63);
      case Opcode::SRLI:    return a >> (imm & 63);
      case Opcode::SRAI:
        return static_cast<u64>(static_cast<s64>(a) >> (imm & 63));
      case Opcode::CMPEQI:
        return a == static_cast<u64>(imm) ? 1 : 0;
      case Opcode::CMPLTI:
        return static_cast<s64>(a) < imm ? 1 : 0;
      case Opcode::CMPLEI:
        return static_cast<s64>(a) <= imm ? 1 : 0;
      case Opcode::CMPULTI:
        return a < static_cast<u64>(imm) ? 1 : 0;
      case Opcode::LDAH:
        return a + (static_cast<u64>(imm) << 16);

      case Opcode::JSR:     return pc + 4;

      case Opcode::FADD:    return asBits(asDouble(a) + asDouble(b));
      case Opcode::FSUB:    return asBits(asDouble(a) - asDouble(b));
      case Opcode::FMUL:    return asBits(asDouble(a) * asDouble(b));
      case Opcode::FDIV:    return asBits(asDouble(a) / asDouble(b));
      case Opcode::FCMPEQ:  return asDouble(a) == asDouble(b) ? 1 : 0;
      case Opcode::FCMPLT:  return asDouble(a) < asDouble(b) ? 1 : 0;
      case Opcode::CVTIF:
        return asBits(static_cast<double>(static_cast<s64>(a)));
      case Opcode::CVTFI:
        return static_cast<u64>(doubleToS64(asDouble(a)));

      case Opcode::NOP:
      case Opcode::HALT:
      case Opcode::INVALID:
        return 0;

      default:
        panic("computeResult: op %s has no ALU semantics",
              opName(instr.op));
    }
}

bool
evalCondBranch(const Instr &instr, u64 a)
{
    s64 sa = static_cast<s64>(a);
    switch (instr.op) {
      case Opcode::BEQ: return a == 0;
      case Opcode::BNE: return a != 0;
      case Opcode::BLT: return sa < 0;
      case Opcode::BGE: return sa >= 0;
      case Opcode::BLE: return sa <= 0;
      case Opcode::BGT: return sa > 0;
      default:
        panic("evalCondBranch: %s is not a conditional branch",
              opName(instr.op));
    }
}

Addr
effectiveAddr(const Instr &instr, u64 base)
{
    return base + static_cast<u64>(static_cast<s64>(instr.imm));
}

} // namespace polypath
