#include "instr.hh"

#include <cinttypes>
#include <cstdio>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace polypath
{

namespace
{

/** True for opcodes whose register operands live in the FP file. */
bool
isFpOperandOp(Opcode op)
{
    switch (op) {
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::FCMPEQ:
      case Opcode::FCMPLT:
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

LogReg
Instr::src1() const
{
    const OpInfo &i = info();
    switch (i.format) {
      case Format::R:
        if (op == Opcode::RET)
            return intReg(ra);
        if (isFpOperandOp(op) || op == Opcode::CVTFI)
            return fpReg(ra);
        if (op == Opcode::CVTIF)
            return intReg(ra);
        return intReg(ra);
      case Format::I:
        return intReg(ra);
      case Format::M:
        return intReg(ra);            // address base
      case Format::B:
        if (op == Opcode::JSR)
            return noReg;             // link-only, no source
        return intReg(ra);            // branch condition input
      case Format::J:
      case Format::N:
        return noReg;
    }
    return noReg;
}

LogReg
Instr::src2() const
{
    const OpInfo &i = info();
    switch (i.format) {
      case Format::R:
        if (op == Opcode::RET || op == Opcode::CVTIF ||
            op == Opcode::CVTFI) {
            return noReg;
        }
        if (isFpOperandOp(op))
            return fpReg(rb);
        return intReg(rb);
      case Format::M:
        // Store data register.
        if (op == Opcode::STQ || op == Opcode::STB)
            return intReg(rc);
        if (op == Opcode::FST)
            return fpReg(rc);
        return noReg;
      default:
        return noReg;
    }
}

LogReg
Instr::dst() const
{
    const OpInfo &i = info();
    LogReg d = noReg;
    switch (i.format) {
      case Format::R:
        if (op == Opcode::RET)
            return noReg;
        if (op == Opcode::FADD || op == Opcode::FSUB ||
            op == Opcode::FMUL || op == Opcode::FDIV ||
            op == Opcode::CVTIF) {
            d = fpReg(rc);
        } else if (op == Opcode::FCMPEQ || op == Opcode::FCMPLT ||
                   op == Opcode::CVTFI) {
            d = intReg(rc);
        } else {
            d = intReg(rc);
        }
        break;
      case Format::I:
        d = intReg(rc);
        break;
      case Format::M:
        if (op == Opcode::LDQ || op == Opcode::LDBU)
            d = intReg(rc);
        else if (op == Opcode::FLD)
            d = fpReg(rc);
        else
            d = noReg;                // stores have no register dest
        break;
      case Format::B:
        if (op == Opcode::JSR)
            d = intReg(ra);           // link register
        break;
      case Format::J:
      case Format::N:
        break;
    }
    if (d != noReg && isZeroReg(d))
        return noReg;
    return d;
}

bool
Instr::fallsThrough() const
{
    const OpInfo &i = info();
    if (i.isHalt || i.isReturn)
        return false;
    if (op == Opcode::BR)
        return false;
    return true;
}

unsigned
Instr::srcRegs(LogReg out[2]) const
{
    unsigned count = 0;
    if (LogReg r = src1(); r != noReg)
        out[count++] = r;
    if (LogReg r = src2(); r != noReg)
        out[count++] = r;
    return count;
}

unsigned
Instr::accessSize() const
{
    switch (op) {
      case Opcode::LDBU:
      case Opcode::STB:
        return 1;
      case Opcode::LDQ:
      case Opcode::STQ:
      case Opcode::FLD:
      case Opcode::FST:
        return 8;
      default:
        panic("accessSize() on non-memory op %s", opName(op));
    }
}

u32
encodeInstr(const Instr &instr)
{
    const OpInfo &i = opInfo(instr.op);
    u32 word = static_cast<u32>(
        insertBits(static_cast<u64>(instr.op), 31, 26));
    switch (i.format) {
      case Format::R:
        word |= insertBits(instr.ra, 25, 21);
        word |= insertBits(instr.rb, 20, 16);
        word |= insertBits(instr.rc, 15, 11);
        break;
      case Format::I:
      case Format::M:
        word |= insertBits(instr.ra, 25, 21);
        word |= insertBits(instr.rc, 20, 16);
        word |= insertBits(static_cast<u64>(instr.imm) & 0xffff, 15, 0);
        break;
      case Format::B:
        word |= insertBits(instr.ra, 25, 21);
        word |= insertBits(static_cast<u64>(instr.imm) & 0x1fffff, 20, 0);
        break;
      case Format::J:
        word |= insertBits(static_cast<u64>(instr.imm) & 0x3ffffff, 25, 0);
        break;
      case Format::N:
        break;
    }
    return word;
}

Instr
decodeInstr(u32 word)
{
    Instr instr;
    u32 opfield = static_cast<u32>(bits(word, 31, 26));
    if (opfield >= static_cast<u32>(Opcode::NumOpcodes)) {
        instr.op = Opcode::INVALID;
        return instr;
    }
    instr.op = static_cast<Opcode>(opfield);
    const OpInfo &i = opInfo(instr.op);
    switch (i.format) {
      case Format::R:
        instr.ra = static_cast<u8>(bits(word, 25, 21));
        instr.rb = static_cast<u8>(bits(word, 20, 16));
        instr.rc = static_cast<u8>(bits(word, 15, 11));
        break;
      case Format::I:
      case Format::M:
        instr.ra = static_cast<u8>(bits(word, 25, 21));
        instr.rc = static_cast<u8>(bits(word, 20, 16));
        // Logical immediates are zero-extended (MIPS-style) so constant
        // materialisation can OR in raw 16-bit chunks; everything else
        // sign-extends.
        if (instr.op == Opcode::ANDI || instr.op == Opcode::ORI ||
            instr.op == Opcode::XORI) {
            instr.imm = static_cast<s32>(bits(word, 15, 0));
        } else {
            instr.imm = static_cast<s32>(sext(bits(word, 15, 0), 16));
        }
        break;
      case Format::B:
        instr.ra = static_cast<u8>(bits(word, 25, 21));
        instr.imm = static_cast<s32>(sext(bits(word, 20, 0), 21));
        break;
      case Format::J:
        instr.imm = static_cast<s32>(sext(bits(word, 25, 0), 26));
        break;
      case Format::N:
        break;
    }
    return instr;
}

std::string
Instr::toString() const
{
    char buf[96];
    const OpInfo &i = info();
    switch (i.format) {
      case Format::R:
        if (op == Opcode::RET) {
            std::snprintf(buf, sizeof(buf), "ret r%u", ra);
        } else if (op == Opcode::CVTIF) {
            std::snprintf(buf, sizeof(buf), "cvtif r%u, f%u", ra, rc);
        } else if (op == Opcode::CVTFI) {
            std::snprintf(buf, sizeof(buf), "cvtfi f%u, r%u", ra, rc);
        } else if (isFpOperandOp(op)) {
            bool int_dst = (op == Opcode::FCMPEQ || op == Opcode::FCMPLT);
            std::snprintf(buf, sizeof(buf), "%s f%u, f%u, %c%u",
                          i.name, ra, rb, int_dst ? 'r' : 'f', rc);
        } else {
            std::snprintf(buf, sizeof(buf), "%s r%u, r%u, r%u",
                          i.name, ra, rb, rc);
        }
        break;
      case Format::I:
        std::snprintf(buf, sizeof(buf), "%s r%u, %d, r%u",
                      i.name, ra, imm, rc);
        break;
      case Format::M: {
        char reg_file = (op == Opcode::FLD || op == Opcode::FST) ? 'f' : 'r';
        std::snprintf(buf, sizeof(buf), "%s %c%u, %d(r%u)",
                      i.name, reg_file, rc, imm, ra);
        break;
      }
      case Format::B:
        if (op == Opcode::JSR)
            std::snprintf(buf, sizeof(buf), "jsr r%u, %d", ra, imm);
        else
            std::snprintf(buf, sizeof(buf), "%s r%u, %d", i.name, ra, imm);
        break;
      case Format::J:
        std::snprintf(buf, sizeof(buf), "br %d", imm);
        break;
      case Format::N:
        std::snprintf(buf, sizeof(buf), "%s", i.name);
        break;
    }
    return std::string(buf);
}

} // namespace polypath
