#include "decoded_program.hh"

namespace polypath
{

DecodedProgram::DecodedProgram(Addr code_base, const u32 *words,
                               size_t count)
    : base(code_base), limitBytes(static_cast<u64>(count) * 4)
{
    table.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        // Decode the *encoded word*, not any pre-encoding Instr the
        // producer may have held: the table must reproduce exactly what
        // a runtime decodeInstr(mem.read32(pc)) of the loaded image
        // would return.
        Instr instr = decodeInstr(words[i]);
        table.push_back({instr, &opInfo(instr.op)});
    }
}

} // namespace polypath
