#include "opcodes.hh"

#include "common/logging.hh"

namespace polypath
{

namespace
{

// Latencies follow the Alpha AXP-21164 hardware reference: simple integer
// ops 1 cycle, integer multiply 8, FP add/mul 4, FP divide 16, loads 2
// (address generation + 1-cycle always-hit cache).
constexpr OpInfo
op(const char *name, Format f, ExecClass c, u8 lat,
   bool cbr = false, bool ubr = false, bool call = false, bool ret = false,
   bool load = false, bool store = false, bool halt = false,
   bool invalid = false)
{
    return OpInfo{name, f, c, lat, cbr, ubr, call, ret, load, store,
                  halt, invalid};
}

const OpInfo opTable[] = {
    // INVALID occupies an IntAlu0 slot and completes immediately; it only
    // matters if it reaches commit (program error).
    op("invalid", Format::N, ExecClass::IntAlu0, 1,
       false, false, false, false, false, false, false, true),

    op("add",    Format::R, ExecClass::IntAlu0, 1),
    op("sub",    Format::R, ExecClass::IntAlu0, 1),
    op("mul",    Format::R, ExecClass::IntAlu1, 8),
    op("and",    Format::R, ExecClass::IntAlu0, 1),
    op("or",     Format::R, ExecClass::IntAlu0, 1),
    op("xor",    Format::R, ExecClass::IntAlu0, 1),
    op("sll",    Format::R, ExecClass::IntAlu1, 1),
    op("srl",    Format::R, ExecClass::IntAlu1, 1),
    op("sra",    Format::R, ExecClass::IntAlu1, 1),
    op("cmpeq",  Format::R, ExecClass::IntAlu0, 1),
    op("cmplt",  Format::R, ExecClass::IntAlu0, 1),
    op("cmple",  Format::R, ExecClass::IntAlu0, 1),
    op("cmpult", Format::R, ExecClass::IntAlu0, 1),

    op("addi",    Format::I, ExecClass::IntAlu0, 1),
    op("andi",    Format::I, ExecClass::IntAlu0, 1),
    op("ori",     Format::I, ExecClass::IntAlu0, 1),
    op("xori",    Format::I, ExecClass::IntAlu0, 1),
    op("slli",    Format::I, ExecClass::IntAlu1, 1),
    op("srli",    Format::I, ExecClass::IntAlu1, 1),
    op("srai",    Format::I, ExecClass::IntAlu1, 1),
    op("cmpeqi",  Format::I, ExecClass::IntAlu0, 1),
    op("cmplti",  Format::I, ExecClass::IntAlu0, 1),
    op("cmplei",  Format::I, ExecClass::IntAlu0, 1),
    op("cmpulti", Format::I, ExecClass::IntAlu0, 1),
    op("ldah",    Format::I, ExecClass::IntAlu0, 1),

    op("ldq",  Format::M, ExecClass::Mem, 2,
       false, false, false, false, true),
    op("stq",  Format::M, ExecClass::Mem, 1,
       false, false, false, false, false, true),
    op("ldbu", Format::M, ExecClass::Mem, 2,
       false, false, false, false, true),
    op("stb",  Format::M, ExecClass::Mem, 1,
       false, false, false, false, false, true),
    op("fld",  Format::M, ExecClass::Mem, 2,
       false, false, false, false, true),
    op("fst",  Format::M, ExecClass::Mem, 1,
       false, false, false, false, false, true),

    op("beq", Format::B, ExecClass::IntAlu1, 1, true),
    op("bne", Format::B, ExecClass::IntAlu1, 1, true),
    op("blt", Format::B, ExecClass::IntAlu1, 1, true),
    op("bge", Format::B, ExecClass::IntAlu1, 1, true),
    op("ble", Format::B, ExecClass::IntAlu1, 1, true),
    op("bgt", Format::B, ExecClass::IntAlu1, 1, true),

    op("br",  Format::J, ExecClass::IntAlu1, 1, false, true),
    op("jsr", Format::B, ExecClass::IntAlu1, 1, false, true, true),
    op("ret", Format::R, ExecClass::IntAlu1, 1,
       false, false, false, true),

    op("fadd",   Format::R, ExecClass::FpAdd, 4),
    op("fsub",   Format::R, ExecClass::FpAdd, 4),
    op("fmul",   Format::R, ExecClass::FpMul, 4),
    op("fdiv",   Format::R, ExecClass::FpMul, 16),
    op("fcmpeq", Format::R, ExecClass::FpAdd, 4),
    op("fcmplt", Format::R, ExecClass::FpAdd, 4),
    op("cvtif",  Format::R, ExecClass::FpAdd, 4),
    op("cvtfi",  Format::R, ExecClass::FpAdd, 4),

    op("nop",  Format::N, ExecClass::IntAlu0, 1),
    op("halt", Format::N, ExecClass::IntAlu0, 1,
       false, false, false, false, false, false, true),
};

static_assert(sizeof(opTable) / sizeof(opTable[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "opTable out of sync with Opcode enum");

} // anonymous namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    panic_if(idx >= static_cast<size_t>(Opcode::NumOpcodes),
             "opInfo: bad opcode %zu", idx);
    return opTable[idx];
}

const char *
opName(Opcode op)
{
    return opInfo(op).name;
}

} // namespace polypath
