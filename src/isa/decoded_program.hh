/**
 * @file
 * Predecoded program text: every static instruction of a code image
 * decoded exactly once into a dense, PC-indexed table.
 *
 * Both the timing core's fetch loop and the golden-run interpreter pull
 * one instruction per simulated fetch; with SEE the timing core decodes
 * *both* arms of every low-confidence branch, so the same static word
 * is re-decoded thousands of times per run. PPR code is read-only (the
 * store queue writes data, never text), so the decode of a text word
 * can be computed once at program load and never invalidated.
 *
 * The table covers exactly [codeBase, codeBase + 4*size). Lookups
 * outside that range — or at a misaligned PC, which wrong-path returns
 * can produce from garbage register values — return nullptr and the
 * caller must fall back to decodeInstr(mem.read32(pc)), preserving the
 * wrong-path garbage semantics bit for bit (unwritten memory reads as
 * zero and decodes to Opcode::INVALID).
 */

#ifndef POLYPATH_ISA_DECODED_PROGRAM_HH
#define POLYPATH_ISA_DECODED_PROGRAM_HH

#include <vector>

#include "common/types.hh"
#include "isa/instr.hh"

namespace polypath
{

/** One predecoded slot: the instruction plus its cached OpInfo. */
struct PredecodedInstr
{
    Instr instr;
    const OpInfo *info;     //!< == &opInfo(instr.op), cached
};

/** Immutable decode table for one program's text segment. */
class DecodedProgram
{
  public:
    /** Decode @p count words starting at address @p code_base. */
    DecodedProgram(Addr code_base, const u32 *words, size_t count);

    /**
     * The predecoded slot at @p pc, or nullptr when @p pc is outside
     * the text segment or not word-aligned (slow-path fallback).
     */
    const PredecodedInstr *
    lookup(Addr pc) const
    {
        // A single unsigned subtraction handles both range ends: a pc
        // below codeBase wraps to a huge offset and fails the compare.
        u64 off = pc - base;
        if (off < limitBytes && (off & 3u) == 0)
            return &table[off >> 2];
        return nullptr;
    }

    Addr codeBase() const { return base; }
    size_t size() const { return table.size(); }

    /** Slot by static instruction index (bounds unchecked). */
    const PredecodedInstr &at(size_t idx) const { return table[idx]; }

    /** Raw table access for hot loops that cache base/limit locally. */
    const PredecodedInstr *data() const { return table.data(); }
    u64 textBytes() const { return limitBytes; }

  private:
    Addr base;
    u64 limitBytes;
    std::vector<PredecodedInstr> table;
};

} // namespace polypath

#endif // POLYPATH_ISA_DECODED_PROGRAM_HH
