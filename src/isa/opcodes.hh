/**
 * @file
 * The PPR ("PolyPath RISC") instruction set.
 *
 * PPR is a small Alpha-flavoured, fixed-width 32-bit RISC ISA:
 *   - 32 64-bit integer registers r0..r31, r31 hardwired to zero;
 *   - 32 double-precision FP registers f0..f31, f31 hardwired to +0.0;
 *   - byte-addressed memory with quadword (8-byte) and byte accesses;
 *   - compare-against-zero conditional branches (like Alpha Bxx);
 *   - a call/return pair (JSR/RET) for the return-address stack.
 *
 * The ISA is "total": no instruction can trap during wrong-path execution
 * (there is no divide, shifts mask their amount, and all addresses are
 * readable). The only commit-time exception source is the INVALID opcode,
 * which is what uninitialised instruction memory decodes to.
 */

#ifndef POLYPATH_ISA_OPCODES_HH
#define POLYPATH_ISA_OPCODES_HH

#include "common/types.hh"

namespace polypath
{

/** PPR opcodes; the numeric value is the 6-bit encoding field. */
enum class Opcode : u8
{
    INVALID = 0,  //!< what zeroed memory decodes to; traps at commit

    // Integer register-register (R format): rc = ra OP rb
    ADD, SUB, MUL, AND, OR, XOR,
    SLL, SRL, SRA,
    CMPEQ, CMPLT, CMPLE, CMPULT,

    // Integer register-immediate (I format): rc = ra OP sext(imm16)
    ADDI, ANDI, ORI, XORI,
    SLLI, SRLI, SRAI,
    CMPEQI, CMPLTI, CMPLEI, CMPULTI,
    LDAH,       //!< rc = ra + (sext(imm16) << 16)

    // Memory (M format): effective address = ra + sext(disp16)
    LDQ,        //!< rc = mem64[ea]
    STQ,        //!< mem64[ea] = rc
    LDBU,       //!< rc = zext(mem8[ea])
    STB,        //!< mem8[ea] = rc<7:0>
    FLD,        //!< f[rc] = mem64[ea] (bit pattern)
    FST,        //!< mem64[ea] = f[rc] (bit pattern)

    // Conditional branches (B format): compare ra against zero
    BEQ, BNE, BLT, BGE, BLE, BGT,

    // Unconditional control flow
    BR,         //!< J format: pc-relative jump, disp26
    JSR,        //!< B format: ra = return address; call disp21
    RET,        //!< R format: jump to ra (predicted by the RAS)

    // Floating point
    FADD, FSUB, FMUL, FDIV,       //!< f[rc] = f[ra] OP f[rb]
    FCMPEQ, FCMPLT,               //!< int rc = f[ra] CMP f[rb]
    CVTIF,                        //!< f[rc] = double(int ra)
    CVTFI,                        //!< int rc = s64(f[ra])

    // Misc
    NOP,
    HALT,       //!< end of program when committed

    NumOpcodes
};

/** Encoding format of an opcode. */
enum class Format : u8
{
    R,      //!< op ra, rb, rc
    I,      //!< op ra, imm16, rc
    M,      //!< op rc, disp16(ra)
    B,      //!< op ra, disp21  (also JSR link encoding)
    J,      //!< op disp26      (BR)
    N,      //!< no operands    (NOP, HALT, INVALID)
};

/** Functional-unit class an instruction executes on (AXP-21164 mix). */
enum class ExecClass : u8
{
    IntAlu0,    //!< add/logic/compare pipe
    IntAlu1,    //!< shift/multiply/branch pipe
    FpAdd,
    FpMul,
    Mem,        //!< D-cache port
    NumClasses
};

/** Static properties of one opcode. */
struct OpInfo
{
    const char *name;
    Format format;
    ExecClass execClass;
    u8 latency;             //!< execution latency in cycles
    bool isCondBranch;
    bool isUncondBranch;    //!< BR / JSR (direct, target known at fetch)
    bool isCall;
    bool isReturn;
    bool isLoad;
    bool isStore;
    bool isHalt;
    bool isInvalid;
};

/** Look up the static properties of @p op. */
const OpInfo &opInfo(Opcode op);

/** Printable mnemonic. */
const char *opName(Opcode op);

/**
 * Unified logical register namespace used by rename:
 * 0..31 integer, 32..63 floating point.
 */
using LogReg = u8;

constexpr LogReg numLogRegs = 64;
constexpr LogReg noReg = 0xff;
constexpr LogReg intZeroReg = 31;
constexpr LogReg fpZeroReg = 63;

/** Map an integer register field to the unified namespace. */
constexpr LogReg intReg(unsigned idx) { return static_cast<LogReg>(idx); }

/** Map an FP register field to the unified namespace. */
constexpr LogReg fpReg(unsigned idx) { return static_cast<LogReg>(32 + idx); }

/** True for r31/f31, which read as zero and ignore writes. */
constexpr bool
isZeroReg(LogReg reg)
{
    return reg == intZeroReg || reg == fpZeroReg;
}

} // namespace polypath

#endif // POLYPATH_ISA_OPCODES_HH
