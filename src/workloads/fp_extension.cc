/**
 * @file
 * Floating-point workload extension.
 *
 * §5.1 of the paper conjectures (from the vortex result) that SEE can
 * also help "other highly predictable programs, like floating point
 * code". These two kernels test that claim:
 *
 *   wave    1D wave-equation stencil sweeps — branch behaviour is
 *           almost perfectly predictable (loop branches only), like a
 *           SPECfp inner loop;
 *   nbody   pairwise force accumulation with a distance-cutoff branch —
 *           mostly regular FP compute with one data-dependent branch
 *           per pair.
 */

#include <bit>

#include "common/prng.hh"
#include "workloads/workload_util.hh"
#include "workloads/workloads.hh"

namespace polypath
{

Program
buildWave(const WorkloadParams &params)
{
    using namespace wreg;

    Assembler a;
    Prng prng(params.seed ^ 0x3a5e0000ull);

    constexpr unsigned field_points = 512;
    const u64 timesteps = static_cast<u64>(90 * params.scale);

    // Two field buffers (current and previous), random initial shape.
    a.dataAlign(8);
    Addr cur_addr = a.dataPc();
    for (unsigned i = 0; i < field_points; ++i)
        a.d64(std::bit_cast<u64>(prng.nextDouble() - 0.5));
    Addr prev_addr = a.dataPc();
    for (unsigned i = 0; i < field_points; ++i)
        a.d64(std::bit_cast<u64>(prng.nextDouble() - 0.5));
    Addr c2_addr = a.d64(std::bit_cast<u64>(0.25));     // courant^2
    Addr result_addr = a.d64(0);

    // Register plan: s0 steps left, s1 cur base, s2 prev base,
    // f10 = c^2 constant, f11 checksum accumulator.
    emitWorkloadInit(a);
    a.li(s0, timesteps);
    a.li(s1, cur_addr);
    a.li(s2, prev_addr);
    a.li(t0, c2_addr);
    a.fld(10, 0, t0);

    Label step_loop = a.newLabel();
    Label all_done = a.newLabel();

    a.bind(step_loop);
    a.beq(s0, all_done);
    a.addi(s0, -1, s0);

    // One stencil sweep: prev[i] = 2*cur[i] - prev[i]
    //                              + c2*(cur[i-1] - 2*cur[i] + cur[i+1])
    {
        Label sweep = a.newLabel();
        Label sweep_done = a.newLabel();
        a.li(t0, 1);                        // i
        a.bind(sweep);
        a.cmplti(t0, field_points - 1, t1);
        a.beq(t1, sweep_done);
        a.slli(t0, 3, t1);
        a.add(s1, t1, t2);                  // &cur[i]
        a.add(s2, t1, t3);                  // &prev[i]
        a.fld(1, -8, t2);                   // cur[i-1]
        a.fld(2, 0, t2);                    // cur[i]
        a.fld(3, 8, t2);                    // cur[i+1]
        a.fld(4, 0, t3);                    // prev[i]
        a.fadd(1, 3, 5);                    // sum of neighbours
        a.fadd(2, 2, 6);                    // 2*cur[i]
        a.fsub(5, 6, 5);                    // laplacian
        a.fmul(5, 10, 5);                   // * c^2
        a.fsub(6, 4, 7);                    // 2*cur - prev
        a.fadd(7, 5, 7);                    // new value
        a.fst(7, 0, t3);
        a.addi(t0, 1, t0);
        a.br(sweep);
        a.bind(sweep_done);
    }
    // Swap buffers.
    a.or_(s1, zero, t4);
    a.or_(s2, zero, s1);
    a.or_(t4, zero, s2);
    a.br(step_loop);

    a.bind(all_done);
    // Fold the field's midpoint into a checksum word.
    a.li(t0, cur_addr + (field_points / 2) * 8);
    a.ldq(t1, 0, t0);
    a.li(t2, result_addr);
    a.stq(t1, 0, t2);
    a.halt();

    return a.assemble("wave");
}

Program
buildNbody(const WorkloadParams &params)
{
    using namespace wreg;

    Assembler a;
    Prng prng(params.seed ^ 0x0b0d4000ull);

    constexpr unsigned bodies = 64;
    const u64 rounds = static_cast<u64>(28 * params.scale);

    // Positions (1D for simplicity) and forces.
    a.dataAlign(8);
    Addr pos_addr = a.dataPc();
    for (unsigned i = 0; i < bodies; ++i)
        a.d64(std::bit_cast<u64>(prng.nextDouble() * 100.0));
    Addr force_addr = a.dZero(bodies * 8);
    Addr cutoff_addr = a.d64(std::bit_cast<u64>(12.5));
    Addr result_addr = a.d64(0);

    // s0 rounds, s1 pos base, s2 force base, f10 cutoff.
    emitWorkloadInit(a);
    a.li(s0, rounds);
    a.li(s1, pos_addr);
    a.li(s2, force_addr);
    a.li(t0, cutoff_addr);
    a.fld(10, 0, t0);

    Label round_loop = a.newLabel();
    Label all_done = a.newLabel();
    a.bind(round_loop);
    a.beq(s0, all_done);
    a.addi(s0, -1, s0);

    {
        // for i in 0..bodies: for j in i+1..bodies: pairwise forces
        Label i_loop = a.newLabel();
        Label i_done = a.newLabel();
        a.li(s3, 0);                        // i
        a.bind(i_loop);
        a.cmplti(s3, bodies, t1);
        a.beq(t1, i_done);
        a.slli(s3, 3, t1);
        a.add(s1, t1, t2);
        a.fld(1, 0, t2);                    // pos[i]
        a.add(s2, t1, s5);                  // &force[i]

        {
            Label j_loop = a.newLabel();
            Label j_done = a.newLabel();
            Label skip_pair = a.newLabel();
            a.addi(s3, 1, s4);              // j = i + 1
            a.bind(j_loop);
            a.cmplti(s4, bodies, t1);
            a.beq(t1, j_done);
            a.slli(s4, 3, t1);
            a.add(s1, t1, t2);
            a.fld(2, 0, t2);                // pos[j]
            a.fsub(2, 1, 3);                // dx
            a.fmul(3, 3, 4);                // dx^2
            // The data-dependent branch: beyond the cutoff, skip the
            // expensive force evaluation.
            a.fcmplt(4, 10, t3);
            a.beq(t3, skip_pair);
            a.fdiv(3, 4, 5);                // ~ 1/dx "force"
            a.fld(6, 0, s5);
            a.fadd(6, 5, 6);
            a.fst(6, 0, s5);                // force[i] += f
            a.add(s2, t1, t4);
            a.fld(7, 0, t4);
            a.fsub(7, 5, 7);
            a.fst(7, 0, t4);                // force[j] -= f
            a.bind(skip_pair);
            a.addi(s4, 1, s4);
            a.br(j_loop);
            a.bind(j_done);
        }
        a.addi(s3, 1, s3);
        a.br(i_loop);
        a.bind(i_done);
    }

    // Drift the positions a little so pair membership changes between
    // rounds: pos[i] += force[i] * 1e-4 (integer-scaled for simplicity).
    {
        Label drift = a.newLabel();
        Label drift_done = a.newLabel();
        a.li(t0, 0);
        a.bind(drift);
        a.cmplti(t0, bodies, t1);
        a.beq(t1, drift_done);
        a.slli(t0, 3, t1);
        a.add(s2, t1, t2);
        a.fld(1, 0, t2);
        a.li(t3, 0x3f1a36e2eb1c432dull);    // 1e-4
        a.stq(t3, 0, sp);                   // via the stack
        a.fld(2, 0, sp);
        a.fmul(1, 2, 1);
        a.add(s1, t1, t4);
        a.fld(3, 0, t4);
        a.fadd(3, 1, 3);
        a.fst(3, 0, t4);
        a.fst(31, 0, t2);                   // force[i] = 0 (f31 = 0.0)
        a.addi(t0, 1, t0);
        a.br(drift);
        a.bind(drift_done);
    }
    a.br(round_loop);

    a.bind(all_done);
    a.li(t0, pos_addr);
    a.ldq(t1, 0, t0);
    a.li(t2, result_addr);
    a.stq(t1, 0, t2);
    a.halt();

    return a.assemble("nbody");
}

const std::vector<WorkloadInfo> &
fpWorkloadRegistry()
{
    static const std::vector<WorkloadInfo> registry = {
        {"wave", buildWave, 0.0, 0.0},
        {"nbody", buildNbody, 0.0, 0.0},
    };
    return registry;
}

} // namespace polypath
