/**
 * @file
 * "go" workload: game-tree position evaluation on random 19x19 boards.
 *
 * SPEC's 099.go is notorious for data-dependent branches on board
 * contents (Table 1: 24.8% misprediction — the hardest benchmark in the
 * suite). This kernel evaluates pseudo-random board positions: for each
 * candidate point it classifies the four neighbours (empty / friend /
 * foe), follows runs of same-coloured stones, and keeps a running best
 * move with data-dependent comparisons. Board cells and candidate
 * points come from an in-guest xorshift PRNG, so the branch outcomes
 * are essentially unpredictable.
 */

#include "common/prng.hh"
#include "workloads/workload_util.hh"
#include "workloads/workloads.hh"

namespace polypath
{

Program
buildGo(const WorkloadParams &params)
{
    using namespace wreg;

    Assembler a;
    Prng prng(params.seed ^ 0x60606060ull);

    constexpr unsigned board_dim = 19;
    constexpr unsigned board_cells = board_dim * board_dim;
    const u64 positions = static_cast<u64>(11000 * params.scale);

    // Board: 0 empty (50%), 1 black (25%), 2 white (25%).
    std::vector<u8> board(board_cells);
    for (u8 &cell : board) {
        u64 r = prng.nextBelow(4);
        cell = r < 2 ? 0 : static_cast<u8>(r - 1);
    }

    Addr board_addr = a.dBytes(board);
    a.dataAlign(8);
    Addr result_addr = a.d64(0);
    a.d64(0);

    // Register plan:
    //   s0 board base    s1 positions left   s2 xorshift state
    //   s3 best score    s4 best position    s5 total influence
    //   t0..t7 scratch   s6 current position
    emitWorkloadInit(a);
    a.li(s0, board_addr);
    a.li(s1, positions);
    a.li(s2, params.seed | 1);
    a.li(s3, -100000);
    a.li(s4, 0);
    a.li(s5, 0);

    Label loop = a.newLabel();
    Label done = a.newLabel();

    a.bind(loop);
    a.beq(s1, done);
    a.addi(s1, -1, s1);

    // Pick a pseudo-random interior point: pos = 20 + (rnd % 320).
    emitXorshift(a, s2, t0);
    a.srli(s2, 11, t0);
    a.li(t1, 320);
    // Cheap modulo for a non-power-of-2 bound: multiply-shift.
    a.mul(t0, t1, t0);
    a.srli(t0, 53, t0);         // t0 in [0, 320)
    a.addi(t0, 20, s6);         // s6 = position index

    // Own colour from the low random bit: 1 or 2.
    a.andi(s2, 1, t7);
    a.addi(t7, 1, t7);          // t7 = colour

    // Classify the four neighbours (-19, -1, +1, +19).
    // score in t6: empty +1, friend +3, foe -2.
    a.li(t6, 0);
    for (int offset : {-(int)board_dim, -1, 1, (int)board_dim}) {
        Label is_empty = a.newLabel();
        Label is_friend = a.newLabel();
        Label next = a.newLabel();
        a.addi(s6, offset, t0);
        a.add(s0, t0, t0);
        a.ldbu(t1, 0, t0);          // neighbour stone
        a.beq(t1, is_empty);
        a.cmpeq(t1, t7, t2);
        a.bne(t2, is_friend);
        a.addi(t6, -2, t6);         // foe
        a.br(next);
        a.bind(is_empty);
        a.addi(t6, 1, t6);
        a.br(next);
        a.bind(is_friend);
        a.addi(t6, 3, t6);
        a.bind(next);
    }

    // Follow a run of same-coloured stones to the "east" (capture-search
    // flavour): while board[pos + k] == colour, k < 6.
    {
        Label run_loop = a.newLabel();
        Label run_end = a.newLabel();
        a.li(t3, 1);                // k
        a.bind(run_loop);
        a.cmplei(t3, 5, t4);
        a.beq(t4, run_end);
        a.add(s6, t3, t0);
        a.add(s0, t0, t0);
        a.ldbu(t1, 0, t0);
        a.cmpeq(t1, t7, t2);
        a.beq(t2, run_end);
        a.addi(t6, 2, t6);          // liberty bonus per stone in the run
        a.addi(t3, 1, t3);
        a.br(run_loop);
        a.bind(run_end);
    }

    // Keep a running best move (data-dependent compare).
    {
        Label not_better = a.newLabel();
        a.cmplt(s3, t6, t0);
        a.beq(t0, not_better);
        a.or_(t6, zero, s3);
        a.or_(s6, zero, s4);
        a.bind(not_better);
    }
    a.add(s5, t6, s5);              // accumulate influence

    // Tactical heuristics keyed off fresh pseudo-random state: go's
    // evaluation is full of branches that are coin flips to any
    // history-based predictor.
    {
        Label no_h1 = a.newLabel();
        a.andi(s2, 4, t0);
        a.beq(t0, no_h1);
        a.xor_(s5, s6, s5);
        a.bind(no_h1);
        Label no_h2 = a.newLabel();
        a.andi(s2, 8, t0);
        a.beq(t0, no_h2);
        a.addi(s5, 13, s5);
        a.bind(no_h2);
        Label no_h3 = a.newLabel();
        a.andi(s2, 16, t0);
        a.beq(t0, no_h3);
        a.sub(s5, s6, s5);
        a.bind(no_h3);
        Label no_h4 = a.newLabel();
        a.andi(s2, 32, t0);
        a.beq(t0, no_h4);
        a.addi(s5, -7, s5);
        a.bind(no_h4);
        Label no_h5 = a.newLabel();
        a.andi(s2, 64, t0);
        a.beq(t0, no_h5);
        a.xor_(s5, t6, s5);
        a.bind(no_h5);
        Label no_h6 = a.newLabel();
        a.andi(s2, 128, t0);
        a.beq(t0, no_h6);
        a.addi(s5, 3, s5);
        a.bind(no_h6);
    }

    // Frequently place a stone (mutates future evaluations, keeping
    // the branch outcomes from ever stabilising).
    {
        Label no_place = a.newLabel();
        a.andi(s2, 7, t0);
        a.bne(t0, no_place);
        a.add(s0, s6, t1);
        a.stb(t7, 0, t1);
        a.bind(no_place);
    }
    a.br(loop);

    a.bind(done);
    a.li(t0, result_addr);
    a.stq(s5, 0, t0);
    a.stq(s4, 8, t0);
    a.halt();

    return a.assemble("go");
}

} // namespace polypath
