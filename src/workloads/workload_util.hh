/**
 * @file
 * Shared helpers for the workload builders: the software register
 * conventions, stack setup, and an in-guest xorshift PRNG emitter.
 */

#ifndef POLYPATH_WORKLOADS_WORKLOAD_UTIL_HH
#define POLYPATH_WORKLOADS_WORKLOAD_UTIL_HH

#include "asmkit/assembler.hh"
#include "common/types.hh"

namespace polypath
{

/** Software register conventions (Alpha-flavoured). */
namespace wreg
{
constexpr u8 v0 = 0;                            //!< return value
constexpr u8 t0 = 1, t1 = 2, t2 = 3, t3 = 4;    //!< temporaries
constexpr u8 t4 = 5, t5 = 6, t6 = 7, t7 = 8;
constexpr u8 s0 = 9, s1 = 10, s2 = 11, s3 = 12; //!< long-lived values
constexpr u8 s4 = 13, s5 = 14, s6 = 15;
constexpr u8 a0 = 16, a1 = 17, a2 = 18, a3 = 19;//!< arguments
constexpr u8 a4 = 20, a5 = 21;
constexpr u8 k0 = 22, k1 = 23, k2 = 24, k3 = 25;
constexpr u8 ra = 26;                           //!< return address
constexpr u8 t8 = 27, t9 = 28, t10 = 29;
constexpr u8 sp = 30;                           //!< stack pointer
constexpr u8 zero = 31;
} // namespace wreg

/** Stack top used by every workload (grows down; far above data). */
constexpr Addr workloadStackTop = 0x4000000;

/** Emit the standard entry sequence (stack pointer setup). */
inline void
emitWorkloadInit(Assembler &a)
{
    a.li(wreg::sp, workloadStackTop);
}

/**
 * Emit x = xorshift64(x) in-place (13/7/17 variant).
 * @p tmp is clobbered.
 */
inline void
emitXorshift(Assembler &a, u8 x, u8 tmp)
{
    a.slli(x, 13, tmp);
    a.xor_(x, tmp, x);
    a.srli(x, 7, tmp);
    a.xor_(x, tmp, x);
    a.slli(x, 17, tmp);
    a.xor_(x, tmp, x);
}

/** Function prologue: push the return address. */
inline void
emitPrologue(Assembler &a)
{
    a.addi(wreg::sp, -16, wreg::sp);
    a.stq(wreg::ra, 0, wreg::sp);
}

/** Function epilogue: pop the return address and return. */
inline void
emitEpilogue(Assembler &a)
{
    a.ldq(wreg::ra, 0, wreg::sp);
    a.addi(wreg::sp, 16, wreg::sp);
    a.ret(wreg::ra);
}

} // namespace polypath

#endif // POLYPATH_WORKLOADS_WORKLOAD_UTIL_HH
