/**
 * @file
 * "perl" workload: a stack-machine bytecode interpreter.
 *
 * SPEC's 134.perl spends its time in an opcode dispatch loop whose
 * branch behaviour follows the interpreted program. Here a synthetic
 * bytecode program (mildly skewed opcode mix) runs repeatedly through a
 * compare-chain dispatcher; gshare learns part of the opcode sequence
 * but the mix keeps it around Table 1's 8.27% misprediction.
 */

#include "common/prng.hh"
#include "workloads/workload_util.hh"
#include "workloads/workloads.hh"

namespace polypath
{

namespace
{

enum VmOp : u8
{
    VmPush = 0,     // push imm
    VmAdd = 1,      // pop b, pop a, push a+b
    VmMul = 2,      // pop b, pop a, push a*b
    VmLoad = 3,     // push vars[imm]
    VmStore = 4,    // vars[imm] = pop
    VmSkipNz = 5,   // pop; if non-zero skip imm ops forward
    VmDup = 6,      // duplicate top
    VmXor = 7,      // pop b, pop a, push a^b
};

} // anonymous namespace

Program
buildPerl(const WorkloadParams &params)
{
    using namespace wreg;

    Assembler a;
    Prng prng(params.seed ^ 0x9e719e71ull);

    constexpr unsigned bytecode_len = 120;
    constexpr unsigned num_vars = 32;
    const u64 outer_iters = static_cast<u64>(340 * params.scale);

    // Generate a valid bytecode program. Track a conservative stack
    // depth so underflow cannot occur; the opcode mix is skewed so the
    // dispatch sequence is partially learnable.
    std::vector<u8> bytecode;
    bytecode.reserve(2 * bytecode_len);
    int depth = 0;
    for (unsigned i = 0; i < bytecode_len; ++i) {
        u8 op;
        u64 r = prng.nextBelow(100);
        if (depth < 2) {
            op = (r < 70) ? VmPush : VmLoad;
        } else if (r < 30) {
            op = VmPush;
        } else if (r < 55) {
            op = VmAdd;
        } else if (r < 63) {
            op = VmMul;
        } else if (r < 78) {
            op = VmLoad;
        } else if (r < 89) {
            op = VmStore;
        } else if (r < 94) {
            op = VmSkipNz;
        } else if (r < 98) {
            op = VmDup;
        } else {
            op = VmXor;
        }
        u8 arg = 0;
        switch (op) {
          case VmPush: arg = static_cast<u8>(prng.nextBelow(97)); break;
          case VmLoad:
          case VmStore: arg = static_cast<u8>(prng.nextBelow(num_vars));
                        break;
          case VmSkipNz: arg = static_cast<u8>(1 + prng.nextBelow(4));
                         break;
          case VmDup: break;
          default: break;
        }
        switch (op) {
          case VmPush: case VmLoad: case VmDup: depth += 1; break;
          case VmAdd: case VmMul: case VmXor: depth -= 1; break;
          case VmStore: case VmSkipNz: depth -= 1; break;
        }
        bytecode.push_back(op);
        bytecode.push_back(arg);
    }

    Addr code_addr = a.dBytes(bytecode);
    a.dataAlign(8);
    Addr vars_addr = a.dZero(num_vars * 8);
    Addr vstack_addr = a.dZero(4096);
    a.dataAlign(8);
    Addr result_addr = a.d64(0);

    // Register plan:
    //   s0 bytecode base   s1 bytecode end    s2 vm pc
    //   s3 vm stack ptr    s4 vars base       s5 outer iterations left
    //   s6 accumulated checksum
    emitWorkloadInit(a);
    a.li(s0, code_addr);
    a.li(s1, code_addr + bytecode.size());
    a.li(s4, vars_addr);
    a.li(s5, outer_iters);
    a.li(s6, 0);

    Label outer = a.newLabel();
    Label dispatch = a.newLabel();
    Label program_done = a.newLabel();
    Label all_done = a.newLabel();
    Label op_push = a.newLabel();
    Label op_add = a.newLabel();
    Label op_mul = a.newLabel();
    Label op_load = a.newLabel();
    Label op_store = a.newLabel();
    Label op_skipnz = a.newLabel();
    Label op_dup = a.newLabel();
    Label op_xor = a.newLabel();
    Label no_skip = a.newLabel();

    a.bind(outer);
    a.beq(s5, all_done);
    a.addi(s5, -1, s5);
    a.or_(s0, zero, s2);            // vm pc = start
    a.li(s3, vstack_addr);          // empty stack (grows up)

    a.bind(dispatch);
    a.cmpult(s2, s1, t0);
    a.beq(t0, program_done);
    a.ldbu(t1, 0, s2);              // opcode
    a.ldbu(t2, 1, s2);              // argument
    a.addi(s2, 2, s2);

    // Binary dispatch tree over 8 opcodes.
    a.cmplti(t1, 4, t0);
    {
        Label high4 = a.newLabel();
        a.beq(t0, high4);
        // 0..3
        a.cmplti(t1, 2, t0);
        {
            Label op23 = a.newLabel();
            a.beq(t0, op23);
            a.cmpeqi(t1, 0, t0);
            a.bne(t0, op_push);
            a.br(op_add);
            a.bind(op23);
            a.cmpeqi(t1, 2, t0);
            a.bne(t0, op_mul);
            a.br(op_load);
        }
        a.bind(high4);
        a.cmplti(t1, 6, t0);
        {
            Label op67 = a.newLabel();
            a.beq(t0, op67);
            a.cmpeqi(t1, 4, t0);
            a.bne(t0, op_store);
            a.br(op_skipnz);
            a.bind(op67);
            a.cmpeqi(t1, 6, t0);
            a.bne(t0, op_dup);
            a.br(op_xor);
        }
    }

    a.bind(op_push);
    a.stq(t2, 0, s3);
    a.addi(s3, 8, s3);
    a.br(dispatch);

    a.bind(op_add);
    a.ldq(t3, -8, s3);
    a.ldq(t4, -16, s3);
    a.add(t3, t4, t3);
    a.stq(t3, -16, s3);
    a.addi(s3, -8, s3);
    a.br(dispatch);

    a.bind(op_mul);
    a.ldq(t3, -8, s3);
    a.ldq(t4, -16, s3);
    a.mul(t3, t4, t3);
    a.stq(t3, -16, s3);
    a.addi(s3, -8, s3);
    a.br(dispatch);

    a.bind(op_load);
    a.slli(t2, 3, t3);
    a.add(s4, t3, t3);
    a.ldq(t4, 0, t3);
    a.stq(t4, 0, s3);
    a.addi(s3, 8, s3);
    a.br(dispatch);

    a.bind(op_store);
    a.addi(s3, -8, s3);
    a.ldq(t4, 0, s3);
    a.slli(t2, 3, t3);
    a.add(s4, t3, t3);
    a.stq(t4, 0, t3);
    a.br(dispatch);

    a.bind(op_skipnz);
    a.addi(s3, -8, s3);
    a.ldq(t4, 0, s3);
    a.beq(t4, no_skip);
    a.slli(t2, 1, t3);              // each op is 2 bytes
    a.add(s2, t3, s2);
    a.bind(no_skip);
    a.br(dispatch);

    a.bind(op_dup);
    a.ldq(t4, -8, s3);
    a.stq(t4, 0, s3);
    a.addi(s3, 8, s3);
    a.br(dispatch);

    a.bind(op_xor);
    a.ldq(t3, -8, s3);
    a.ldq(t4, -16, s3);
    a.xor_(t3, t4, t3);
    a.stq(t3, -16, s3);
    a.addi(s3, -8, s3);
    a.br(dispatch);

    a.bind(program_done);
    // Fold the first VM variable into a checksum; perturb var[0] so the
    // VmSkipNz outcomes drift between outer iterations.
    a.ldq(t0, 0, s4);
    a.add(s6, t0, s6);
    a.addi(t0, 1, t0);
    a.stq(t0, 0, s4);
    a.br(outer);

    a.bind(all_done);
    a.li(t0, result_addr);
    a.stq(s6, 0, t0);
    a.halt();

    return a.assemble("perl");
}

} // namespace polypath
