#include "workloads.hh"

#include "common/logging.hh"

namespace polypath
{

const std::vector<WorkloadInfo> &
workloadRegistry()
{
    static const std::vector<WorkloadInfo> registry = {
        {"compress", buildCompress, 9.13, 113.8},
        {"gcc", buildGcc, 11.09, 334.1},
        {"perl", buildPerl, 8.27, 249.1},
        {"go", buildGo, 24.80, 549.1},
        {"m88ksim", buildM88ksim, 4.20, 552.7},
        {"xlisp", buildXlisp, 5.20, 216.1},
        {"vortex", buildVortex, 1.85, 234.4},
        {"jpeg", buildJpeg, 8.37, 347.0},
    };
    return registry;
}

Program
buildWorkload(const std::string &name, const WorkloadParams &params)
{
    for (const WorkloadInfo &info : workloadRegistry()) {
        if (info.name == name)
            return info.build(params);
    }
    for (const WorkloadInfo &info : fpWorkloadRegistry()) {
        if (info.name == name)
            return info.build(params);
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace polypath
