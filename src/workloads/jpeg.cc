/**
 * @file
 * "jpeg" workload: blocked integer DCT-style transform, quantisation
 * and zero-run-length coding of a synthetic image.
 *
 * SPEC's 132.ijpeg compresses images: long straight-line arithmetic
 * (high ILP) punctuated by data-dependent quantisation-threshold and
 * run-length branches whose outcomes follow image noise (Table 1:
 * 8.37% misprediction).
 */

#include "common/prng.hh"
#include "workloads/workload_util.hh"
#include "workloads/workloads.hh"

namespace polypath
{

Program
buildJpeg(const WorkloadParams &params)
{
    using namespace wreg;

    Assembler a;
    Prng prng(params.seed ^ 0x09e60000ull);

    const unsigned blocks = static_cast<unsigned>(360 * params.scale);
    constexpr unsigned block_words = 64;

    // Synthetic image blocks: a smooth gradient plus noise, stored as
    // 64 signed 16-bit samples per block (embedded as 64-bit words for
    // simple guest addressing).
    std::vector<u8> image_bytes;
    image_bytes.reserve(static_cast<size_t>(blocks) * block_words * 8);
    for (unsigned blk = 0; blk < blocks; ++blk) {
        u64 base = prng.nextBelow(160);
        u64 slope_x = prng.nextBelow(7);
        u64 slope_y = prng.nextBelow(7);
        for (unsigned y = 0; y < 8; ++y) {
            for (unsigned x = 0; x < 8; ++x) {
                s64 sample = static_cast<s64>(base + slope_x * x +
                                              slope_y * y) +
                             static_cast<s64>(prng.nextBelow(25)) - 12;
                for (int b = 0; b < 8; ++b)
                    image_bytes.push_back(static_cast<u8>(
                        static_cast<u64>(sample) >> (8 * b)));
            }
        }
    }

    Addr image_addr = a.dBytes(image_bytes);
    a.dataAlign(8);
    Addr work_addr = a.dZero(block_words * 8);
    Addr out_addr = a.dZero(static_cast<size_t>(blocks) * 128 + 64);
    Addr result_addr = a.d64(0);
    a.d64(0);

    // Register plan:
    //   s0 image cursor   s1 blocks left   s2 work buffer
    //   s3 out ptr        s4 nonzero count s5 checksum
    emitWorkloadInit(a);
    a.li(s0, image_addr);
    a.li(s1, blocks);
    a.li(s2, work_addr);
    a.li(s3, out_addr);
    a.li(s4, 0);
    a.li(s5, 0);

    Label block_loop = a.newLabel();
    Label all_done = a.newLabel();

    a.bind(block_loop);
    a.beq(s1, all_done);
    a.addi(s1, -1, s1);

    // --- 1D "DCT" over each of the 8 rows: a 4-point butterfly pair
    // (straight-line adds/subs/shifts, no branches) -------------------
    {
        Label row_loop = a.newLabel();
        Label row_done = a.newLabel();
        a.li(t0, 0);                    // row index
        a.bind(row_loop);
        a.cmplti(t0, 8, t1);
        a.beq(t1, row_done);
        a.slli(t0, 6, t1);              // row * 8 words * 8 bytes
        a.add(s0, t1, t2);              // src row
        a.add(s2, t1, t3);              // dst row

        // Load the eight samples.
        a.ldq(t4, 0, t2);
        a.ldq(t5, 8, t2);
        a.ldq(t6, 16, t2);
        a.ldq(t7, 24, t2);
        a.ldq(t8, 32, t2);
        a.ldq(t9, 40, t2);
        a.ldq(t10, 48, t2);
        a.ldq(s6, 56, t2);

        // Butterfly stage 1: sums into the low half, diffs into the
        // high half (Walsh-Hadamard flavoured integer transform).
        a.add(t4, s6, k0);              // a0 = x0 + x7
        a.sub(t4, s6, k1);              // d0 = x0 - x7
        a.add(t5, t10, k2);             // a1 = x1 + x6
        a.sub(t5, t10, k3);            // d1 = x1 - x6
        a.add(t6, t9, t4);              // a2 = x2 + x5
        a.sub(t6, t9, t5);              // d2 = x2 - x5
        a.add(t7, t8, t6);              // a3 = x3 + x4
        a.sub(t7, t8, t7);              // d3 = x3 - x4

        // Stage 2 + output (scaled sums/differences).
        a.add(k0, t6, t8);              // s0 = a0 + a3
        a.sub(k0, t6, t9);              // s1 = a0 - a3
        a.add(k2, t4, t10);             // s2 = a1 + a2
        a.sub(k2, t4, s6);              // s3 = a1 - a2

        a.add(t8, t10, k0);             // F0 = s0 + s2
        a.stq(k0, 0, t3);
        a.sub(t8, t10, k0);             // F4 = s0 - s2
        a.stq(k0, 32, t3);
        a.slli(t9, 1, t9);
        a.add(t9, s6, k0);              // F2 = 2*s1 + s3
        a.stq(k0, 16, t3);
        a.sub(t9, s6, k0);              // F6
        a.stq(k0, 48, t3);

        a.slli(k1, 1, k1);
        a.add(k1, k3, k0);             // F1 = 2*d0 + d1
        a.stq(k0, 8, t3);
        a.add(t5, t7, k0);              // F3 = d2 + d3
        a.stq(k0, 24, t3);
        a.sub(k3, t5, k0);             // F5
        a.stq(k0, 40, t3);
        a.sub(k1, t7, k0);              // F7
        a.stq(k0, 56, t3);

        a.addi(t0, 1, t0);
        a.br(row_loop);
        a.bind(row_done);
    }

    // --- Quantise + zero-run-length encode the 64 coefficients -------
    {
        Label coef_loop = a.newLabel();
        Label coef_done = a.newLabel();
        Label is_zero = a.newLabel();
        Label next_coef = a.newLabel();
        Label no_flush = a.newLabel();

        a.li(t0, 0);                    // coefficient index
        a.li(t9, 0);                    // current zero-run length
        a.bind(coef_loop);
        a.cmplti(t0, 64, t1);
        a.beq(t1, coef_done);
        a.slli(t0, 3, t1);
        a.add(s2, t1, t1);
        a.ldq(t2, 0, t1);               // coefficient

        // Quantisation shift grows with frequency: q = coef >> (2 + i/16).
        a.srli(t0, 4, t3);
        a.addi(t3, 2, t3);
        a.sra(t2, t3, t2);

        a.beq(t2, is_zero);
        // Non-zero: flush the pending run, emit (run, level).
        a.addi(s4, 1, s4);
        a.stq(t9, 0, s3);
        a.stq(t2, 8, s3);
        a.addi(s3, 16, s3);
        a.add(s5, t2, s5);
        a.li(t9, 0);
        a.br(next_coef);

        a.bind(is_zero);
        a.addi(t9, 1, t9);
        // A run of 16 zeros emits a ZRL marker.
        a.cmplti(t9, 16, t4);
        a.bne(t4, no_flush);
        a.stq(t9, 0, s3);
        a.addi(s3, 8, s3);
        a.li(t9, 0);
        a.bind(no_flush);

        a.bind(next_coef);
        a.addi(t0, 1, t0);
        a.br(coef_loop);
        a.bind(coef_done);
    }

    a.addi(s0, block_words * 8, s0);    // next image block
    a.br(block_loop);

    a.bind(all_done);
    a.li(t0, result_addr);
    a.stq(s4, 0, t0);
    a.stq(s5, 8, t0);
    a.halt();

    return a.assemble("jpeg");
}

} // namespace polypath
