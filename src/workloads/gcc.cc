/**
 * @file
 * "gcc" workload: a lexer / parser state machine over synthetic source.
 *
 * SPEC's 126.gcc is dominated by irregular multi-way control flow over
 * token streams. This kernel scans synthetic "source text": a character
 * classification compare-chain, a token state machine, an identifier
 * hash with keyword probing, and a brace-matching stack. The character
 * mix is skewed but noisy, landing near Table 1's 11.09% misprediction.
 */

#include "common/prng.hh"
#include "workloads/workload_util.hh"
#include "workloads/workloads.hh"

namespace polypath
{

Program
buildGcc(const WorkloadParams &params)
{
    using namespace wreg;

    Assembler a;
    Prng prng(params.seed ^ 0x6cc6cc66ull);

    const size_t text_len = static_cast<size_t>(26000 * params.scale);

    // Synthetic "source code": letters, digits, spaces, operators and
    // braces with code-like run structure.
    std::vector<u8> text(text_len);
    for (size_t i = 0; i < text_len; ++i) {
        u64 r = prng.nextBelow(100);
        if (r < 42) {
            text[i] = static_cast<u8>('a' + prng.nextBelow(26));
        } else if (r < 57) {
            text[i] = static_cast<u8>('0' + prng.nextBelow(10));
        } else if (r < 77) {
            text[i] = ' ';
        } else if (r < 87) {
            static const char ops[] = "+-*/=<>;,.";
            text[i] = static_cast<u8>(ops[prng.nextBelow(10)]);
        } else if (r < 94) {
            text[i] = static_cast<u8>(prng.chance(1, 2) ? '(' : '{');
        } else {
            text[i] = static_cast<u8>(prng.chance(1, 2) ? ')' : '}');
        }
    }

    constexpr unsigned keyword_entries = 64;
    std::vector<u8> keywords(keyword_entries * 8, 0);
    // Pre-populate some keyword hash slots (non-zero = keyword id).
    for (unsigned i = 0; i < keyword_entries; ++i) {
        if (prng.chance(1, 3))
            keywords[i * 8] = static_cast<u8>(1 + prng.nextBelow(30));
    }

    Addr text_addr = a.dBytes(text);
    a.dataAlign(8);
    Addr keyword_addr = a.dBytes(keywords);
    a.dataAlign(8);
    Addr counts_addr = a.dZero(8 * 8);       // per-class counters
    Addr brace_stack_addr = a.dZero(8 * 512);
    Addr result_addr = a.d64(0);
    a.d64(0);

    // Register plan:
    //   s0 text ptr      s1 chars left      s2 lexer state
    //   s3 ident hash    s4 brace stack ptr s5 keyword hits
    //   s6 checksum      k0 counts base
    emitWorkloadInit(a);
    a.li(s0, text_addr);
    a.li(s1, static_cast<u64>(text_len));
    a.li(s2, 0);
    a.li(s3, 0);
    a.li(s4, brace_stack_addr);
    a.li(s5, 0);
    a.li(s6, 0);
    a.li(k0, counts_addr);

    Label loop = a.newLabel();
    Label done = a.newLabel();
    Label cls_letter = a.newLabel();
    Label cls_digit = a.newLabel();
    Label cls_space = a.newLabel();
    Label cls_open = a.newLabel();
    Label cls_close = a.newLabel();
    Label cls_op = a.newLabel();
    Label next_char = a.newLabel();
    Label end_ident = a.newLabel();
    Label not_kw = a.newLabel();
    Label stack_empty = a.newLabel();

    a.bind(loop);
    a.beq(s1, done);
    a.ldbu(t0, 0, s0);              // c
    a.addi(s0, 1, s0);
    a.addi(s1, -1, s1);

    // Character classification compare-chain.
    a.cmpeqi(t0, ' ', t1);
    a.bne(t1, cls_space);
    a.cmpeqi(t0, '{', t1);
    a.bne(t1, cls_open);
    a.cmpeqi(t0, '(', t1);
    a.bne(t1, cls_open);
    a.cmpeqi(t0, '}', t1);
    a.bne(t1, cls_close);
    a.cmpeqi(t0, ')', t1);
    a.bne(t1, cls_close);
    a.cmplti(t0, '0', t1);
    a.bne(t1, cls_op);              // punctuation below '0'
    a.cmplti(t0, ':', t1);
    a.bne(t1, cls_digit);           // '0'..'9'
    a.cmplti(t0, 'a', t1);
    a.bne(t1, cls_op);              // ';' '<' '=' '>' etc.
    a.br(cls_letter);               // >= 'a'

    a.bind(cls_letter);
    // Inside an identifier: accumulate its hash, set state = 1.
    a.ldq(t2, 0, k0);
    a.addi(t2, 1, t2);
    a.stq(t2, 0, k0);
    a.mul(s3, t0, s3);
    a.add(s3, t0, s3);
    a.li(s2, 1);
    a.br(next_char);

    a.bind(cls_digit);
    // Digits extend identifiers, otherwise count as number tokens.
    a.ldq(t2, 8, k0);
    a.addi(t2, 1, t2);
    a.stq(t2, 8, k0);
    {
        Label in_ident = a.newLabel();
        a.cmpeqi(s2, 1, t1);
        a.bne(t1, in_ident);
        a.add(s6, t0, s6);
        a.br(next_char);
        a.bind(in_ident);
        a.xor_(s3, t0, s3);
        a.br(next_char);
    }

    a.bind(cls_space);
    // A space ends a pending identifier -> keyword lookup.
    a.cmpeqi(s2, 1, t1);
    a.bne(t1, end_ident);
    a.br(next_char);

    a.bind(end_ident);
    a.li(s2, 0);
    // Probe the keyword table with the identifier hash.
    a.andi(s3, keyword_entries - 1, t2);
    a.slli(t2, 3, t2);
    a.li(t3, keyword_addr);
    a.add(t3, t2, t2);
    a.ldq(t4, 0, t2);
    a.beq(t4, not_kw);
    a.addi(s5, 1, s5);
    a.bind(not_kw);
    a.li(s3, 0);
    a.br(next_char);

    a.bind(cls_open);
    a.stq(t0, 0, s4);
    a.addi(s4, 8, s4);
    a.br(next_char);

    a.bind(cls_close);
    a.li(t1, brace_stack_addr);
    a.cmpult(t1, s4, t2);
    a.beq(t2, stack_empty);
    a.addi(s4, -8, s4);
    a.ldq(t3, 0, s4);               // the matching opener
    a.add(s6, t3, s6);
    a.br(next_char);
    a.bind(stack_empty);
    a.addi(s6, 7, s6);              // unmatched-brace penalty
    a.br(next_char);

    a.bind(cls_op);
    a.ldq(t2, 16, k0);
    a.addi(t2, 1, t2);
    a.stq(t2, 16, k0);
    // Operators also end identifiers.
    a.cmpeqi(s2, 1, t1);
    a.bne(t1, end_ident);
    a.br(next_char);

    a.bind(next_char);
    a.br(loop);

    a.bind(done);
    a.li(t0, result_addr);
    a.stq(s6, 0, t0);
    a.stq(s5, 8, t0);
    a.halt();

    return a.assemble("gcc");
}

} // namespace polypath
