/**
 * @file
 * "vortex" workload: an in-memory object database — build, index and
 * query.
 *
 * SPEC's 147.vortex manipulates an object store with very regular
 * control flow; it has the lowest misprediction rate in the suite
 * (Table 1: 1.85%). This kernel builds a record store, indexes it with
 * a hash table, then runs a query mix dominated by hits whose probe
 * loops are short and highly predictable.
 */

#include "common/prng.hh"
#include "workloads/workload_util.hh"
#include "workloads/workloads.hh"

namespace polypath
{

Program
buildVortex(const WorkloadParams &params)
{
    using namespace wreg;

    Assembler a;
    Prng prng(params.seed ^ 0x70432e88ull);

    constexpr unsigned num_records = 2048;
    constexpr unsigned index_entries = 16384;   // 12.5% load factor
    const u64 num_queries = static_cast<u64>(14000 * params.scale);

    // Keys the queries will look up: 98% present, 2% absent, with
    // temporal locality (recently used keys repeat) — vortex's query
    // mix is overwhelmingly successful lookups, which is what makes it
    // the most predictable benchmark in the suite.
    std::vector<u64> query_keys;
    query_keys.reserve(num_queries);
    for (u64 i = 0; i < num_queries; ++i) {
        u64 key;
        if (i >= 4 && prng.chance(30, 100)) {
            key = query_keys[i - 1 - prng.nextBelow(4)];
        } else if (prng.chance(98, 100)) {
            key = 1 + prng.nextBelow(num_records);      // present
        } else {
            key = num_records + 1 + prng.nextBelow(1000); // absent
        }
        query_keys.push_back(key);
    }
    std::vector<u8> key_bytes;
    key_bytes.reserve(num_queries * 8);
    for (u64 key : query_keys)
        for (int b = 0; b < 8; ++b)
            key_bytes.push_back(static_cast<u8>(key >> (8 * b)));

    Addr queries_addr = a.dBytes(key_bytes);
    a.dataAlign(8);
    Addr records_addr = a.dZero(num_records * 32);
    Addr index_addr = a.dZero(index_entries * 16);
    Addr result_addr = a.d64(0);
    a.d64(0);

    // Register plan:
    //   s0 records base   s1 index base   s2 queries ptr
    //   s3 queries left   s4 hits         s5 value checksum
    //   s6 hash multiplier
    emitWorkloadInit(a);
    a.li(s0, records_addr);
    a.li(s1, index_addr);
    a.li(s6, 0x9e3779b1ull);

    // --- Phase 1: populate records (key = i+1, value = f(i)) ---------
    {
        Label build_loop = a.newLabel();
        Label build_done = a.newLabel();
        a.li(t0, 0);                    // i
        a.li(t1, num_records);
        a.bind(build_loop);
        a.cmplt(t0, t1, t2);
        a.beq(t2, build_done);
        a.slli(t0, 5, t3);
        a.add(s0, t3, t3);              // record address
        a.addi(t0, 1, t4);              // key = i + 1
        a.stq(t4, 0, t3);
        a.mul(t4, t4, t5);              // value = key^2 + 17
        a.addi(t5, 17, t5);
        a.stq(t5, 8, t3);

        // Insert into the hash index: linear probing.
        a.mul(t4, s6, t6);
        a.srli(t6, 18, t6);
        a.andi(t6, index_entries - 1, t6);
        {
            Label probe = a.newLabel();
            Label inserted = a.newLabel();
            a.bind(probe);
            a.slli(t6, 4, t7);
            a.add(s1, t7, t7);
            a.ldq(t8, 0, t7);
            a.beq(t8, inserted);
            a.addi(t6, 1, t6);
            a.andi(t6, index_entries - 1, t6);
            a.br(probe);
            a.bind(inserted);
            a.stq(t4, 0, t7);           // key
            a.stq(t3, 8, t7);           // record address
        }
        a.addi(t0, 1, t0);
        a.br(build_loop);
        a.bind(build_done);
    }

    // --- Phase 2: query mix ------------------------------------------
    a.li(s2, queries_addr);
    a.li(s3, num_queries);
    a.li(s4, 0);
    a.li(s5, 0);
    {
        Label query_loop = a.newLabel();
        Label query_done = a.newLabel();
        Label probe = a.newLabel();
        Label missed = a.newLabel();
        Label matched = a.newLabel();
        Label next_query = a.newLabel();

        a.bind(query_loop);
        a.beq(s3, query_done);
        a.addi(s3, -1, s3);
        a.ldq(t0, 0, s2);               // key
        a.addi(s2, 8, s2);

        a.mul(t0, s6, t1);
        a.srli(t1, 18, t1);
        a.andi(t1, index_entries - 1, t1);

        a.bind(probe);
        a.slli(t1, 4, t2);
        a.add(s1, t2, t2);
        a.ldq(t3, 0, t2);               // stored key
        a.beq(t3, missed);              // empty slot: absent
        a.cmpeq(t3, t0, t4);
        a.bne(t4, matched);
        a.addi(t1, 1, t1);
        a.andi(t1, index_entries - 1, t1);
        a.br(probe);

        a.bind(matched);
        a.addi(s4, 1, s4);
        a.ldq(t5, 8, t2);               // record address
        a.ldq(t6, 8, t5);               // record value
        a.add(s5, t6, s5);
        // Touch a second field chain (object traversal flavour).
        a.ldq(t7, 16, t5);
        a.add(s5, t7, s5);
        a.br(next_query);

        a.bind(missed);
        a.addi(s5, 1, s5);
        a.bind(next_query);
        a.br(query_loop);
        a.bind(query_done);
    }

    a.li(t0, result_addr);
    a.stq(s4, 0, t0);
    a.stq(s5, 8, t0);
    a.halt();

    return a.assemble("vortex");
}

} // namespace polypath
