/**
 * @file
 * The SPECint95-like workload suite (Table 1 of the paper).
 *
 * The paper evaluates on the eight SPECint95 benchmarks compiled for
 * Alpha. Those binaries (and the AINT toolchain) are not reproducible
 * here, so each benchmark is replaced by a synthetic PPR program that
 * implements an *actual algorithm* with the control-flow character of
 * its namesake, calibrated so the gshare misprediction-rate spectrum
 * matches Table 1 (see DESIGN.md for the substitution rationale):
 *
 *   compress  LZW compressor with hash-probe collision branches
 *   gcc       lexer/state-machine over synthetic source text
 *   perl      bytecode-interpreter dispatch loop
 *   go        game-tree position evaluation on random boards
 *   m88ksim   CPU-simulator dispatch loop over a repetitive guest
 *   xlisp     recursive cons-tree traversal and GC-style marking
 *   vortex    in-memory database build + lookup loops
 *   jpeg      blocked integer DCT with quantisation/RLE branches
 *
 * All workloads are fully deterministic (fixed PRNG seeds) and
 * self-contained: they set up their own data in the image and HALT when
 * done.
 */

#ifndef POLYPATH_WORKLOADS_WORKLOADS_HH
#define POLYPATH_WORKLOADS_WORKLOADS_HH

#include <functional>
#include <string>
#include <vector>

#include "asmkit/program.hh"
#include "common/types.hh"

namespace polypath
{

/** Workload generation parameters. */
struct WorkloadParams
{
    /** Work multiplier: dynamic instruction count scales ~linearly. */
    double scale = 1.0;

    /** PRNG seed for data synthesis. */
    u64 seed = 0x5eed5eed;
};

/** Registry entry for one benchmark. */
struct WorkloadInfo
{
    std::string name;
    std::function<Program(const WorkloadParams &)> build;

    /** Table 1 reference values (for EXPERIMENTS.md comparisons). */
    double paperMispredictPct;
    double paperInstrMillions;
};

/** All eight benchmarks in the paper's Table 1 order. */
const std::vector<WorkloadInfo> &workloadRegistry();

/** Build one benchmark by name (fatal if unknown). */
Program buildWorkload(const std::string &name,
                      const WorkloadParams &params = {});

/**
 * Floating-point extension kernels (not part of Table 1): "wave" (a
 * stencil sweep, nearly perfectly predictable) and "nbody" (pairwise
 * forces with a cutoff branch). They test §5.1's conjecture that SEE
 * also helps highly predictable FP code; see bench/fp_extension.
 */
const std::vector<WorkloadInfo> &fpWorkloadRegistry();

// Individual builders.
Program buildCompress(const WorkloadParams &params);
Program buildGcc(const WorkloadParams &params);
Program buildPerl(const WorkloadParams &params);
Program buildGo(const WorkloadParams &params);
Program buildM88ksim(const WorkloadParams &params);
Program buildXlisp(const WorkloadParams &params);
Program buildVortex(const WorkloadParams &params);
Program buildJpeg(const WorkloadParams &params);
Program buildWave(const WorkloadParams &params);
Program buildNbody(const WorkloadParams &params);

} // namespace polypath

#endif // POLYPATH_WORKLOADS_WORKLOADS_HH
