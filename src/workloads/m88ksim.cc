/**
 * @file
 * "m88ksim" workload: an instruction-set simulator simulating a guest.
 *
 * SPEC's 124.m88ksim runs a Motorola 88k simulator whose own dispatch
 * loop follows the (very repetitive) guest instruction stream — the
 * most predictable benchmark in the suite (Table 1: 4.2%). This kernel
 * interprets a tiny register-machine guest: the guest program is a
 * loop, so the host's dispatch branches repeat with a period gshare can
 * learn; a guest "load" of pseudo-random data injects the residual
 * unpredictability.
 */

#include "common/prng.hh"
#include "workloads/workload_util.hh"
#include "workloads/workloads.hh"

namespace polypath
{

namespace
{

// Guest instruction encoding (one u64 per instruction):
//   bits [2:0] opcode, [6:3] rd, [10:7] rs, [31:16] imm (signed 16).
enum GuestOp : u64
{
    GAdd = 0,   // rd += rs
    GAddi = 1,  // rd += imm
    GLd = 2,    // rd = data[(rs + imm) & mask]
    GSt = 3,    // data[(rs + imm) & mask] = rd
    GBltz = 4,  // if rd < 0: gpc += imm (relative, in instructions)
    GBnez = 5,  // if rd != 0: gpc += imm
    GXor = 6,   // rd ^= rs
    GEnd = 7,   // end of one guest pass
};

u64
guest(GuestOp op, unsigned rd, unsigned rs, int imm)
{
    return static_cast<u64>(op) | (static_cast<u64>(rd & 15) << 3) |
           (static_cast<u64>(rs & 15) << 7) |
           (static_cast<u64>(static_cast<u16>(imm)) << 16);
}

} // anonymous namespace

Program
buildM88ksim(const WorkloadParams &params)
{
    using namespace wreg;

    Assembler a;
    Prng prng(params.seed ^ 0x88888888ull);

    const u64 guest_passes = static_cast<u64>(140 * params.scale);
    constexpr unsigned guest_data_words = 256;  // power of two

    // The guest program: an inner loop summing and hashing guest data.
    // g0 = accumulator, g1 = index, g2 = loop count, g3 = scratch,
    // g4 = random-ish value loaded from data.
    // g2 counts the inner loop; g5 advances the data window between
    // passes (updated by the host's GEnd handler) so successive passes
    // read fresh values.
    std::vector<u64> guest_code = {
        guest(GAddi, 2, 0, 24),          //  0: g2 = 24 (loop count)
        guest(GXor, 1, 1, 0),            //  1: g1 = 0
        guest(GAdd, 1, 5, 0),            //  2: g1 = g5 (window base)
        // loop:
        guest(GLd, 4, 1, 0),             //  3: g4 = data[g1 & mask]
        guest(GAdd, 0, 4, 0),            //  4: g0 += g4
        guest(GXor, 3, 4, 0),            //  5: g3 ^= g4
        guest(GBltz, 4, 0, 2),           //  6: if g4 < 0 skip 2
        guest(GAddi, 0, 0, 3),           //  7: g0 += 3
        guest(GAddi, 3, 0, 1),           //  8: g3 += 1
        guest(GBltz, 3, 0, 1),           //  9: if g3 < 0 skip 1
        guest(GXor, 0, 3, 0),            // 10: g0 ^= g3
        guest(GLd, 4, 1, 48),            // 11: g4 = data[(g1+48) & mask]
        guest(GBltz, 4, 0, 1),           // 12: if g4 < 0 skip 1
        guest(GAddi, 0, 0, 7),           // 13: g0 += 7
        guest(GAddi, 1, 0, 1),           // 14: g1 += 1
        guest(GSt, 3, 1, 96),            // 15: data[(g1+96) & mask] = g3
        guest(GAddi, 2, 0, -1),          // 16: g2 -= 1
        guest(GBnez, 2, 0, -15),         // 17: back to loop head
        guest(GEnd, 0, 0, 0),            // 18: end of pass
    };

    // Guest data: mostly positive, ~30% negative values, so the guest
    // GBltz branches are the (mildly) unpredictable ones.
    std::vector<u8> guest_data;
    guest_data.reserve(guest_data_words * 8);
    for (unsigned i = 0; i < guest_data_words; ++i) {
        s64 value = static_cast<s64>(prng.nextBelow(1000));
        if (prng.chance(42, 100))
            value = -value - 1;
        for (int b = 0; b < 8; ++b)
            guest_data.push_back(static_cast<u8>(
                static_cast<u64>(value) >> (8 * b)));
    }

    std::vector<u8> code_bytes;
    for (u64 word : guest_code)
        for (int b = 0; b < 8; ++b)
            code_bytes.push_back(static_cast<u8>(word >> (8 * b)));

    Addr gcode_addr = a.dBytes(code_bytes);
    a.dataAlign(8);
    Addr gdata_addr = a.dBytes(guest_data);
    a.dataAlign(8);
    Addr gregs_addr = a.dZero(16 * 8);
    Addr result_addr = a.d64(0);

    // Host register plan:
    //   s0 guest code base  s1 guest pc (index)   s2 guest regs base
    //   s3 guest data base  s4 passes left        s5 checksum
    //   t0 raw instr  t1 op  t2 rd  t3 rs  t4 imm  t5..t7 scratch
    emitWorkloadInit(a);
    a.li(s0, gcode_addr);
    a.li(s2, gregs_addr);
    a.li(s3, gdata_addr);
    a.li(s4, guest_passes);
    a.li(s5, 0);

    Label pass_loop = a.newLabel();
    Label dispatch = a.newLabel();
    Label all_done = a.newLabel();
    Label h_add = a.newLabel();
    Label h_addi = a.newLabel();
    Label h_ld = a.newLabel();
    Label h_st = a.newLabel();
    Label h_bltz = a.newLabel();
    Label h_bnez = a.newLabel();
    Label h_xor = a.newLabel();
    Label h_end = a.newLabel();

    a.bind(pass_loop);
    a.beq(s4, all_done);
    a.addi(s4, -1, s4);
    a.li(s1, 0);                    // guest pc = 0

    a.bind(dispatch);
    // Fetch and crack the guest instruction.
    a.slli(s1, 3, t0);
    a.add(s0, t0, t0);
    a.ldq(t0, 0, t0);
    a.addi(s1, 1, s1);
    a.andi(t0, 7, t1);              // opcode
    a.srli(t0, 3, t2);
    a.andi(t2, 15, t2);             // rd
    a.srli(t0, 7, t3);
    a.andi(t3, 15, t3);             // rs
    a.srli(t0, 16, t4);
    a.slli(t4, 48, t4);             // sign-extend imm16
    a.srai(t4, 48, t4);

    // Dispatch tree over the 8 guest opcodes.
    a.cmplti(t1, 4, t5);
    {
        Label high = a.newLabel();
        a.beq(t5, high);
        a.cmplti(t1, 2, t5);
        {
            Label two3 = a.newLabel();
            a.beq(t5, two3);
            a.beq(t1, h_add);
            a.br(h_addi);
            a.bind(two3);
            a.cmpeqi(t1, 2, t5);
            a.bne(t5, h_ld);
            a.br(h_st);
        }
        a.bind(high);
        a.cmplti(t1, 6, t5);
        {
            Label six7 = a.newLabel();
            a.beq(t5, six7);
            a.cmpeqi(t1, 4, t5);
            a.bne(t5, h_bltz);
            a.br(h_bnez);
            a.bind(six7);
            a.cmpeqi(t1, 6, t5);
            a.bne(t5, h_xor);
            a.br(h_end);
        }
    }

    // Helper fragments; guest register file accesses go through memory
    // like a real ISS.
    a.bind(h_add);
    a.slli(t2, 3, t5);
    a.add(s2, t5, t5);
    a.slli(t3, 3, t6);
    a.add(s2, t6, t6);
    a.ldq(t7, 0, t5);
    a.ldq(t6, 0, t6);
    a.add(t7, t6, t7);
    a.stq(t7, 0, t5);
    a.br(dispatch);

    a.bind(h_addi);
    a.slli(t2, 3, t5);
    a.add(s2, t5, t5);
    a.ldq(t7, 0, t5);
    a.add(t7, t4, t7);
    a.stq(t7, 0, t5);
    a.br(dispatch);

    a.bind(h_ld);
    a.slli(t3, 3, t5);
    a.add(s2, t5, t5);
    a.ldq(t6, 0, t5);               // rs value
    a.add(t6, t4, t6);
    a.andi(t6, guest_data_words - 1, t6);
    a.slli(t6, 3, t6);
    a.add(s3, t6, t6);
    a.ldq(t7, 0, t6);               // guest data value
    a.slli(t2, 3, t5);
    a.add(s2, t5, t5);
    a.stq(t7, 0, t5);
    a.br(dispatch);

    a.bind(h_st);
    a.slli(t3, 3, t5);
    a.add(s2, t5, t5);
    a.ldq(t6, 0, t5);
    a.add(t6, t4, t6);
    a.andi(t6, guest_data_words - 1, t6);
    a.slli(t6, 3, t6);
    a.add(s3, t6, t6);
    a.slli(t2, 3, t5);
    a.add(s2, t5, t5);
    a.ldq(t7, 0, t5);
    a.stq(t7, 0, t6);
    a.br(dispatch);

    a.bind(h_bltz);
    a.slli(t2, 3, t5);
    a.add(s2, t5, t5);
    a.ldq(t7, 0, t5);
    {
        Label not_taken = a.newLabel();
        a.bge(t7, not_taken);
        a.add(s1, t4, s1);
        a.bind(not_taken);
    }
    a.br(dispatch);

    a.bind(h_bnez);
    a.slli(t2, 3, t5);
    a.add(s2, t5, t5);
    a.ldq(t7, 0, t5);
    {
        Label not_taken = a.newLabel();
        a.beq(t7, not_taken);
        a.add(s1, t4, s1);
        a.bind(not_taken);
    }
    a.br(dispatch);

    a.bind(h_xor);
    a.slli(t2, 3, t5);
    a.add(s2, t5, t5);
    a.slli(t3, 3, t6);
    a.add(s2, t6, t6);
    a.ldq(t7, 0, t5);
    a.ldq(t6, 0, t6);
    a.xor_(t7, t6, t7);
    a.stq(t7, 0, t5);
    a.br(dispatch);

    a.bind(h_end);
    // Fold guest g0 into the checksum and advance the data window (g5)
    // so successive passes see different values.
    a.ldq(t7, 0, s2);
    a.add(s5, t7, s5);
    a.ldq(t7, 40, s2);              // g5
    a.addi(t7, 24, t7);
    a.stq(t7, 40, s2);
    a.br(pass_loop);

    a.bind(all_done);
    a.li(t0, result_addr);
    a.stq(s5, 0, t0);
    a.halt();

    return a.assemble("m88ksim");
}

} // namespace polypath
