/**
 * @file
 * "compress" workload: an LZW compressor (the actual algorithm behind
 * SPEC's 129.compress) over semi-compressible synthetic data.
 *
 * Control-flow character: hash-probe hit/miss branches and collision
 * loops whose outcomes depend on the data stream — moderately hard for
 * gshare (Table 1: 9.13% misprediction).
 */

#include "common/prng.hh"
#include "workloads/workload_util.hh"
#include "workloads/workloads.hh"

namespace polypath
{

Program
buildCompress(const WorkloadParams &params)
{
    using namespace wreg;

    Assembler a;
    Prng prng(params.seed ^ 0xc0333955ull);

    // --- Input data: bytes with tunable repetitiveness ----------------
    const size_t input_len =
        static_cast<size_t>(11000 * params.scale);
    std::vector<u8> input(input_len);
    // A 32-symbol alphabet; ~72% of bytes repeat a recent byte, which
    // creates genuine LZW matches and data-dependent probe outcomes
    // (calibrated so gshare lands near Table 1's 9.13%).
    for (size_t i = 0; i < input_len; ++i) {
        if (i >= 16 && prng.chance(72, 100)) {
            input[i] = input[i - 1 - prng.nextBelow(16)];
        } else {
            input[i] = static_cast<u8>(prng.nextBelow(32) + 1);
        }
    }

    constexpr unsigned hash_entries = 4096;     // 16 bytes each
    constexpr unsigned dict_limit = 256 + 2800; // reset before table fills

    Addr in_addr = a.dBytes(input);
    a.dataAlign(8);
    Addr hash_addr = a.dZero(hash_entries * 16);
    a.dataAlign(8);
    Addr out_addr = a.dZero(input_len * 8 + 64);
    Addr result_addr = a.d64(0);
    a.d64(0);

    // Register plan:
    //   s0 input ptr     s1 bytes left     s2 hash base    s3 next code
    //   s4 out ptr       s5 current "w"    s6 dict-limit
    //   t0..t7 scratch
    emitWorkloadInit(a);
    a.li(s0, in_addr);
    a.li(s1, static_cast<u64>(input_len - 1));
    a.li(s2, hash_addr);
    a.li(s3, 256);
    a.li(s4, out_addr);
    a.li(s6, dict_limit);
    a.ldbu(s5, 0, s0);          // w = first byte
    a.addi(s0, 1, s0);

    Label loop = a.newLabel();
    Label done = a.newLabel();
    Label probe = a.newLabel();
    Label hit = a.newLabel();
    Label miss = a.newLabel();
    Label no_reset = a.newLabel();
    Label reset_loop = a.newLabel();

    a.bind(loop);
    a.beq(s1, done);
    a.ldbu(t0, 0, s0);          // c
    a.addi(s0, 1, s0);
    a.addi(s1, -1, s1);

    // Output bit-packing work per input byte (real compress shifts its
    // codes into an output bit buffer): a short, perfectly predictable
    // loop that dilutes the hard hash-probe branches the way the real
    // benchmark's straight-line packing code does.
    {
        Label pack = a.newLabel();
        a.li(t2, 3);
        a.bind(pack);
        a.slli(t0, 1, t3);
        a.xor_(t3, t0, t3);
        a.addi(t2, -1, t2);
        a.bgt(t2, pack);
    }

    // key = ((w << 8) | c) + 1 (never zero; zero marks empty slots)
    a.slli(s5, 8, t1);
    a.or_(t1, t0, t1);
    a.addi(t1, 1, t1);

    // h = (key * 0x9E3779B1) >> 20, masked to the table
    a.li(t2, 0x9e3779b1ull);
    a.mul(t1, t2, t3);
    a.srli(t3, 20, t3);
    a.andi(t3, hash_entries - 1, t3);

    a.bind(probe);
    a.slli(t3, 4, t4);
    a.add(s2, t4, t4);          // entry address
    a.ldq(t5, 0, t4);           // stored key
    a.beq(t5, miss);            // empty slot: not in dictionary
    a.cmpeq(t5, t1, t6);
    a.bne(t6, hit);
    a.addi(t3, 1, t3);          // linear probe
    a.andi(t3, hash_entries - 1, t3);
    a.br(probe);

    a.bind(hit);
    a.ldq(s5, 8, t4);           // w = dictionary code
    a.br(loop);

    a.bind(miss);
    a.stq(s5, 0, s4);           // emit code(w)
    a.addi(s4, 8, s4);
    a.stq(t1, 0, t4);           // insert (key -> nextCode)
    a.stq(s3, 8, t4);
    a.addi(s3, 1, s3);
    a.or_(t0, zero, s5);        // w = c

    // Dictionary full? Reset it (as UNIX compress does with CLEAR).
    a.cmplt(s3, s6, t7);
    a.bne(t7, no_reset);
    a.li(t7, hash_addr);
    a.li(t6, hash_entries);
    a.bind(reset_loop);
    a.stq(zero, 0, t7);
    a.stq(zero, 8, t7);
    a.addi(t7, 16, t7);
    a.addi(t6, -1, t6);
    a.bgt(t6, reset_loop);
    a.li(s3, 256);
    a.bind(no_reset);
    a.br(loop);

    a.bind(done);
    a.stq(s5, 0, s4);           // emit the final code
    a.addi(s4, 8, s4);
    a.li(t0, result_addr);
    a.stq(s3, 0, t0);           // final dictionary size
    a.stq(s4, 8, t0);           // output cursor
    a.halt();

    return a.assemble("compress");
}

} // namespace polypath
