/**
 * @file
 * "xlisp" workload: cons-tree construction, recursive evaluation and a
 * GC-style mark phase.
 *
 * SPEC's 130.li interprets Lisp: pointer chasing over cons cells, deep
 * recursion (exercising the return-address stack), and type-tag
 * branches that are structured but not perfectly regular (Table 1:
 * 5.2% misprediction).
 *
 * Cell layout (32 bytes): [tag][car][cdr][mark], tag 0 = atom (car
 * holds the value), tag 1 = cons (car/cdr hold cell addresses).
 */

#include "common/prng.hh"
#include "workloads/workload_util.hh"
#include "workloads/workloads.hh"

namespace polypath
{

Program
buildXlisp(const WorkloadParams &params)
{
    using namespace wreg;

    Prng prng(params.seed ^ 0x115b115bull);

    // Build the tree host-side and embed it as initialised data; the
    // guest then traverses it recursively many times.
    constexpr Addr heap_base = 0x180000;
    struct Cell { u64 tag, car, cdr, mark; };
    std::vector<Cell> heap;

    // Recursive random tree builder: P(cons) decays with depth so the
    // expected shape is bushy near the root and leafy below, giving
    // tag branches that are biased but data-dependent.
    std::function<u64(unsigned)> build = [&](unsigned depth) -> u64 {
        u64 idx = heap.size();
        heap.push_back({});
        bool make_cons = depth < 3 ||
                         (depth < 16 && prng.chance(72 - depth * 2, 100));
        if (make_cons) {
            heap[idx].tag = 1;
            u64 car = build(depth + 1);
            u64 cdr = build(depth + 1);
            heap[idx].car = heap_base + car * 32;
            heap[idx].cdr = heap_base + cdr * 32;
        } else {
            heap[idx].tag = 0;
            // Leaf values avoid the "small-integer cache" residue
            // (value % 64 == 0) except for a ~5% minority; the mark
            // phase's cache check is therefore almost-constant, with
            // just enough data-dependence to reproduce xlisp's 5.2%
            // misprediction rate.
            u64 value = prng.nextBelow(1000);
            if (prng.chance(7, 100))
                value -= value % 64;
            else if (value % 64 == 0)
                value += 1 + prng.nextBelow(62);
            heap[idx].car = value;
            heap[idx].cdr = 0;
        }
        return idx;
    };
    build(0);

    std::vector<u8> heap_bytes;
    heap_bytes.reserve(heap.size() * 32);
    for (const Cell &cell : heap) {
        for (u64 field : {cell.tag, cell.car, cell.cdr, cell.mark})
            for (int b = 0; b < 8; ++b)
                heap_bytes.push_back(static_cast<u8>(field >> (8 * b)));
    }

    const u64 eval_rounds = static_cast<u64>(115 * params.scale);

    Assembler b(0x1000, heap_base);
    Addr heap_addr = b.dBytes(heap_bytes);
    b.dataAlign(8);
    Addr result_addr = b.d64(0);
    (void)heap_addr;

    // Register plan:
    //   a0 argument cell pointer     v0 return value
    //   s0 rounds left  s1 checksum  s2 root cell  s3 mark-phase toggle
    emitWorkloadInit(b);
    b.li(s0, eval_rounds);
    b.li(s1, 0);
    b.li(s2, heap_base);
    b.li(s3, 0);

    Label round_loop = b.newLabel();
    Label all_done = b.newLabel();
    Label fn_sum = b.newLabel();
    Label fn_mark = b.newLabel();

    b.bind(round_loop);
    b.beq(s0, all_done);
    b.addi(s0, -1, s0);

    // sum = eval(root)
    b.or_(s2, zero, a0);
    b.jsr(ra, fn_sum);
    b.add(s1, v0, s1);

    // Alternate rounds run the mark phase with a flipped mark value.
    {
        Label skip_mark = b.newLabel();
        b.andi(s0, 1, t0);
        b.beq(t0, skip_mark);
        b.addi(s3, 1, s3);
        b.or_(s2, zero, a0);
        b.or_(s3, zero, a1);
        b.jsr(ra, fn_mark);
        b.bind(skip_mark);
    }
    b.br(round_loop);

    b.bind(all_done);
    b.li(t0, result_addr);
    b.stq(s1, 0, t0);
    b.halt();

    // --- u64 sum(cell *a0): recursive tree fold --------------------
    // Atoms return car + (car >> 3 & 7); conses return
    // sum(car) * 2 + sum(cdr) (the multiply keeps IntAlu1 busy the way
    // xlisp's boxing arithmetic does).
    b.bind(fn_sum);
    {
        Label is_cons = b.newLabel();
        Label even_value = b.newLabel();
        b.ldq(t0, 0, a0);           // tag
        b.bne(t0, is_cons);
        b.ldq(v0, 8, a0);           // atom: value
        b.srli(v0, 3, t1);
        b.andi(t1, 7, t1);
        b.add(v0, t1, v0);
        b.bind(even_value);
        b.ret(ra);

        b.bind(is_cons);
        emitPrologue(b);
        b.addi(sp, -16, sp);
        b.stq(a0, 0, sp);           // save the cell
        b.ldq(a0, 8, a0);           // car
        b.jsr(ra, fn_sum);
        b.stq(v0, 8, sp);           // save partial sum
        b.ldq(a0, 0, sp);
        b.ldq(a0, 16, a0);          // cdr
        b.jsr(ra, fn_sum);
        b.ldq(t0, 8, sp);
        b.slli(t0, 1, t0);
        b.add(v0, t0, v0);
        b.addi(sp, 16, sp);
        emitEpilogue(b);
    }

    // --- void mark(cell *a0, u64 a1): GC-style mark phase -----------
    b.bind(fn_mark);
    {
        Label is_cons = b.newLabel();
        b.stq(a1, 24, a0);          // mark the cell
        b.ldq(t0, 0, a0);           // tag
        b.bne(t0, is_cons);
        // Atoms in the small-integer cache (value % 64 == 0, a tuned
        // ~5% minority) skip the ageing write; the branch is almost
        // constant but its data-dependent exceptions perturb the
        // global-history contexts downstream — the slow churn a real
        // Lisp heap exhibits.
        Label no_age = b.newLabel();
        b.ldq(t1, 8, a0);
        b.andi(t1, 63, t2);
        b.beq(t2, no_age);
        b.addi(t1, 1, t1);
        b.stq(t1, 8, a0);
        b.bind(no_age);
        b.ret(ra);

        b.bind(is_cons);
        emitPrologue(b);
        b.addi(sp, -16, sp);
        b.stq(a0, 0, sp);
        b.ldq(a0, 8, a0);           // car
        b.jsr(ra, fn_mark);
        b.ldq(a0, 0, sp);
        b.ldq(a0, 16, a0);          // cdr
        b.jsr(ra, fn_mark);
        b.addi(sp, 16, sp);
        emitEpilogue(b);
    }

    return b.assemble("xlisp");
}

} // namespace polypath
