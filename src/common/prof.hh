/**
 * @file
 * pp_prof — per-stage cycle-cost attribution for the simulator itself.
 *
 * Answers "where does the host time of one simulated cycle go?" with a
 * breakdown over the pipeline phases (fetch/rename/issue/writeback/
 * commit) plus the memory-system components nested inside them
 * (store-queue load resolution, D-cache probes, SparseMemory
 * multi-byte accesses). Every perf PR argues from this table instead
 * of end-to-end numbers alone.
 *
 * Design constraints:
 *
 *   - Zero cost when disabled. Every instrumentation point is a single
 *     predicted branch on a plain global bool; no clock is read, no
 *     TLS is touched. Disabled is the default; `PP_PROF=1` in the
 *     environment or prof::setEnabled(true) turns collection on.
 *   - Observationally invisible. The profiler reads clocks and bumps
 *     counters; it never feeds back into simulation state
 *     (tests/integration/test_sim_digest.cc pins off == on).
 *   - Thread-confined. Counters are thread_local, matching the
 *     one-core-per-thread execution model, so parallel sweeps never
 *     race; report() renders the calling thread's view.
 *
 * Usage:
 *     { PP_PROF_SCOPE(Fetch); fetchPhase(); }
 *     std::string table = prof::report(total_wall_ns);
 */

#ifndef POLYPATH_COMMON_PROF_HH
#define POLYPATH_COMMON_PROF_HH

#include <array>
#include <chrono>
#include <string>

#include "common/types.hh"

namespace polypath
{
namespace prof
{

/** Attribution buckets. The first five are the top-level pipeline
 *  phases and partition the cycle loop: their times (plus "other") sum
 *  to the wall time of the run. The remaining buckets are components
 *  timed *inside* a phase and are reported separately, not summed. */
enum class Stage : u8
{
    Fetch,
    Rename,
    Issue,
    Writeback,      //!< completion + branch resolution / recovery
    Commit,
    // --- nested components (already included in a phase above) -------
    SqQuery,        //!< StoreQueue::queryLoad (inside Issue)
    SqKill,         //!< StoreQueue::killWrongPath (inside Writeback)
    DCache,         //!< CacheModel::access (inside Issue)
    MemRead,        //!< SparseMemory::read (fetch slow path, loads)
    MemWrite,       //!< SparseMemory::write (store commit)
    NumStages,
};

constexpr size_t numStages = static_cast<size_t>(Stage::NumStages);

/** Stages before this index partition the run; the rest are nested. */
constexpr size_t numPipelineStages = 5;

/** Short display name ("fetch", "sq.query", ...). */
const char *stageName(Stage stage);

/** Accumulated cost of one stage on the calling thread. */
struct StageCost
{
    u64 ns = 0;
    u64 calls = 0;
};

namespace detail
{

/** The master switch. Plain global (not atomic): flipped only between
 *  runs, read in the hot loop. Initialised from PP_PROF. */
extern bool enabledFlag;

/** Per-thread accumulation (one core per thread). */
extern thread_local std::array<StageCost, numStages> costs;

inline u64
nowNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace detail

/** Is collection on? Inline: one global load. */
inline bool enabled() { return detail::enabledFlag; }

/** Turn collection on/off (also see the PP_PROF environment knob). */
void setEnabled(bool on);

/** Zero the calling thread's counters. */
void reset();

/** Snapshot of the calling thread's counters. */
std::array<StageCost, numStages> snapshot();

/**
 * Render the attribution table for a region of @p total_ns wall time
 * (measure it around the simulation loop). Pipeline-stage rows plus a
 * derived "other" row sum to the total by construction; nested
 * component rows follow under a separator, marked as included in
 * their parent phase.
 */
std::string report(u64 total_ns);

/**
 * RAII stage timer. When collection is disabled the constructor is a
 * single branch and the destructor another; no clock is read.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Stage stage)
    {
        if (enabled()) {
            profStage = stage;
            startNs = detail::nowNs();
            active = true;
        }
    }

    ~ScopedTimer()
    {
        if (active) {
            StageCost &cost =
                detail::costs[static_cast<size_t>(profStage)];
            cost.ns += detail::nowNs() - startNs;
            ++cost.calls;
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Stage profStage = Stage::Fetch;
    u64 startNs = 0;
    bool active = false;
};

} // namespace prof
} // namespace polypath

/** Scoped attribution of the enclosing block to prof::Stage::stage. */
#define PP_PROF_SCOPE(stage) \
    ::polypath::prof::ScopedTimer pp_prof_scope_##stage( \
        ::polypath::prof::Stage::stage)

#endif // POLYPATH_COMMON_PROF_HH
