/**
 * @file
 * Deterministic pseudo-random number generators.
 *
 * The simulator and the workload generators must be fully deterministic so
 * that experiments are reproducible; we therefore avoid std::random_device
 * and use an explicit xorshift64* generator with a fixed seed.
 */

#ifndef POLYPATH_COMMON_PRNG_HH
#define POLYPATH_COMMON_PRNG_HH

#include "logging.hh"
#include "types.hh"

namespace polypath
{

/** xorshift64* generator; fast, deterministic and good enough for
 *  workload data synthesis. */
class Prng
{
  public:
    explicit Prng(u64 seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    u64
    next()
    {
        u64 x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    u64
    nextBelow(u64 bound)
    {
        panic_if(bound == 0, "Prng::nextBelow with zero bound");
        return next() % bound;
    }

    /** Bernoulli trial that succeeds with probability num/den. */
    bool
    chance(u64 num, u64 den)
    {
        return nextBelow(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    u64 state;
};

} // namespace polypath

#endif // POLYPATH_COMMON_PRNG_HH
