/**
 * @file
 * Saturating counters used by branch predictors and confidence estimators.
 */

#ifndef POLYPATH_COMMON_SAT_COUNTER_HH
#define POLYPATH_COMMON_SAT_COUNTER_HH

#include "logging.hh"
#include "types.hh"

namespace polypath
{

/**
 * An n-bit saturating up/down counter (n <= 8).
 *
 * Used as the 2-bit direction counter of gshare. The counter saturates at
 * 0 and 2^n - 1.
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned num_bits = 2, u8 initial = 0)
        : maxVal(static_cast<u8>((1u << num_bits) - 1)), value(initial)
    {
        panic_if(num_bits == 0 || num_bits > 8,
                 "SatCounter width %u out of range", num_bits);
        panic_if(initial > maxVal, "SatCounter initial value too large");
    }

    /** Saturating increment. */
    void
    increment()
    {
        if (value < maxVal)
            ++value;
    }

    /** Saturating decrement. */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Reset to zero (used by resetting confidence counters). */
    void reset() { value = 0; }

    /** Raw counter value. */
    u8 raw() const { return value; }

    /** Saturation maximum for this width. */
    u8 max() const { return maxVal; }

    /** Most-significant-bit test, i.e. "counter in upper half". */
    bool msbSet() const { return value > (maxVal >> 1); }

    /** True when fully saturated high. */
    bool saturated() const { return value == maxVal; }

  private:
    u8 maxVal;
    u8 value;
};

} // namespace polypath

#endif // POLYPATH_COMMON_SAT_COUNTER_HH
