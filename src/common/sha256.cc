#include "sha256.hh"

#include <cstring>

#include "common/logging.hh"

namespace polypath
{

namespace
{

constexpr u32 roundK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline u32
rotr(u32 x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

} // anonymous namespace

Sha256::Sha256()
    : state{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
            0x9b05688c, 0x1f83d9ab, 0x5be0cd19}
{
}

void
Sha256::processBlock(const u8 *block)
{
    u32 w[64];
    for (unsigned i = 0; i < 16; ++i) {
        w[i] = (u32(block[4 * i]) << 24) | (u32(block[4 * i + 1]) << 16) |
               (u32(block[4 * i + 2]) << 8) | u32(block[4 * i + 3]);
    }
    for (unsigned i = 16; i < 64; ++i) {
        u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
        u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    u32 a = state[0], b = state[1], c = state[2], d = state[3];
    u32 e = state[4], f = state[5], g = state[6], h = state[7];
    for (unsigned i = 0; i < 64; ++i) {
        u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        u32 ch = (e & f) ^ (~e & g);
        u32 t1 = h + s1 + ch + roundK[i] + w[i];
        u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        u32 maj = (a & b) ^ (a & c) ^ (b & c);
        u32 t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

void
Sha256::update(const void *data, size_t len)
{
    panic_if(finished, "Sha256::update after digest()");
    const u8 *bytes = static_cast<const u8 *>(data);
    totalBytes += len;

    if (bufferLen > 0) {
        size_t take = std::min(len, buffer.size() - bufferLen);
        std::memcpy(buffer.data() + bufferLen, bytes, take);
        bufferLen += take;
        bytes += take;
        len -= take;
        if (bufferLen == buffer.size()) {
            processBlock(buffer.data());
            bufferLen = 0;
        }
    }
    while (len >= 64) {
        processBlock(bytes);
        bytes += 64;
        len -= 64;
    }
    if (len > 0) {
        std::memcpy(buffer.data(), bytes, len);
        bufferLen = len;
    }
}

void
Sha256::updateU64(u64 value)
{
    u8 le[8];
    for (unsigned i = 0; i < 8; ++i)
        le[i] = static_cast<u8>(value >> (8 * i));
    update(le, sizeof(le));
}

std::array<u8, 32>
Sha256::digest()
{
    panic_if(finished, "Sha256::digest called twice");
    finished = true;

    u64 bit_len = totalBytes * 8;
    u8 pad[72];
    size_t pad_len = 0;
    pad[pad_len++] = 0x80;
    while ((totalBytes + pad_len) % 64 != 56)
        pad[pad_len++] = 0;
    for (int shift = 56; shift >= 0; shift -= 8)
        pad[pad_len++] = static_cast<u8>(bit_len >> shift);

    // Feed the padding through the normal block path (bypassing the
    // totalBytes accounting, which is already final).
    const u8 *bytes = pad;
    size_t len = pad_len;
    while (len > 0) {
        size_t take = std::min(len, buffer.size() - bufferLen);
        std::memcpy(buffer.data() + bufferLen, bytes, take);
        bufferLen += take;
        bytes += take;
        len -= take;
        if (bufferLen == buffer.size()) {
            processBlock(buffer.data());
            bufferLen = 0;
        }
    }

    std::array<u8, 32> out;
    for (unsigned i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<u8>(state[i] >> 24);
        out[4 * i + 1] = static_cast<u8>(state[i] >> 16);
        out[4 * i + 2] = static_cast<u8>(state[i] >> 8);
        out[4 * i + 3] = static_cast<u8>(state[i]);
    }
    return out;
}

std::string
Sha256::hexDigest()
{
    static const char hex[] = "0123456789abcdef";
    std::array<u8, 32> bytes = digest();
    std::string out;
    out.reserve(64);
    for (u8 byte : bytes) {
        out.push_back(hex[byte >> 4]);
        out.push_back(hex[byte & 0xf]);
    }
    return out;
}

std::string
Sha256::hashHex(const std::string &str)
{
    Sha256 hasher;
    hasher.update(str);
    return hasher.hexDigest();
}

} // namespace polypath
