#include "stats_util.hh"

#include <cmath>

namespace polypath
{

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        sum += 1.0 / v;
    }
    return static_cast<double>(values.size()) / sum;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
percentChange(double a, double b)
{
    if (a == 0.0)
        return 0.0;
    return 100.0 * (b - a) / a;
}

} // namespace polypath
