/**
 * @file
 * Status and error reporting in the gem5 style.
 *
 * panic()  -- an internal simulator invariant was violated (a bug in
 *             polypath itself); aborts so a debugger/core dump can be used.
 * fatal()  -- the simulation cannot continue due to a user-level problem
 *             (bad configuration, broken workload); exits with status 1.
 * warn()   -- something questionable happened but simulation continues.
 * inform() -- plain status output.
 */

#ifndef POLYPATH_COMMON_LOGGING_HH
#define POLYPATH_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace polypath
{

/** Internal: format a printf-style message into a std::string. */
std::string vformatMessage(const char *fmt, va_list ap);

/** Internal: emit a tagged message and abort. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...);

/** Internal: emit a tagged message and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...);

/** Internal: emit a tagged warning. */
void warnImpl(const char *fmt, ...);

/** Internal: emit an informational message. */
void informImpl(const char *fmt, ...);

} // namespace polypath

#define panic(...) \
    ::polypath::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define fatal(...) \
    ::polypath::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define warn(...) ::polypath::warnImpl(__VA_ARGS__)

#define inform(...) ::polypath::informImpl(__VA_ARGS__)

/**
 * panic_if(cond, ...) checks a simulator invariant; the condition text is
 * included in the failure message.
 */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond) {                                                    \
            ::polypath::panicImpl(__FILE__, __LINE__, __VA_ARGS__);    \
        }                                                              \
    } while (0)

#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond) {                                                    \
            ::polypath::fatalImpl(__FILE__, __LINE__, __VA_ARGS__);    \
        }                                                              \
    } while (0)

#endif // POLYPATH_COMMON_LOGGING_HH
