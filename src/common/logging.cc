#include "logging.hh"

#include <cstdio>

namespace polypath
{

std::string
vformatMessage(const char *fmt, va_list ap)
{
    char buf[4096];
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    return std::string(buf);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatMessage(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatMessage(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatMessage(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatMessage(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace polypath
