/**
 * @file
 * Minimal SHA-256 (FIPS 180-4) — used to content-address simulation
 * results (src/sim/result_cache.hh) and to checksum cache entries.
 *
 * Self-contained so the repository carries no crypto dependency; this
 * is an integrity/addressing hash here, not a security boundary.
 */

#ifndef POLYPATH_COMMON_SHA256_HH
#define POLYPATH_COMMON_SHA256_HH

#include <array>
#include <cstddef>
#include <string>

#include "common/types.hh"

namespace polypath
{

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes at @p data. */
    void update(const void *data, size_t len);

    /** Convenience: absorb a string's bytes. */
    void update(const std::string &str) { update(str.data(), str.size()); }

    /** Absorb a little-endian 64-bit value. */
    void updateU64(u64 value);

    /**
     * Finish and return the 32-byte digest. The hasher must not be
     * reused afterwards.
     */
    std::array<u8, 32> digest();

    /** Finish and return the digest as 64 lowercase hex characters. */
    std::string hexDigest();

    /** One-shot helper: hex SHA-256 of @p str. */
    static std::string hashHex(const std::string &str);

  private:
    void processBlock(const u8 *block);

    std::array<u32, 8> state;
    u64 totalBytes = 0;
    std::array<u8, 64> buffer;
    size_t bufferLen = 0;
    bool finished = false;
};

} // namespace polypath

#endif // POLYPATH_COMMON_SHA256_HH
