/**
 * @file
 * Fundamental scalar type aliases shared across the simulator.
 */

#ifndef POLYPATH_COMMON_TYPES_HH
#define POLYPATH_COMMON_TYPES_HH

#include <cstdint>

namespace polypath
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Memory address (byte granularity). */
using Addr = u64;

/** Simulation cycle count. */
using Cycle = u64;

/** Global dynamic-instruction sequence number (fetch order). */
using InstSeq = u64;

/** Physical register index. */
using PhysReg = u16;

/** Invalid/unassigned physical register sentinel. */
constexpr PhysReg invalidPhysReg = 0xffff;

} // namespace polypath

#endif // POLYPATH_COMMON_TYPES_HH
