/**
 * @file
 * Small bit-manipulation helpers used by the ISA encoder/decoder and
 * the branch predictors.
 */

#ifndef POLYPATH_COMMON_BITUTILS_HH
#define POLYPATH_COMMON_BITUTILS_HH

#include <bit>

#include "types.hh"

namespace polypath
{

/** Extract bits [hi:lo] (inclusive) of @p value. */
constexpr u64
bits(u64 value, unsigned hi, unsigned lo)
{
    unsigned nbits = hi - lo + 1;
    u64 mask = (nbits >= 64) ? ~u64(0) : ((u64(1) << nbits) - 1);
    return (value >> lo) & mask;
}

/** Insert @p field into bits [hi:lo] of a zeroed word. */
constexpr u64
insertBits(u64 field, unsigned hi, unsigned lo)
{
    unsigned nbits = hi - lo + 1;
    u64 mask = (nbits >= 64) ? ~u64(0) : ((u64(1) << nbits) - 1);
    return (field & mask) << lo;
}

/** Sign-extend the low @p nbits bits of @p value to 64 bits. */
constexpr s64
sext(u64 value, unsigned nbits)
{
    unsigned shift = 64 - nbits;
    return static_cast<s64>(value << shift) >> shift;
}

/** Mask covering the low @p nbits bits. */
constexpr u64
lowMask(unsigned nbits)
{
    return (nbits >= 64) ? ~u64(0) : ((u64(1) << nbits) - 1);
}

/** True iff @p value is a power of two (and non-zero). */
constexpr bool
isPowerOf2(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); @p value must be non-zero. */
constexpr unsigned
floorLog2(u64 value)
{
    return 63 - std::countl_zero(value);
}

} // namespace polypath

#endif // POLYPATH_COMMON_BITUTILS_HH
