#include "prof.hh"

#include <cstdio>
#include <cstdlib>

namespace polypath
{
namespace prof
{

namespace detail
{

namespace
{

bool
initFromEnv()
{
    const char *env = std::getenv("PP_PROF");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

} // anonymous namespace

bool enabledFlag = initFromEnv();

thread_local std::array<StageCost, numStages> costs{};

} // namespace detail

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Fetch: return "fetch";
      case Stage::Rename: return "rename";
      case Stage::Issue: return "issue";
      case Stage::Writeback: return "writeback";
      case Stage::Commit: return "commit";
      case Stage::SqQuery: return "sq.query";
      case Stage::SqKill: return "sq.kill";
      case Stage::DCache: return "dcache";
      case Stage::MemRead: return "mem.read";
      case Stage::MemWrite: return "mem.write";
      case Stage::NumStages: break;
    }
    return "?";
}

void
setEnabled(bool on)
{
    detail::enabledFlag = on;
}

void
reset()
{
    detail::costs.fill(StageCost{});
}

std::array<StageCost, numStages>
snapshot()
{
    return detail::costs;
}

std::string
report(u64 total_ns)
{
    const auto &costs = detail::costs;

    auto row = [](std::string &out, const char *name, u64 ns,
                  u64 total, u64 calls) {
        char line[160];
        double ms = static_cast<double>(ns) / 1e6;
        double share =
            total ? 100.0 * static_cast<double>(ns) /
                        static_cast<double>(total)
                  : 0.0;
        if (calls) {
            std::snprintf(line, sizeof(line),
                          "  %-10s %10.2f ms  %5.1f%%  %12llu calls  "
                          "%7.1f ns/call\n",
                          name, ms, share,
                          static_cast<unsigned long long>(calls),
                          static_cast<double>(ns) /
                              static_cast<double>(calls));
        } else {
            std::snprintf(line, sizeof(line),
                          "  %-10s %10.2f ms  %5.1f%%\n", name, ms,
                          share);
        }
        out += line;
    };

    u64 tracked = 0;
    for (size_t i = 0; i < numPipelineStages; ++i)
        tracked += costs[i].ns;

    std::string out;
    out += "pp_prof: per-stage cost attribution "
           "(pipeline rows + other = total)\n";
    for (size_t i = 0; i < numPipelineStages; ++i) {
        row(out, stageName(static_cast<Stage>(i)), costs[i].ns,
            total_ns, costs[i].calls);
    }
    row(out, "other", total_ns > tracked ? total_ns - tracked : 0,
        total_ns, 0);
    row(out, "total", total_ns, total_ns, 0);

    bool any_nested = false;
    for (size_t i = numPipelineStages; i < numStages; ++i)
        any_nested |= costs[i].calls != 0;
    if (any_nested) {
        out += "components (nested: already included in a stage "
               "above)\n";
        for (size_t i = numPipelineStages; i < numStages; ++i) {
            if (costs[i].calls)
                row(out, stageName(static_cast<Stage>(i)),
                    costs[i].ns, total_ns, costs[i].calls);
        }
    }
    return out;
}

} // namespace prof
} // namespace polypath
