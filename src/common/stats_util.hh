/**
 * @file
 * Aggregation helpers for experiment reporting (the paper reports
 * harmonic-mean IPC across benchmarks and geometric-mean misprediction
 * rates).
 */

#ifndef POLYPATH_COMMON_STATS_UTIL_HH
#define POLYPATH_COMMON_STATS_UTIL_HH

#include <vector>

namespace polypath
{

/** Arithmetic mean; returns 0 for an empty input. */
double arithmeticMean(const std::vector<double> &values);

/** Harmonic mean; returns 0 for empty input or any non-positive value. */
double harmonicMean(const std::vector<double> &values);

/** Geometric mean; returns 0 for empty input or any non-positive value. */
double geometricMean(const std::vector<double> &values);

/** Relative change (b vs. a) in percent: 100 * (b - a) / a. */
double percentChange(double a, double b);

} // namespace polypath

#endif // POLYPATH_COMMON_STATS_UTIL_HH
