/**
 * @file
 * The PolyPath out-of-order core (Fig. 2) — the paper's contribution.
 *
 * A cycle-level, execution-driven model of an 8-way superscalar,
 * out-of-order execution, in-order commit processor with Selective Eager
 * Execution:
 *
 *   - multi-path fetch with exponential-priority bandwidth arbitration;
 *   - per-path RegMaps with checkpointing; unified recovery: a
 *     high-confidence branch takes a history position and a checkpoint
 *     exactly like a divergent one, so the monopath baseline is simply
 *     this core with an always-high-confidence estimator;
 *   - a central instruction window whose entries snoop the branch
 *     resolution and commit buses through their CTX tags;
 *   - a CTX-tagged store buffer with ancestor-only forwarding;
 *   - AXP-21164 functional-unit mix and latencies;
 *   - precise state: memory is written only at commit, registers are
 *     reclaimed only when provably dead, and every run self-verifies
 *     against the golden interpreter's trace and final state.
 *
 * Wrong paths are *really* executed: fetched from (possibly wild) PCs,
 * renamed, issued to functional units with whatever values dataflow
 * provides, and killed by the resolution bus — the defining property of
 * an execution-driven multipath simulator (§4.2).
 */

#ifndef POLYPATH_CORE_CORE_HH
#define POLYPATH_CORE_CORE_HH

#include <map>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "arch/arch_state.hh"
#include "arch/interpreter.hh"
#include "asmkit/program.hh"
#include "bpred/predictor.hh"
#include "core/config.hh"
#include "core/dyn_inst.hh"
#include "core/fu_pool.hh"
#include "core/inst_pool.hh"
#include "core/iwindow.hh"
#include "core/path_context.hh"
#include "core/stats.hh"
#include "core/trace.hh"
#include "ctx/clear_log.hh"
#include "ctx/hist_alloc.hh"
#include "isa/decoded_program.hh"
#include "memsys/cache.hh"
#include "memsys/memory.hh"
#include "memsys/store_queue.hh"
#include "rename/phys_regfile.hh"

namespace polypath
{

/** Per-static-branch profile (cfg.profileBranches). */
struct BranchProfile
{
    u64 execs = 0;          //!< committed executions
    u64 mispredicts = 0;
    u64 lowConfidence = 0;  //!< low-confidence estimates at commit
    u64 divergences = 0;    //!< committed divergent executions
};

/** The PolyPath / monopath timing core. */
class PolyPathCore
{
  public:
    /**
     * @param cfg machine configuration
     * @param program workload image (loaded into a private memory)
     * @param golden reference run of the same program: supplies the
     *        control-flow trace (oracle + verification)
     */
    PolyPathCore(const SimConfig &cfg, const Program &program,
                 const InterpResult &golden);
    ~PolyPathCore();

    /** Advance one cycle. */
    void tick();

    /** Has HALT committed? */
    bool halted() const { return isHalted; }

    /** Current cycle. */
    Cycle cycle() const { return currentCycle; }

    /** Statistics so far (derived counters synced on demand). */
    const SimStats &
    stats() const
    {
        // Mirror counters owned by other components. The cycle loop used
        // to copy these every tick; syncing at the (rare) read instead
        // is observationally identical and keeps the hot loop clean.
        simStats.cycles = currentCycle;
        simStats.dcacheHits = dcache.hits();
        simStats.dcacheMisses = dcache.misses();
        return simStats;
    }

    /** Committed architectural register state (via the retirement map). */
    ArchState architecturalState() const;

    /** The core's memory (committed state only). */
    const SparseMemory &memory() const { return mem; }

    // --- introspection for tests and examples ------------------------

    size_t windowOccupancy() const { return window.size(); }
    size_t numLivePaths() const { return leaves.size(); }
    unsigned freeHistPositions() const { return histAlloc.numFree(); }
    const SimConfig &config() const { return cfg; }
    Cycle lastCommit() const { return lastCommitCycle; }
    const DynInstPool &pool() const { return instPool; }

    /** Cycles without a commit before the core declares itself wedged
     *  (see also Machine's coarse total-cycle cap). */
    static constexpr Cycle deadlockThreshold = 100'000;

    /** Attach (or detach with nullptr) a pipeline-event trace sink. */
    void setTraceSink(TraceSink *sink) { traceSink = sink; }

    /** Per-PC branch profiles (empty unless cfg.profileBranches). */
    const std::unordered_map<Addr, BranchProfile> &
    branchProfiles() const
    {
        return profiles;
    }

  private:
    // --- pipeline phases (executed in reverse order each tick) --------
    void commitPhase();
    void writebackPhase();
    void issuePhase();
    void renamePhase();
    void fetchPhase();

    // --- fetch helpers -------------------------------------------------
    unsigned fetchFromContext(PathContext &ctx, unsigned quota);
    bool processCondBranchFetch(PathContext &ctx, const DynInstPtr &inst);
    bool processReturnFetch(PathContext &ctx, const DynInstPtr &inst);
    u64 fetchGhr(const PathContext &ctx) const;

    // --- rename helpers -------------------------------------------------
    void renameInst(const DynInstPtr &inst, PathContext &ctx);
    void publishStoreAddr(const DynInstPtr &inst);
    void publishStoreData(const DynInstPtr &inst);

    // --- execution helpers -----------------------------------------------
    void executeAtIssue(const DynInstPtr &inst);
    bool tryIssueLoad(const DynInstPtr &inst);
    void scheduleCompletion(const DynInstPtr &inst, unsigned latency);
    void enqueueReady(const DynInstPtr &inst);
    void addWaiter(const DynInstPtr &inst, unsigned slot, PhysReg src);
    void wakeDependents(PhysReg reg);

    // --- resolution / recovery ---------------------------------------------
    void resolveControl(const DynInstPtr &inst);
    void killWrongSide(unsigned pos, bool actual_taken);
    void killInst(const DynInstPtr &inst, bool in_window);
    void spawnRecoveryContext(const DynInstPtr &inst, bool tag_dir,
                              Addr target_pc, bool is_return);
    void accountDivergenceEnd(const DynInstPtr &inst);

    // --- commit helpers ------------------------------------------------
    void commitInst(const DynInstPtr &inst);
    void commitControl(const DynInstPtr &inst);
    void broadcastCommitPosition(unsigned pos);
    void trainPredictors(const DynInstPtr &inst);

    // --- context management ------------------------------------------------
    PathContextPtr makeContext(const CtxTag &tag, Addr fetch_pc, u64 ghr,
                               std::unique_ptr<ReturnAddressStack> ras,
                               TraceCursor cursor,
                               std::unique_ptr<RegMap> reg_map);
    PathContext &contextById(u32 id);
    void removeLeaf(u32 id);

    /** Absorb the full clear log into every in-flight tag and reset all
     *  watermarks to zero (bounds log growth on long runs). */
    void rebaseClearLog();

    u64 srcValue(PhysReg reg) const;

    /** Emit a trace record if a sink is attached. */
    void emitTrace(PipeEvent event, const DynInstPtr &inst,
                   std::string detail = {});

  public:
    /**
     * Deep structural invariant check (also run periodically when
     * config().selfCheckInterval is set):
     *  - physical-register conservation: free + held-by-pipeline +
     *    reachable-from-maps equals the file size;
     *  - history-position conservation: free + held-by-in-flight
     *    control instructions equals the tag width;
     *  - the window is in fetch order with no killed entries;
     *  - live leaf paths are pairwise unrelated (no leaf is another
     *    leaf's ancestor);
     *  - every store-queue entry belongs to an in-flight store.
     * Panics on violation.
     */
    void checkInvariants() const;

  private:

    // --- configuration and fixed structures -----------------------------
    SimConfig cfg;
    const InterpResult &golden;
    const BranchTrace &trace;

    SparseMemory mem;

    /**
     * Predecode table for the text segment, shared with the Program
     * when it carries one (assembler-built programs always do). Null
     * when predecode is disabled (cfg.predecode = false or the
     * PP_NO_PREDECODE environment variable).
     */
    std::shared_ptr<const DecodedProgram> decodedText;

    /**
     * Flat copies of the table's base/limit/data so the fetch loop's
     * common case is one subtract, one compare and one indexed load —
     * the decode-side analogue of the SparseMemory one-entry page
     * cache. With predecode disabled, textBytes is 0 and every fetch
     * takes the decodeInstr(mem.read32()) slow path.
     */
    const PredecodedInstr *textTable = nullptr;
    Addr textBase = 0;
    u64 textBytes = 0;

    PhysRegFile physFile;
    RegMap retireMap;
    HistAlloc histAlloc;

    /** Recycling arena for DynInsts. Declared before every structure
     *  that holds DynInstPtrs so it is destroyed after them. */
    DynInstPool instPool;

    /** Deferred commit-broadcast log (see clear_log.hh). */
    CommitClearLog clearLog;

    InstructionWindow window;
    StoreQueue storeQueue;
    FuPool fuPool;
    CacheModel dcache;

    std::unique_ptr<BranchPredictor> predictor;
    std::unique_ptr<ConfidenceEstimator> confidence;

    // --- dynamic state ------------------------------------------------------
    Cycle currentCycle = 0;
    InstSeq nextSeq = 1;
    bool isHalted = false;

    /** All live path-context objects, oldest first (a handful at most,
     *  so linear scans beat hashing). */
    std::vector<PathContextPtr> contexts;

    /** Contexts eligible to fetch (the leaves of the tree). Pointers
     *  into `contexts`; kept in insertion order. */
    std::vector<PathContext *> leaves;
    u32 nextCtxId = 1;
    u64 nextCtxSeq = 1;

    /** In-order front-end: fetched but not yet renamed instructions.
     *  Killed entries linger (lazy squash) and are popped at rename. */
    std::deque<DynInstPtr> frontEnd;
    /** Live (un-killed) entries in frontEnd: the capacity measure. */
    size_t frontEndLive = 0;
    size_t frontendCapacity;

    /** Per-FU-class ready instructions (oldest first, lazy deletion). */
    using ReadyEntry = std::pair<InstSeq, DynInstPtr>;
    using ReadyQueue =
        std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                            std::greater<ReadyEntry>>;
    std::array<ReadyQueue, static_cast<size_t>(ExecClass::NumClasses)>
        readyQueues;

    /** Loads blocked by disambiguation; retried every cycle. */
    std::vector<DynInstPtr> blockedLoads;

    /**
     * Wakeup lists: per physical register, an intrusive singly-linked
     * stack of (instruction, source-slot) waiters threaded through
     * DynInst::waitNext. Each link is a DynInst pointer with the waiting
     * slot number in bit 0 (slots are 8-byte aligned); 0 terminates.
     * Enqueuing bumps the instruction's refCount manually (the list owns
     * a reference); wakeDependents and the destructor drop it.
     */
    std::vector<uintptr_t> waiterHeads;

    /** Scratch for fetchPhase's priority sort (reused across cycles to
     *  avoid a per-cycle allocation). */
    std::vector<PathContext *> fetchCands;

    /** Completion ring buffer indexed by cycle modulo its size
     *  (bounds the largest schedulable latency, incl. cache misses). */
    static constexpr size_t completionRingSize = 256;
    std::array<std::vector<DynInstPtr>, completionRingSize> completionRing;

    /** Unresolved divergence points in flight (dual-path limiting). */
    int liveDivergences = 0;

    /** Committed global history (non-speculative-update mode). */
    u64 committedGhr = 0;

    /** Next trace record the commit stream must match. */
    u64 committedTraceIdx = 0;

    Cycle lastCommitCycle = 0;

    TraceSink *traceSink = nullptr;

    /** Per-PC branch profiles (cfg.profileBranches). */
    std::unordered_map<Addr, BranchProfile> profiles;

    /** mutable: stats() syncs derived counters on read. */
    mutable SimStats simStats;
};

} // namespace polypath

#endif // POLYPATH_CORE_CORE_HH
