/**
 * @file
 * The central instruction window / reorder buffer (§3.1, §3.2.3).
 *
 * Entries are kept in fetch order; the oldest entries commit in order
 * from the front. Every entry conceptually carries the CTX-tag snoop
 * state machine of Fig. 6: on a branch-resolution broadcast it kills
 * itself if it lies on the wrong side of the resolved branch, and on a
 * branch-commit broadcast it invalidates the vacated history position in
 * its tag. Those two bus operations are implemented as sweeps here.
 */

#ifndef POLYPATH_CORE_IWINDOW_HH
#define POLYPATH_CORE_IWINDOW_HH

#include <deque>
#include <functional>

#include "common/logging.hh"
#include "core/dyn_inst.hh"

namespace polypath
{

/** Fetch-ordered instruction window. */
class InstructionWindow
{
  public:
    explicit InstructionWindow(unsigned num_entries)
        : capacity(num_entries)
    {}

    bool full() const { return entries.size() >= capacity; }
    bool empty() const { return entries.empty(); }
    size_t size() const { return entries.size(); }
    unsigned maxEntries() const { return capacity; }

    /** Dispatch an instruction (must be in fetch order). */
    void
    insert(const DynInstPtr &inst)
    {
        panic_if(full(), "instruction window overflow");
        panic_if(!entries.empty() && entries.back()->seq >= inst->seq,
                 "window insertion out of fetch order");
        inst->inWindow = true;
        entries.push_back(inst);
    }

    /** Oldest instruction (commit candidate). */
    const DynInstPtr &
    head() const
    {
        panic_if(entries.empty(), "head() on empty window");
        return entries.front();
    }

    /** Remove the head after commit. */
    void
    popHead()
    {
        panic_if(entries.empty(), "popHead() on empty window");
        entries.front()->inWindow = false;
        entries.pop_front();
    }

    /**
     * Branch-resolution bus (§3.2.3 "resolution"): kill every entry on
     * the wrong side of history position @p pos given @p actual_taken.
     * @p on_kill runs per victim (release resources) before removal.
     */
    unsigned
    killWrongPath(unsigned pos, bool actual_taken,
                  const std::function<void(const DynInstPtr &)> &on_kill)
    {
        unsigned killed = 0;
        std::deque<DynInstPtr> kept;
        for (DynInstPtr &inst : entries) {
            if (inst->tag.onWrongSide(pos, actual_taken)) {
                on_kill(inst);
                inst->inWindow = false;
                ++killed;
            } else {
                kept.push_back(std::move(inst));
            }
        }
        entries.swap(kept);
        return killed;
    }

    /** Branch-commit bus (§3.2.3 "commit"): invalidate @p pos in every
     *  entry's tag. */
    void
    commitPosition(unsigned pos)
    {
        for (DynInstPtr &inst : entries)
            inst->tag.clearPosition(pos);
    }

    /** Iterate entries oldest-first (tests, occupancy sampling). */
    const std::deque<DynInstPtr> &contents() const { return entries; }

  private:
    unsigned capacity;
    std::deque<DynInstPtr> entries;
};

} // namespace polypath

#endif // POLYPATH_CORE_IWINDOW_HH
