/**
 * @file
 * The central instruction window / reorder buffer (§3.1, §3.2.3).
 *
 * Entries are kept in fetch order; the oldest entries commit in order
 * from the front. Every entry conceptually carries the CTX-tag snoop
 * state machine of Fig. 6: on a branch-resolution broadcast it kills
 * itself if it lies on the wrong side of the resolved branch, and on a
 * branch-commit broadcast it invalidates the vacated history position in
 * its tag.
 *
 * Both bus operations are implemented lazily:
 *
 *   - Resolution (killWrongPath) marks victims squashed in place instead
 *     of rebuilding the deque; squashed entries are skipped at commit,
 *     ignored by the issue logic through their killed flag, popped
 *     opportunistically when they reach the head, and compacted in bulk
 *     once they outnumber the live population.
 *   - Commit (the vacated-position broadcast) is not swept here at all:
 *     the core records it in a CommitClearLog and entries absorb it when
 *     next touched. The resolution test consults the log in O(1) to
 *     ignore stale tag bits (see clear_log.hh). The eager commitPosition
 *     sweep remains for standalone (test) use of the window.
 *
 * All observable semantics — which instructions die on which broadcast,
 * commit order, capacity, occupancy — are identical to the eager
 * implementation; only the bookkeeping cost changes.
 */

#ifndef POLYPATH_CORE_IWINDOW_HH
#define POLYPATH_CORE_IWINDOW_HH

#include <deque>
#include <functional>

#include "common/logging.hh"
#include "core/dyn_inst.hh"
#include "ctx/clear_log.hh"

namespace polypath
{

/** Fetch-ordered instruction window with lazy wrong-path squash. */
class InstructionWindow
{
  public:
    /**
     * @param num_entries architectural capacity (live entries)
     * @param clear_log deferred commit-broadcast log consulted by the
     *        resolution bus to ignore stale tag bits; nullptr for
     *        standalone use with eager commitPosition() sweeps
     */
    explicit InstructionWindow(unsigned num_entries,
                               const CommitClearLog *clear_log = nullptr)
        : capacity(num_entries), clearLog(clear_log)
    {}

    bool full() const { return liveCount >= capacity; }
    bool empty() const { return liveCount == 0; }
    size_t size() const { return liveCount; }
    unsigned maxEntries() const { return capacity; }

    /** Dispatch an instruction (must be in fetch order). */
    void
    insert(const DynInstPtr &inst)
    {
        panic_if(full(), "instruction window overflow");
        panic_if(!entries.empty() && entries.back()->seq >= inst->seq,
                 "window insertion out of fetch order");
        inst->inWindow = true;
        entries.push_back(inst);
        ++liveCount;
    }

    /** Oldest live instruction (commit candidate). */
    const DynInstPtr &
    head()
    {
        panic_if(empty(), "head() on empty window");
        purgeFront();
        return entries.front();
    }

    /** Remove the head after commit. */
    void
    popHead()
    {
        panic_if(empty(), "popHead() on empty window");
        purgeFront();
        entries.front()->inWindow = false;
        entries.pop_front();
        --liveCount;
    }

    /**
     * Branch-resolution bus (§3.2.3 "resolution"): kill every live entry
     * on the wrong side of history position @p pos given @p actual_taken.
     * @p on_kill runs per victim (release resources); victims stay in
     * the deque, squashed, until compacted or popped.
     */
    unsigned
    killWrongPath(unsigned pos, bool actual_taken,
                  const std::function<void(const DynInstPtr &)> &on_kill)
    {
        unsigned killed = 0;
        for (DynInstPtr &inst : entries) {
            if (!inst->inWindow)
                continue;       // already squashed, awaiting compaction
            // A set bit at `pos` is stale (and must be ignored) if the
            // position was vacated by a commit this entry has not yet
            // absorbed — it belongs to a younger branch now.
            if (clearLog &&
                clearLog->pendingSince(inst->clearsSeen, pos)) {
                continue;
            }
            if (inst->tag.onWrongSide(pos, actual_taken)) {
                on_kill(inst);
                inst->inWindow = false;
                --liveCount;
                ++killed;
            }
        }
        // Opportunistic compaction: only once squashed entries outnumber
        // live ones, so steady-state resolutions never rebuild the deque.
        if (entries.size() - liveCount > liveCount)
            std::erase_if(entries, [](const DynInstPtr &inst) {
                return !inst->inWindow;
            });
        return killed;
    }

    /** Branch-commit bus (§3.2.3 "commit"), eager form: invalidate
     *  @p pos in every live entry's tag. The core uses the deferred
     *  CommitClearLog path instead of calling this. */
    void
    commitPosition(unsigned pos)
    {
        for (DynInstPtr &inst : entries) {
            if (inst->inWindow)
                inst->tag.clearPosition(pos);
        }
    }

    /** Visit live entries oldest-first (self-checks, tests). */
    template <typename Fn>
    void
    forEachLive(Fn &&fn) const
    {
        for (const DynInstPtr &inst : entries) {
            if (inst->inWindow)
                fn(inst);
        }
    }

    /** Raw storage including not-yet-compacted squashed entries
     *  (tests; prefer forEachLive). */
    const std::deque<DynInstPtr> &contents() const { return entries; }

  private:
    /** Drop squashed entries that have reached the head. */
    void
    purgeFront()
    {
        while (!entries.empty() && !entries.front()->inWindow)
            entries.pop_front();
    }

    unsigned capacity;
    const CommitClearLog *clearLog;
    std::deque<DynInstPtr> entries;
    size_t liveCount = 0;
};

} // namespace polypath

#endif // POLYPATH_CORE_IWINDOW_HH
