/**
 * @file
 * Functional-unit pool: per-class issue-slot accounting.
 *
 * Units are fully pipelined (one issue per unit per cycle); latency is a
 * property of the instruction (isa/opcodes.cc) and completion is tracked
 * by the core's event list, so the pool only arbitrates issue slots.
 */

#ifndef POLYPATH_CORE_FU_POOL_HH
#define POLYPATH_CORE_FU_POOL_HH

#include <array>

#include "common/logging.hh"
#include "core/config.hh"
#include "isa/opcodes.hh"

namespace polypath
{

/** Issue-slot arbiter for the five FU classes. */
class FuPool
{
  public:
    explicit FuPool(const SimConfig &cfg)
    {
        counts[static_cast<size_t>(ExecClass::IntAlu0)] = cfg.numIntAlu0;
        counts[static_cast<size_t>(ExecClass::IntAlu1)] = cfg.numIntAlu1;
        counts[static_cast<size_t>(ExecClass::FpAdd)] = cfg.numFpAdd;
        counts[static_cast<size_t>(ExecClass::FpMul)] = cfg.numFpMul;
        counts[static_cast<size_t>(ExecClass::Mem)] = cfg.numMemPorts;
        used.fill(0);
    }

    /** Units of @p cls configured. */
    unsigned
    numUnits(ExecClass cls) const
    {
        return counts[static_cast<size_t>(cls)];
    }

    /** Is an issue slot of class @p cls free this cycle? */
    bool
    available(ExecClass cls) const
    {
        size_t i = static_cast<size_t>(cls);
        return used[i] < counts[i];
    }

    /** Consume one issue slot. */
    void
    take(ExecClass cls)
    {
        size_t i = static_cast<size_t>(cls);
        panic_if(used[i] >= counts[i], "FU class %zu over-issued", i);
        ++used[i];
    }

    /** Start a new cycle. */
    void newCycle() { used.fill(0); }

  private:
    std::array<unsigned, static_cast<size_t>(ExecClass::NumClasses)>
        counts{};
    std::array<unsigned, static_cast<size_t>(ExecClass::NumClasses)>
        used{};
};

} // namespace polypath

#endif // POLYPATH_CORE_FU_POOL_HH
