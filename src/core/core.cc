#include "core.hh"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_set>

#include "bpred/combining.hh"
#include "bpred/confidence.hh"
#include "bpred/gshare.hh"
#include "common/logging.hh"
#include "common/prof.hh"
#include "isa/semantics.hh"

namespace polypath
{

namespace
{

std::unique_ptr<BranchPredictor>
makePredictor(const SimConfig &cfg)
{
    switch (cfg.predictor) {
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(cfg.historyBits);
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(cfg.historyBits);
      case PredictorKind::Combining:
        return std::make_unique<CombiningPredictor>(cfg.historyBits);
      case PredictorKind::Oracle:
        return std::make_unique<OraclePredictor>();
      case PredictorKind::AlwaysTaken:
        return std::make_unique<TakenPredictor>();
    }
    panic("unknown predictor kind");
}

std::unique_ptr<ConfidenceEstimator>
makeConfidence(const SimConfig &cfg)
{
    switch (cfg.confidence) {
      case ConfidenceKind::AlwaysHigh:
        return std::make_unique<AlwaysHighConfidence>();
      case ConfidenceKind::Jrs:
        return std::make_unique<JrsConfidence>(
            cfg.historyBits, cfg.jrsCounterBits, cfg.jrsThreshold,
            cfg.enhancedConfidenceIndex);
      case ConfidenceKind::Oracle:
        return std::make_unique<OracleConfidence>();
      case ConfidenceKind::AlwaysLow:
        return std::make_unique<AlwaysLowConfidence>();
      case ConfidenceKind::AdaptiveJrs:
        return std::make_unique<AdaptiveJrsConfidence>(
            cfg.historyBits, cfg.jrsCounterBits, cfg.jrsThreshold,
            cfg.enhancedConfidenceIndex, cfg.adaptivePvnFloor,
            cfg.adaptiveWindowEvents);
    }
    panic("unknown confidence kind");
}

} // anonymous namespace

PolyPathCore::PolyPathCore(const SimConfig &config, const Program &program,
                           const InterpResult &golden_result)
    : cfg(config), golden(golden_result), trace(*golden_result.trace),
      physFile(cfg.effectivePhysRegs()), histAlloc(cfg.tagWidth),
      window(cfg.windowSize, &clearLog), fuPool(cfg), dcache(cfg.dcache),
      predictor(makePredictor(cfg)), confidence(makeConfidence(cfg))
{
    fatal_if(cfg.fetchWidth == 0 || cfg.renameWidth == 0 ||
                 cfg.commitWidth == 0 || cfg.windowSize == 0 ||
                 cfg.frontendStages == 0,
             "degenerate pipeline configuration");
    fatal_if(cfg.tagWidth == 0 || cfg.tagWidth > maxHistPositions,
             "CTX tag width %u unsupported", cfg.tagWidth);
    panic_if(!golden.trace, "golden run has no branch trace");

    program.loadInto(mem);

    if (cfg.predecode && std::getenv("PP_NO_PREDECODE") == nullptr) {
        decodedText = program.decodedTable();
        if (!decodedText) {
            // Hand-built Program without a predecode() call: build a
            // private table (cost: one decode per *static* instruction).
            decodedText = std::make_shared<const DecodedProgram>(
                program.codeBase, program.code.data(),
                program.code.size());
        }
        textTable = decodedText->data();
        textBase = decodedText->codeBase();
        textBytes = decodedText->textBytes();
    }

    frontendCapacity =
        static_cast<size_t>(cfg.frontendStages) * cfg.fetchWidth;
    waiterHeads.assign(cfg.effectivePhysRegs(), 0);
    simStats.livePathsHistogram.assign(cfg.effectiveMaxPaths() + 2, 0);

    TraceCursor root_cursor;
    root_cursor.onCorrectPath = true;
    root_cursor.index = 0;
    PathContextPtr root = makeContext(
        CtxTag{}, program.entry, 0,
        std::make_unique<ReturnAddressStack>(cfg.rasDepth), root_cursor,
        std::make_unique<RegMap>());
    root->fetchStart = 0;
}

PolyPathCore::~PolyPathCore()
{
    // Drain the intrusive waiter lists: killed instructions whose source
    // register is never written stay enqueued (holding a reference) for
    // the core's lifetime, and the pool insists on zero live
    // instructions at destruction.
    for (uintptr_t node : waiterHeads) {
        while (node) {
            auto *inst = reinterpret_cast<DynInst *>(node &
                                                     ~uintptr_t(1));
            unsigned slot = static_cast<unsigned>(node & 1);
            node = inst->waitNext[slot];
            inst->waitNext[slot] = 0;
            if (--inst->refCount == 0)
                detail::destroyDynInst(inst);
        }
    }
}

PathContext &
PolyPathCore::contextById(u32 id)
{
    // A handful of contexts at most: a linear scan beats hashing.
    for (const PathContextPtr &ctx : contexts) {
        if (ctx->id == id)
            return *ctx;
    }
    panic("context %u does not exist", id);
}

PathContextPtr
PolyPathCore::makeContext(const CtxTag &tag, Addr fetch_pc, u64 ghr,
                          std::unique_ptr<ReturnAddressStack> ras,
                          TraceCursor cursor,
                          std::unique_ptr<RegMap> reg_map)
{
    auto ctx = std::make_shared<PathContext>();
    ctx->id = nextCtxId++;
    ctx->tag = tag;
    ctx->fetchPc = fetch_pc;
    ctx->ghr = ghr;
    ctx->ras = std::move(ras);
    ctx->cursor = cursor;
    ctx->regMap = std::move(reg_map);
    ctx->createSeq = nextCtxSeq++;
    // Redirect latency: a freshly created path starts fetching next cycle.
    ctx->fetchStart = currentCycle + 1;
    contexts.push_back(ctx);
    leaves.push_back(ctx.get());
    return ctx;
}

void
PolyPathCore::removeLeaf(u32 id)
{
    auto it = std::find_if(leaves.begin(), leaves.end(),
                           [id](const PathContext *ctx) {
                               return ctx->id == id;
                           });
    if (it != leaves.end())
        leaves.erase(it);
}

u64
PolyPathCore::srcValue(PhysReg reg) const
{
    return reg == invalidPhysReg ? 0 : physFile.value(reg);
}

void
PolyPathCore::emitTrace(PipeEvent event, const DynInstPtr &inst,
                        std::string detail)
{
    if (!traceSink)
        return;
    if (detail.empty()) {
        // Absorb deferred commit broadcasts so the printed tag matches
        // the eager implementation bit for bit.
        clearLog.apply(inst->tag, inst->clearsSeen);
        detail = inst->instr.toString() + "  [" +
                 inst->tag.toString(std::min(cfg.tagWidth, 16u)) + "]";
    }
    traceSink->record({currentCycle, event, inst->seq, inst->pc,
                       std::move(detail)});
}

u64
PolyPathCore::fetchGhr(const PathContext &ctx) const
{
    return cfg.speculativeHistoryUpdate ? ctx.ghr : committedGhr;
}

// ====================================================================
// Cycle loop
// ====================================================================

void
PolyPathCore::tick()
{
    panic_if(isHalted, "tick() after HALT committed");

    fuPool.newCycle();
    {
        PP_PROF_SCOPE(Commit);
        commitPhase();
    }
    if (!isHalted) {
        {
            PP_PROF_SCOPE(Writeback);
            writebackPhase();
        }
        {
            PP_PROF_SCOPE(Issue);
            issuePhase();
        }
        {
            PP_PROF_SCOPE(Rename);
            renamePhase();
        }
        {
            PP_PROF_SCOPE(Fetch);
            fetchPhase();
        }
    }

    // End-of-cycle sampling. (Counters owned by other components —
    // cycles, D-cache hits/misses — are synced in stats() instead of
    // copied every tick.)
    simStats.windowOccupancySum += window.size();
    size_t live_paths = leaves.size();
    simStats.livePathsSum += live_paths;
    size_t bucket =
        std::min(live_paths, simStats.livePathsHistogram.size() - 1);
    ++simStats.livePathsHistogram[bucket];

    ++currentCycle;

    if (cfg.selfCheckInterval &&
        currentCycle % cfg.selfCheckInterval == 0) {
        checkInvariants();
    }

    panic_if(!isHalted && currentCycle - lastCommitCycle > deadlockThreshold,
             "core deadlock guard: no commit for %llu cycles (threshold "
             "%llu, last commit at cycle %llu; window %zu, front-end %zu, "
             "paths %zu, free hist %u)",
             static_cast<unsigned long long>(currentCycle -
                                             lastCommitCycle),
             static_cast<unsigned long long>(deadlockThreshold),
             static_cast<unsigned long long>(lastCommitCycle),
             window.size(), frontEndLive, leaves.size(),
             histAlloc.numFree());
}

// ====================================================================
// Fetch
// ====================================================================

void
PolyPathCore::fetchPhase()
{
    // Gather the paths that may fetch this cycle (member scratch:
    // reusing the buffer avoids a per-cycle allocation).
    std::vector<PathContext *> &cands = fetchCands;
    cands.clear();
    cands.reserve(leaves.size());
    for (PathContext *ctx : leaves) {
        if (ctx->fetchStopped || ctx->fetchStart > currentCycle)
            continue;
        cands.push_back(ctx);
    }
    if (cands.empty())
        return;

    // Priority: distance from the oldest uncommitted branch (tree depth),
    // ties broken by path age (§4.2 fetch assumption). The
    // PredictedFirst policy (§3.2.7's unexplored dimension) ranks paths
    // that disagreed with the predictor below those that followed it.
    bool predicted_first = cfg.fetchPolicy == FetchPolicy::PredictedFirst;
    std::sort(cands.begin(), cands.end(),
              [predicted_first](const PathContext *a,
                                const PathContext *b) {
                  if (predicted_first &&
                      a->nonPredictedEdges != b->nonPredictedEdges) {
                      return a->nonPredictedEdges < b->nonPredictedEdges;
                  }
                  unsigned da = a->depth(), db = b->depth();
                  if (da != db)
                      return da < db;
                  return a->createSeq < b->createSeq;
              });

    unsigned remaining = cfg.fetchWidth;
    for (size_t i = 0; i < cands.size() && remaining > 0; ++i) {
        bool last = (i + 1 == cands.size());
        unsigned quota = remaining;
        switch (cfg.fetchPolicy) {
          case FetchPolicy::ExponentialPriority:
          case FetchPolicy::PredictedFirst:
            // Bandwidth halves with each step down the priority order
            // ("decreases exponentially with the distance of a path from
            // the oldest branch").
            quota = last ? remaining : std::max(1u, (remaining + 1) / 2);
            break;
          case FetchPolicy::RoundRobin:
            quota = (remaining + (cands.size() - i) - 1) /
                    (cands.size() - i);
            break;
          case FetchPolicy::OldestFirst:
            quota = remaining;
            break;
        }
        unsigned used = fetchFromContext(*cands[i], quota);
        remaining -= std::min(used, remaining);
    }
    simStats.fetchCycleSlotsUsed += cfg.fetchWidth - remaining;
}

unsigned
PolyPathCore::fetchFromContext(PathContext &ctx, unsigned quota)
{
    unsigned used = 0;
    while (used < quota && !ctx.fetchStopped) {
        if (frontEndLive >= frontendCapacity) {
            ++simStats.fetchStallFrontendFull;
            break;
        }

        // Predecoded text fast path; PCs outside the text segment (or
        // misaligned — wrong-path returns can jump to garbage register
        // values) fall back to decoding whatever memory holds, which
        // preserves the original garbage/INVALID semantics exactly.
        Instr instr;
        const OpInfo *info_ptr;
        if (u64 text_off = ctx.fetchPc - textBase;
            text_off < textBytes && (text_off & 3u) == 0) {
            const PredecodedInstr &slot = textTable[text_off >> 2];
            instr = slot.instr;
            info_ptr = slot.info;
        } else {
            instr = decodeInstr(mem.read32(ctx.fetchPc));
            info_ptr = &instr.info();
        }
        const OpInfo &info = *info_ptr;

        // Branches and returns need a CTX history position; stall the
        // path at the branch if none is free (the checkpoint limit of a
        // conventional machine, §3.1).
        if ((info.isCondBranch || info.isReturn) &&
            !histAlloc.available()) {
            ++simStats.fetchStallNoCtx;
            break;
        }

        DynInstPtr inst = instPool.acquire();
        inst->seq = nextSeq++;
        inst->pc = ctx.fetchPc;
        inst->instr = instr;
        inst->tag = ctx.tag;
        inst->ctxId = ctx.id;
        inst->ctx = &ctx;
        inst->clearsSeen = clearLog.watermark();
        inst->fetchCycle = currentCycle;

        bool diverged = false;
        if (info.isCondBranch) {
            diverged = processCondBranchFetch(ctx, inst);
        } else if (info.isReturn) {
            processReturnFetch(ctx, inst);
        } else if (info.isUncondBranch) {
            if (info.isCall)
                ctx.ras->push(inst->pc + 4);
            ctx.fetchPc = instr.targetFrom(inst->pc);
        } else if (info.isHalt) {
            ctx.fetchStopped = true;
            ctx.fetchPc += 4;
        } else {
            ctx.fetchPc += 4;
        }

        frontEnd.push_back(inst);
        ++frontEndLive;
        ++simStats.fetchedInstrs;
        ++used;
        emitTrace(PipeEvent::Fetch, inst);

        if (diverged)
            break;      // this leaf was consumed by the divergence
    }
    return used;
}

bool
PolyPathCore::processCondBranchFetch(PathContext &ctx,
                                     const DynInstPtr &inst)
{
    PredictionQuery query{inst->pc, fetchGhr(ctx), &trace, ctx.cursor};
    bool pred = predictor->predict(query);
    bool high_conf = confidence->estimate(query, pred);

    auto bs = std::make_unique<BranchState>();
    bs->ghrAtPredict = query.ghr;
    bs->predTaken = pred;
    bs->lowConfidence = !high_conf;
    bs->onCorrectPath = ctx.cursor.onCorrectPath;
    bs->traceIndex = ctx.cursor.index;
    bs->rasCheckpoint =
        std::make_unique<ReturnAddressStack>(*ctx.ras);

    // Ground truth (oracle components + self-check).
    bool known = false;
    bool actual = false;
    if (ctx.cursor.onCorrectPath) {
        panic_if(ctx.cursor.index >= trace.size(),
                 "correct path fetched a branch beyond the trace "
                 "(pc %#llx)",
                 static_cast<unsigned long long>(inst->pc));
        const BranchRecord &rec = trace[ctx.cursor.index];
        panic_if(rec.isReturn || rec.pc != inst->pc,
                 "correct-path control-flow mismatch at pc %#llx "
                 "(trace idx %llu: pc %#llx, ret=%d)",
                 static_cast<unsigned long long>(inst->pc),
                 static_cast<unsigned long long>(ctx.cursor.index),
                 static_cast<unsigned long long>(rec.pc), rec.isReturn);
        known = true;
        actual = rec.taken;
    }

    Addr taken_target = inst->instr.targetFrom(inst->pc);
    Addr nt_target = inst->pc + 4;

    bool want_diverge =
        !high_conf && cfg.maxDivergences != 0 &&
        (cfg.maxDivergences < 0 ||
         liveDivergences < cfg.maxDivergences) &&
        (leaves.size() + 1 <= cfg.effectiveMaxPaths());

    u8 pos = histAlloc.alloc();
    inst->histPos = pos;

    if (want_diverge) {
        bs->divergent = true;
        ++liveDivergences;
        ++simStats.divergences;
        for (bool dir : {true, false}) {
            TraceCursor cursor;
            if (known && dir == actual) {
                cursor.onCorrectPath = true;
                cursor.index = ctx.cursor.index + 1;
            }
            u64 child_ghr = (ctx.ghr << 1) | (dir ? 1 : 0);
            PathContextPtr child = makeContext(
                ctx.tag.child(pos, dir), dir ? taken_target : nt_target,
                child_ghr,
                std::make_unique<ReturnAddressStack>(*ctx.ras), cursor,
                nullptr);
            child->nonPredictedEdges =
                ctx.nonPredictedEdges + (dir != pred ? 1 : 0);
            if (dir)
                bs->childTakenCtx = child->id;
            else
                bs->childNtCtx = child->id;
        }
        // The parent leaf is consumed; the context object stays parked
        // until the divergent branch renames and hands over its RegMap.
        removeLeaf(ctx.id);
        ctx.fetchStopped = true;
        inst->branch = std::move(bs);
        emitTrace(PipeEvent::Diverge, inst,
                  "pos " + std::to_string(pos) + " -> ctx " +
                      std::to_string(inst->branch->childTakenCtx) + "/" +
                      std::to_string(inst->branch->childNtCtx));
        return true;
    }

    if (!high_conf)
        ++simStats.divergencesSuppressed;

    // Predicted (monopath-style) branch: the leaf continues with an
    // extended tag along the predicted direction.
    ctx.tag = ctx.tag.child(pos, pred);
    ctx.ghr = (ctx.ghr << 1) | (pred ? 1 : 0);
    if (ctx.cursor.onCorrectPath) {
        if (known && pred == actual)
            ctx.cursor.index += 1;
        else
            ctx.cursor.onCorrectPath = false;
    }
    ctx.fetchPc = pred ? taken_target : nt_target;
    inst->branch = std::move(bs);
    return false;
}

bool
PolyPathCore::processReturnFetch(PathContext &ctx, const DynInstPtr &inst)
{
    auto bs = std::make_unique<BranchState>();
    bs->ghrAtPredict = fetchGhr(ctx);
    bs->predTaken = true;
    bs->predTarget = ctx.ras->pop();
    bs->rasCheckpoint =
        std::make_unique<ReturnAddressStack>(*ctx.ras);   // post-pop
    bs->onCorrectPath = ctx.cursor.onCorrectPath;
    bs->traceIndex = ctx.cursor.index;

    u8 pos = histAlloc.alloc();
    inst->histPos = pos;

    if (ctx.cursor.onCorrectPath) {
        panic_if(ctx.cursor.index >= trace.size(),
                 "correct path fetched a return beyond the trace "
                 "(pc %#llx)",
                 static_cast<unsigned long long>(inst->pc));
        const BranchRecord &rec = trace[ctx.cursor.index];
        panic_if(!rec.isReturn || rec.pc != inst->pc,
                 "correct-path return mismatch at pc %#llx",
                 static_cast<unsigned long long>(inst->pc));
        if (bs->predTarget == rec.target)
            ctx.cursor.index += 1;
        else
            ctx.cursor.onCorrectPath = false;
    }

    ctx.tag = ctx.tag.child(pos, true);
    ctx.fetchPc = bs->predTarget;
    inst->branch = std::move(bs);
    return false;
}

// ====================================================================
// Rename / dispatch
// ====================================================================

void
PolyPathCore::renamePhase()
{
    unsigned count = 0;
    while (count < cfg.renameWidth && !frontEnd.empty()) {
        // Lazily squashed entries drain here without consuming rename
        // slots (the eager implementation removed them at the kill).
        if (frontEnd.front()->killed) {
            frontEnd.pop_front();
            continue;
        }
        DynInstPtr inst = frontEnd.front();

        // Front-end latency: an instruction fetched in cycle F (stage 1)
        // reaches rename (stage frontendStages) in cycle
        // F + frontendStages - 1.
        if (currentCycle < inst->fetchCycle + cfg.frontendStages - 1)
            break;
        if (window.full())
            break;
        if (inst->instr.dst() != noReg && !physFile.hasFree())
            break;

        PathContext &ctx = *inst->ctx;
        panic_if(!ctx.regMap, "renaming with no path RegMap (ctx %u)",
                 ctx.id);

        frontEnd.pop_front();
        --frontEndLive;
        renameInst(inst, ctx);
        window.insert(inst);
        ++count;
    }
}

void
PolyPathCore::renameInst(const DynInstPtr &inst, PathContext &ctx)
{
    const Instr &instr = inst->instr;

    // Bring the tag up to date before anything snapshots it (the store
    // queue copies it; issue and resolution read it afterwards).
    clearLog.apply(inst->tag, inst->clearsSeen);

    inst->physSrc1 = ctx.regMap->lookup(instr.src1());
    inst->physSrc2 = ctx.regMap->lookup(instr.src2());
    inst->logDst = instr.dst();
    if (inst->logDst != noReg) {
        inst->physDst = physFile.alloc();
        inst->oldPhysDst = ctx.regMap->rename(inst->logDst,
                                              inst->physDst);
    }

    inst->waitingSrcs = 0;
    addWaiter(inst, 0, inst->physSrc1);
    addWaiter(inst, 1, inst->physSrc2);
    inst->renamed = true;

    if (instr.isStore()) {
        storeQueue.insert(inst->seq, inst->tag,
                          static_cast<u8>(instr.accessSize()));
        // Perfect-disambiguation model: publish address/data as soon as
        // dataflow provides them.
        if (physFile.ready(inst->physSrc1))
            publishStoreAddr(inst);
        if (physFile.ready(inst->physSrc2))
            publishStoreData(inst);
    }

    if (inst->branch) {
        BranchState &bs = *inst->branch;
        if (bs.divergent) {
            // Hand the parent's RegMap to the two successor paths: one
            // copy each, the PolyPath reading of the two-RegMap budget
            // (§3.2.5).
            PathContext &taken_child = contextById(bs.childTakenCtx);
            PathContext &nt_child = contextById(bs.childNtCtx);
            taken_child.regMap = std::make_unique<RegMap>(*ctx.regMap);
            nt_child.regMap = std::move(ctx.regMap);
            // The parked parent context is no longer needed. (Safe even
            // though `ctx` aliases it: this is the last use.)
            u32 parent_id = inst->ctxId;
            std::erase_if(contexts, [parent_id](const PathContextPtr &c) {
                return c->id == parent_id;
            });
        } else {
            bs.checkpoint = std::make_unique<RegMap>(*ctx.regMap);
        }
    }

    emitTrace(PipeEvent::Rename, inst);
    if (inst->waitingSrcs == 0)
        enqueueReady(inst);
}

void
PolyPathCore::publishStoreAddr(const DynInstPtr &inst)
{
    Addr ea = effectiveAddr(inst->instr, srcValue(inst->physSrc1));
    inst->effAddr = ea;
    storeQueue.setAddress(inst->seq, ea);
}

void
PolyPathCore::publishStoreData(const DynInstPtr &inst)
{
    storeQueue.setData(inst->seq, srcValue(inst->physSrc2));
}

void
PolyPathCore::enqueueReady(const DynInstPtr &inst)
{
    size_t cls = static_cast<size_t>(inst->instr.info().execClass);
    readyQueues[cls].push({inst->seq, inst});
}

// ====================================================================
// Issue / execute
// ====================================================================

void
PolyPathCore::issuePhase()
{
    // Blocked loads retry every cycle (store addresses/data may have
    // been published since).
    if (!blockedLoads.empty()) {
        for (DynInstPtr &load : blockedLoads) {
            if (!load->killed && !load->issued)
                enqueueReady(load);
        }
        blockedLoads.clear();
    }

    for (size_t cls = 0;
         cls < static_cast<size_t>(ExecClass::NumClasses); ++cls) {
        ReadyQueue &queue = readyQueues[cls];
        ExecClass exec_cls = static_cast<ExecClass>(cls);
        while (fuPool.available(exec_cls) && !queue.empty()) {
            DynInstPtr inst = queue.top().second;
            queue.pop();
            if (inst->killed || inst->issued)
                continue;
            if (inst->instr.isLoad()) {
                if (!tryIssueLoad(inst)) {
                    blockedLoads.push_back(inst);
                    continue;
                }
            }
            fuPool.take(exec_cls);
            inst->issued = true;
            executeAtIssue(inst);
            scheduleCompletion(inst, inst->instr.info().latency +
                                         inst->extraLatency);
            ++simStats.fuIssued[cls];
            emitTrace(PipeEvent::Issue, inst);
        }
    }
}

bool
PolyPathCore::tryIssueLoad(const DynInstPtr &inst)
{
    Addr ea = effectiveAddr(inst->instr, srcValue(inst->physSrc1));
    inst->effAddr = ea;
    // The disambiguation query compares this tag against store tags;
    // absorb deferred commit broadcasts first.
    clearLog.apply(inst->tag, inst->clearsSeen);
    LoadQueryResult query = storeQueue.queryLoad(
        inst->seq, inst->tag, ea, inst->instr.accessSize(), mem);
    if (query.status == LoadQueryStatus::MustWait) {
        ++simStats.loadBlockedEvents;
        return false;
    }
    inst->result = query.value;
    inst->hasResult = true;
    if (query.forwarded) {
        // Forwarded entirely from the store queue: no cache access.
        ++simStats.loadsForwarded;
    } else {
        inst->extraLatency =
            static_cast<u8>(std::min(dcache.access(ea), 250u));
    }
    return true;
}

void
PolyPathCore::executeAtIssue(const DynInstPtr &inst)
{
    const Instr &instr = inst->instr;
    const OpInfo &info = instr.info();
    u64 a = srcValue(inst->physSrc1);
    u64 b = srcValue(inst->physSrc2);

    if (info.isCondBranch) {
        BranchState &bs = *inst->branch;
        bs.actualTaken = evalCondBranch(instr, a);
        bs.actualTarget = bs.actualTaken ? instr.targetFrom(inst->pc)
                                         : inst->pc + 4;
    } else if (info.isReturn) {
        inst->branch->actualTarget = a;
    } else if (info.isLoad) {
        // Result resolved in tryIssueLoad().
    } else if (info.isStore) {
        // Published through the store queue; nothing to compute here.
        publishStoreAddr(inst);
        publishStoreData(inst);
        // Write-allocate: the store's line becomes resident (timing is
        // hidden by the store buffer, so no latency contribution).
        dcache.access(inst->effAddr);
    } else if (info.isHalt || info.isInvalid ||
               instr.op == Opcode::NOP || instr.op == Opcode::BR) {
        // No result.
    } else {
        inst->result = computeResult(instr, a, b, inst->pc);
        inst->hasResult = true;
    }
}

void
PolyPathCore::scheduleCompletion(const DynInstPtr &inst, unsigned latency)
{
    panic_if(latency == 0 || latency >= completionRingSize,
             "latency %u out of range", latency);
    completionRing[(currentCycle + latency) % completionRingSize]
        .push_back(inst);
}

// ====================================================================
// Writeback / resolution
// ====================================================================

void
PolyPathCore::writebackPhase()
{
    auto &bucket = completionRing[currentCycle % completionRingSize];
    // In-place iteration is safe: scheduleCompletion requires latency
    // >= 1, so nothing lands in the current bucket mid-walk; resolution
    // may kill instructions in *other* buckets, which the killed flag
    // handles lazily. Clearing (not swapping) keeps the bucket's
    // capacity for its next lap around the ring.
    for (const DynInstPtr &inst : bucket) {
        if (inst->killed)
            continue;
        inst->completed = true;
        emitTrace(PipeEvent::Writeback, inst);
        if (inst->physDst != invalidPhysReg) {
            physFile.setValue(inst->physDst, inst->result);
            wakeDependents(inst->physDst);
        }
        if (inst->isCondBranch() || inst->isReturn())
            resolveControl(inst);
    }
    bucket.clear();
}

void
PolyPathCore::addWaiter(const DynInstPtr &inst, unsigned slot,
                        PhysReg src)
{
    if (src == invalidPhysReg || physFile.ready(src))
        return;
    ++inst->waitingSrcs;
    DynInst *raw = inst.get();
    ++raw->refCount;    // the waiter list owns a reference
    raw->waitNext[slot] = waiterHeads[src];
    waiterHeads[src] = reinterpret_cast<uintptr_t>(raw) | slot;
}

void
PolyPathCore::wakeDependents(PhysReg reg)
{
    // Walk the intrusive (inst, slot) stack. Wake order is the reverse
    // of insertion order, which is observationally invisible: woken
    // instructions go through a ready queue ordered by sequence number,
    // and store address/data publication is idempotent.
    uintptr_t node = waiterHeads[reg];
    waiterHeads[reg] = 0;
    while (node) {
        auto *raw = reinterpret_cast<DynInst *>(node & ~uintptr_t(1));
        unsigned slot = static_cast<unsigned>(node & 1);
        node = raw->waitNext[slot];
        raw->waitNext[slot] = 0;
        DynInstPtr inst(raw);       // keep alive past the list's unref
        --raw->refCount;            // drop the list's reference
        if (raw->killed)
            continue;
        if (raw->instr.isStore()) {
            if (raw->physSrc1 == reg)
                publishStoreAddr(inst);
            if (raw->physSrc2 == reg)
                publishStoreData(inst);
        }
        panic_if(raw->waitingSrcs == 0, "spurious wakeup");
        if (--raw->waitingSrcs == 0)
            enqueueReady(inst);
    }
}

void
PolyPathCore::resolveControl(const DynInstPtr &inst)
{
    BranchState &bs = *inst->branch;
    panic_if(bs.resolved, "double resolution");
    bs.resolved = true;

    if (inst->isCondBranch()) {
        bool actual = bs.actualTaken;
        if (bs.divergent) {
            accountDivergenceEnd(inst);
            killWrongSide(inst->histPos, actual);
        } else if (actual != bs.predTaken) {
            killWrongSide(inst->histPos, actual);
            spawnRecoveryContext(inst, actual, bs.actualTarget, false);
            ++simStats.recoveries;
            if (bs.onCorrectPath)
                ++simStats.recoveriesCorrectPath;
        } else {
            // Correct prediction: the checkpoint is dead (§3.1).
            bs.checkpoint.reset();
            bs.rasCheckpoint.reset();
        }
        if (cfg.trainAtResolution)
            trainPredictors(inst);
    } else {
        // Return: "taken" side was the RAS-predicted target.
        if (bs.actualTarget != bs.predTarget) {
            killWrongSide(inst->histPos, false);
            spawnRecoveryContext(inst, false, bs.actualTarget, true);
            ++simStats.retRecoveries;
        } else {
            bs.checkpoint.reset();
            bs.rasCheckpoint.reset();
        }
    }
}

void
PolyPathCore::accountDivergenceEnd(const DynInstPtr &inst)
{
    BranchState &bs = *inst->branch;
    if (!bs.divergenceAccounted) {
        bs.divergenceAccounted = true;
        --liveDivergences;
        panic_if(liveDivergences < 0, "divergence accounting underflow");
    }
}

void
PolyPathCore::killWrongSide(unsigned pos, bool actual_taken)
{
    // Instruction window sweep (the Fig. 6 snoop state machines).
    window.killWrongPath(pos, actual_taken, [this](const DynInstPtr &i) {
        killInst(i, true);
    });

    // In-order front-end sweep: victims are marked in place and drain
    // at rename; only the live count changes now.
    for (DynInstPtr &inst : frontEnd) {
        if (inst->killed)
            continue;
        if (clearLog.pendingSince(inst->clearsSeen, pos))
            continue;   // stale bit: the position was recycled
        if (inst->tag.onWrongSide(pos, actual_taken)) {
            killInst(inst, false);
            --frontEndLive;
        }
    }

    // Path contexts on the wrong subtree die with their instructions.
    // (Context tags are kept eagerly cleared, so no staleness check.)
    for (const PathContextPtr &ctx : contexts) {
        if (ctx->tag.onWrongSide(pos, actual_taken)) {
            ctx->live = false;
            removeLeaf(ctx->id);
        }
    }
    std::erase_if(contexts, [](const PathContextPtr &ctx) {
        return !ctx->live;
    });
}

void
PolyPathCore::killInst(const DynInstPtr &inst, bool in_window)
{
    panic_if(inst->killed, "double kill");
    inst->killed = true;
    if (inst->renamed) {
        if (inst->physDst != invalidPhysReg)
            physFile.release(inst->physDst);
        if (inst->instr.isStore())
            storeQueue.kill(inst->seq);
    }
    if (inst->holdsHistPos()) {
        // A killed branch's position has carriers only in its own (also
        // killed) subtree, so it can be recycled immediately.
        if (inst->branch && inst->branch->divergent)
            accountDivergenceEnd(inst);
        histAlloc.release(inst->histPos);
        inst->histPos = noHistPos;
    }
    if (in_window)
        ++simStats.killedInstrs;
    else
        ++simStats.killedFrontend;
    emitTrace(PipeEvent::Kill, inst);
}

void
PolyPathCore::spawnRecoveryContext(const DynInstPtr &inst, bool tag_dir,
                                   Addr target_pc, bool is_return)
{
    BranchState &bs = *inst->branch;
    panic_if(!bs.checkpoint || !bs.rasCheckpoint,
             "recovery without checkpoints (pc %#llx)",
             static_cast<unsigned long long>(inst->pc));

    TraceCursor cursor;
    if (bs.onCorrectPath) {
        // A mispredicted correct-path control transfer means the
        // recovery path *is* the correct continuation.
        cursor.onCorrectPath = true;
        cursor.index = bs.traceIndex + 1;
    }

    u64 ghr = is_return
                  ? bs.ghrAtPredict
                  : ((bs.ghrAtPredict << 1) | (bs.actualTaken ? 1 : 0));

    // The new context's tag derives from this instruction's tag, which
    // is lazily maintained: absorb deferred commit broadcasts so no
    // stale bit from a recycled position leaks into the child.
    clearLog.apply(inst->tag, inst->clearsSeen);
    PathContextPtr ctx = makeContext(
        inst->tag.child(inst->histPos, tag_dir), target_pc, ghr,
        std::move(bs.rasCheckpoint), cursor, std::move(bs.checkpoint));
    // A recovery path is the architecturally resolved direction; it
    // carries no non-predicted penalty of its own.
    emitTrace(PipeEvent::Recover, inst,
              "restart ctx " + std::to_string(ctx->id) + " at pc " +
                  std::to_string(target_pc));
}

// ====================================================================
// Commit
// ====================================================================

void
PolyPathCore::commitPhase()
{
    unsigned count = 0;
    while (count < cfg.commitWidth && !window.empty() && !isHalted) {
        const DynInstPtr &inst = window.head();
        if (!inst->completed)
            break;
        commitInst(inst);
        window.popHead();
        ++count;
        lastCommitCycle = currentCycle;
    }
}

void
PolyPathCore::commitInst(const DynInstPtr &inst)
{
    panic_if(inst->killed, "committing a killed instruction");
    const OpInfo &info = inst->instr.info();
    fatal_if(info.isInvalid,
             "INVALID instruction committed at pc %#llx — the workload "
             "executed uninitialised memory",
             static_cast<unsigned long long>(inst->pc));

    ++simStats.committedInstrs;
    emitTrace(PipeEvent::Commit, inst);

    if (inst->logDst != noReg) {
        PhysReg prev = retireMap.rename(inst->logDst, inst->physDst);
        panic_if(prev != inst->oldPhysDst,
                 "retirement map out of sync at pc %#llx "
                 "(logical r%u: retire %u vs rename-old %u)",
                 static_cast<unsigned long long>(inst->pc), inst->logDst,
                 prev, inst->oldPhysDst);
        physFile.release(prev);
    }

    if (inst->instr.isStore()) {
        // Fault injection (cfg.bugCorruptStoreAbove): capture the
        // entry before commit drops it, then overwrite the committed
        // bytes with corrupted data. See the knob's SimConfig comment.
        Addr bug_addr = 0;
        u64 bug_data = 0;
        unsigned bug_size = 0;
        if (cfg.bugCorruptStoreAbove) {
            if (const StoreQueueEntry *e = storeQueue.find(inst->seq)) {
                if (e->addr >= cfg.bugCorruptStoreAbove) {
                    bug_addr = e->addr;
                    bug_data = e->data ^ 1;
                    bug_size = e->size;
                }
            }
        }
        storeQueue.commit(inst->seq, mem);
        if (bug_size)
            mem.write(bug_addr, bug_data, bug_size);
    }

    if (inst->isCondBranch() || inst->isReturn())
        commitControl(inst);

    if (info.isHalt)
        isHalted = true;
}

void
PolyPathCore::commitControl(const DynInstPtr &inst)
{
    BranchState &bs = *inst->branch;
    panic_if(!bs.resolved, "committing unresolved control instruction");

    if (cfg.verify) {
        panic_if(committedTraceIdx >= trace.size(),
                 "committed control transfer beyond the golden trace "
                 "(pc %#llx)",
                 static_cast<unsigned long long>(inst->pc));
        const BranchRecord &rec = trace[committedTraceIdx];
        bool is_ret = inst->isReturn();
        panic_if(rec.isReturn != is_ret || rec.pc != inst->pc,
                 "commit stream diverged from golden trace at idx %llu "
                 "(pc %#llx vs %#llx)",
                 static_cast<unsigned long long>(committedTraceIdx),
                 static_cast<unsigned long long>(inst->pc),
                 static_cast<unsigned long long>(rec.pc));
        if (is_ret) {
            panic_if(rec.target != bs.actualTarget,
                     "committed return target mismatch at pc %#llx",
                     static_cast<unsigned long long>(inst->pc));
        } else {
            panic_if(rec.taken != bs.actualTaken,
                     "committed branch outcome mismatch at pc %#llx",
                     static_cast<unsigned long long>(inst->pc));
        }
    }
    ++committedTraceIdx;

    if (inst->isCondBranch()) {
        ++simStats.committedBranches;
        bool correct = (bs.actualTaken == bs.predTaken);
        if (!correct)
            ++simStats.mispredictedBranches;
        if (bs.lowConfidence) {
            ++simStats.lowConfidenceBranches;
            if (!correct)
                ++simStats.lowConfidenceMispredicts;
        } else if (!correct) {
            ++simStats.highConfidenceMispredicts;
        }
        if (!cfg.trainAtResolution)
            trainPredictors(inst);
        committedGhr = (committedGhr << 1) | (bs.actualTaken ? 1 : 0);
        if (cfg.profileBranches) {
            BranchProfile &prof = profiles[inst->pc];
            ++prof.execs;
            prof.mispredicts += !correct;
            prof.lowConfidence += bs.lowConfidence;
            prof.divergences += bs.divergent;
        }
    } else {
        ++simStats.committedReturns;
        if (bs.actualTarget != bs.predTarget)
            ++simStats.mispredictedReturns;
    }

    broadcastCommitPosition(inst->histPos);
    inst->histPos = noHistPos;
}

void
PolyPathCore::broadcastCommitPosition(unsigned pos)
{
    // §3.2.2: the committing branch's history position is dead state in
    // every live tag. Window and front-end entries absorb the broadcast
    // lazily through the clear log; the store queue and the handful of
    // path contexts are cleared eagerly (their tags are compared against
    // by other agents, so they must always be current).
    clearLog.record(static_cast<u8>(pos));
    storeQueue.commitPosition(pos);
    for (const PathContextPtr &ctx : contexts)
        ctx->tag.clearPosition(pos);
    histAlloc.release(static_cast<u8>(pos));

    // Bound log growth on very long runs.
    static constexpr u32 rebaseThreshold = 1u << 20;
    if (clearLog.watermark() >= rebaseThreshold)
        rebaseClearLog();
}

void
PolyPathCore::rebaseClearLog()
{
    for (const DynInstPtr &inst : window.contents()) {
        if (inst->inWindow)
            clearLog.apply(inst->tag, inst->clearsSeen);
        else
            inst->clearsSeen = 0;   // tag never read again
    }
    for (const DynInstPtr &inst : frontEnd) {
        if (!inst->killed)
            clearLog.apply(inst->tag, inst->clearsSeen);
        else
            inst->clearsSeen = 0;
    }
    clearLog.rebase();
}

void
PolyPathCore::trainPredictors(const DynInstPtr &inst)
{
    const BranchState &bs = *inst->branch;
    predictor->update(inst->pc, bs.ghrAtPredict, bs.actualTaken);
    confidence->update(inst->pc, bs.ghrAtPredict, bs.predTaken,
                       bs.actualTaken == bs.predTaken);
}

// ====================================================================
// Structural self-check
// ====================================================================

void
PolyPathCore::checkInvariants() const
{
    // --- gather the live in-flight instruction population --------------
    // (Lazily squashed entries linger in both structures; they have
    // already released their resources and are excluded.)
    std::vector<DynInstPtr> in_flight;
    window.forEachLive([&](const DynInstPtr &inst) {
        in_flight.push_back(inst);
    });
    size_t window_live = in_flight.size();
    panic_if(window_live != window.size(),
             "window live-count mismatch: %zu counted vs %zu cached",
             window_live, window.size());
    size_t fe_live = 0;
    for (const DynInstPtr &inst : frontEnd) {
        if (!inst->killed) {
            in_flight.push_back(inst);
            ++fe_live;
        }
    }
    panic_if(fe_live != frontEndLive,
             "front-end live-count mismatch: %zu counted vs %zu cached",
             fe_live, frontEndLive);

    // Live window entries are in fetch order and not killed.
    InstSeq prev_seq = 0;
    for (size_t i = 0; i < window_live; ++i) {
        const DynInstPtr &inst = in_flight[i];
        panic_if(inst->killed, "killed instruction live in window");
        panic_if(inst->seq <= prev_seq && prev_seq != 0,
                 "window out of fetch order");
        prev_seq = inst->seq;
    }

    // --- physical-register conservation -------------------------------
    std::vector<bool> referenced(physFile.numRegs(), false);
    referenced[zeroPhysReg] = true;
    auto mark_map = [&](const RegMap &map) {
        for (LogReg reg = 0; reg < numLogRegs; ++reg) {
            PhysReg phys = map.lookup(reg);
            panic_if(phys >= physFile.numRegs(), "map points off file");
            referenced[phys] = true;
        }
    };
    mark_map(retireMap);
    for (const PathContextPtr &ctx : contexts) {
        if (ctx->regMap)
            mark_map(*ctx->regMap);
    }
    for (const DynInstPtr &inst : in_flight) {
        if (inst->renamed && inst->physDst != invalidPhysReg)
            referenced[inst->physDst] = true;
        if (inst->branch && inst->branch->checkpoint)
            mark_map(*inst->branch->checkpoint);
    }

    std::vector<bool> free_mask = physFile.freeMask();
    for (PhysReg reg = 1; reg < physFile.numRegs(); ++reg) {
        panic_if(free_mask[reg] && referenced[reg],
                 "phys reg %u is free but still referenced", reg);
        panic_if(!free_mask[reg] && !referenced[reg],
                 "phys reg %u leaked (allocated but unreachable)", reg);
    }

    // --- CTX history-position conservation ----------------------------
    std::vector<unsigned> pos_holders(histAlloc.width(), 0);
    for (const DynInstPtr &inst : in_flight) {
        if (inst->holdsHistPos()) {
            panic_if(inst->histPos >= histAlloc.width(),
                     "bad history position");
            ++pos_holders[inst->histPos];
        }
    }
    unsigned held = 0;
    for (unsigned pos = 0; pos < histAlloc.width(); ++pos) {
        panic_if(pos_holders[pos] > 1,
                 "history position %u held by %u branches", pos,
                 pos_holders[pos]);
        held += pos_holders[pos];
    }
    panic_if(held + histAlloc.numFree() != histAlloc.width(),
             "history positions lost: %u held + %u free != %u", held,
             histAlloc.numFree(), histAlloc.width());

    // --- live leaves are pairwise unrelated paths ----------------------
    for (size_t i = 0; i < leaves.size(); ++i) {
        for (size_t j = i + 1; j < leaves.size(); ++j) {
            const CtxTag &a = leaves[i]->tag;
            const CtxTag &b = leaves[j]->tag;
            panic_if(a.isRelated(b),
                     "leaf paths %s and %s are related",
                     a.toString(histAlloc.width()).c_str(),
                     b.toString(histAlloc.width()).c_str());
        }
    }

    // --- every store-queue entry belongs to an in-flight store ---------
    std::unordered_set<InstSeq> live_stores;
    for (size_t i = 0; i < window_live; ++i) {
        if (in_flight[i]->instr.isStore())
            live_stores.insert(in_flight[i]->seq);
    }
    for (InstSeq seq : storeQueue.seqs()) {
        panic_if(!live_stores.count(seq),
                 "orphan store-queue entry (seq %llu)",
                 static_cast<unsigned long long>(seq));
    }
}

// ====================================================================
// Architectural state extraction
// ====================================================================

ArchState
PolyPathCore::architecturalState() const
{
    ArchState state;
    for (LogReg reg = 0; reg < numLogRegs; ++reg) {
        if (isZeroReg(reg))
            continue;
        state.setReg(reg, physFile.value(retireMap.lookup(reg)));
    }
    return state;
}

} // namespace polypath
