/**
 * @file
 * Return-address stack, one copy per path context.
 *
 * Each path carries its own RAS (cloned at path creation), so wrong-path
 * calls/returns can never corrupt the correct path's stack — returns
 * mispredict only on genuine over/underflow. A predicted return still
 * occupies a CTX history position so the unified kill/recovery machinery
 * handles a wrong return target exactly like a mispredicted branch.
 */

#ifndef POLYPATH_CORE_RAS_HH
#define POLYPATH_CORE_RAS_HH

#include <vector>

#include "common/types.hh"

namespace polypath
{

/** Fixed-depth circular return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 32)
        : entries(depth, 0)
    {}

    /** Push a return address (overwrites the oldest on overflow). */
    void
    push(Addr addr)
    {
        top = (top + 1) % entries.size();
        entries[top] = addr;
        if (occupied < entries.size())
            ++occupied;
    }

    /**
     * Pop the predicted return target. An empty stack predicts 0 (a
     * guaranteed misprediction that the recovery machinery absorbs).
     */
    Addr
    pop()
    {
        if (occupied == 0)
            return 0;
        Addr addr = entries[top];
        top = (top + entries.size() - 1) % entries.size();
        --occupied;
        return addr;
    }

    unsigned size() const { return occupied; }
    unsigned depth() const { return entries.size(); }

  private:
    std::vector<Addr> entries;
    unsigned top = 0;
    unsigned occupied = 0;
};

} // namespace polypath

#endif // POLYPATH_CORE_RAS_HH
