#include "trace.hh"

namespace polypath
{

const char *
pipeEventName(PipeEvent event)
{
    switch (event) {
      case PipeEvent::Fetch: return "fetch";
      case PipeEvent::Rename: return "rename";
      case PipeEvent::Issue: return "issue";
      case PipeEvent::Writeback: return "writeback";
      case PipeEvent::Commit: return "commit";
      case PipeEvent::Kill: return "kill";
      case PipeEvent::Diverge: return "diverge";
      case PipeEvent::Recover: return "recover";
    }
    return "?";
}

} // namespace polypath
