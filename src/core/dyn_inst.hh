/**
 * @file
 * A dynamic (in-flight) instruction in the PolyPath pipeline.
 */

#ifndef POLYPATH_CORE_DYN_INST_HH
#define POLYPATH_CORE_DYN_INST_HH

#include <memory>

#include "common/types.hh"
#include "core/ras.hh"
#include "ctx/ctx_tag.hh"
#include "isa/instr.hh"
#include "rename/regmap.hh"

namespace polypath
{

/** Sentinel for "no CTX history position assigned". */
constexpr u8 noHistPos = 0xff;

/**
 * Recovery state captured when a branch (or return) passes fetch/rename;
 * only allocated for instructions that can trigger recovery.
 */
struct BranchState
{
    /** RegMap checkpoint, cloned when the branch renames (§3.2.5). */
    std::unique_ptr<RegMap> checkpoint;

    /** RAS snapshot after the branch's own effect (post-pop for RET). */
    std::unique_ptr<ReturnAddressStack> rasCheckpoint;

    /** Global history the prediction was made with. */
    u64 ghrAtPredict = 0;

    /** Trace-cursor state at this branch (for oracle/verification). */
    bool onCorrectPath = false;
    u64 traceIndex = 0;

    bool predTaken = false;
    Addr predTarget = 0;            //!< predicted target (RET)
    bool lowConfidence = false;
    bool divergent = false;
    u32 childTakenCtx = 0;          //!< divergence: taken-side context id
    u32 childNtCtx = 0;             //!< divergence: not-taken-side id
    bool divergenceAccounted = false;   //!< live-divergence count handling
    bool resolved = false;
    bool actualTaken = false;
    Addr actualTarget = 0;
};

/** One in-flight instruction. */
struct DynInst
{
    InstSeq seq = 0;
    Addr pc = 0;
    Instr instr;
    CtxTag tag;
    u32 ctxId = 0;                  //!< the path context it was fetched in

    // Rename state.
    PhysReg physSrc1 = invalidPhysReg;
    PhysReg physSrc2 = invalidPhysReg;
    PhysReg physDst = invalidPhysReg;
    PhysReg oldPhysDst = invalidPhysReg;
    LogReg logDst = noReg;
    u8 waitingSrcs = 0;             //!< unready source operands

    // Pipeline status.
    bool renamed = false;
    bool inWindow = false;
    bool issued = false;
    bool completed = false;
    bool killed = false;

    /** Extra execution latency (D-cache miss penalty). */
    u8 extraLatency = 0;

    // Execution results (computed at issue, visible at writeback).
    u64 result = 0;
    bool hasResult = false;
    Addr effAddr = 0;

    // Branch/return state (null for everything else).
    u8 histPos = noHistPos;
    std::unique_ptr<BranchState> branch;

    Cycle fetchCycle = 0;

    bool isCondBranch() const { return instr.isCondBranch(); }
    bool isReturn() const { return instr.info().isReturn; }

    /** Does this instruction hold a CTX history position? */
    bool holdsHistPos() const { return histPos != noHistPos; }
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace polypath

#endif // POLYPATH_CORE_DYN_INST_HH
