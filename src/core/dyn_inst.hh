/**
 * @file
 * A dynamic (in-flight) instruction in the PolyPath pipeline.
 */

#ifndef POLYPATH_CORE_DYN_INST_HH
#define POLYPATH_CORE_DYN_INST_HH

#include <memory>

#include "common/types.hh"
#include "core/ras.hh"
#include "ctx/ctx_tag.hh"
#include "isa/instr.hh"
#include "rename/regmap.hh"

namespace polypath
{

/** Sentinel for "no CTX history position assigned". */
constexpr u8 noHistPos = 0xff;

/**
 * Recovery state captured when a branch (or return) passes fetch/rename;
 * only allocated for instructions that can trigger recovery.
 */
struct BranchState
{
    /** RegMap checkpoint, cloned when the branch renames (§3.2.5). */
    std::unique_ptr<RegMap> checkpoint;

    /** RAS snapshot after the branch's own effect (post-pop for RET). */
    std::unique_ptr<ReturnAddressStack> rasCheckpoint;

    /** Global history the prediction was made with. */
    u64 ghrAtPredict = 0;

    /** Trace-cursor state at this branch (for oracle/verification). */
    bool onCorrectPath = false;
    u64 traceIndex = 0;

    bool predTaken = false;
    Addr predTarget = 0;            //!< predicted target (RET)
    bool lowConfidence = false;
    bool divergent = false;
    u32 childTakenCtx = 0;          //!< divergence: taken-side context id
    u32 childNtCtx = 0;             //!< divergence: not-taken-side id
    bool divergenceAccounted = false;   //!< live-divergence count handling
    bool resolved = false;
    bool actualTaken = false;
    Addr actualTarget = 0;
};

class DynInstPool;
struct PathContext;

/**
 * One in-flight instruction.
 *
 * Field order is deliberate: the members the scheduler touches every
 * cycle — the reference count, wakeup bookkeeping, status flags, rename
 * tags and the decoded instruction — are packed at the front so the
 * issue/wakeup loops stay within the leading cache line; trace-only and
 * recovery state (pc, path-context linkage, branch checkpoint) sits
 * behind them.
 */
struct DynInst
{
    // --- hot: scheduling / wakeup (leading cache line) -----------------

    /** Intrusive reference count. Non-atomic: an instruction never
     *  leaves its core's simulation thread. */
    u32 refCount = 0;

    // Rename state.
    PhysReg physSrc1 = invalidPhysReg;
    PhysReg physSrc2 = invalidPhysReg;
    PhysReg physDst = invalidPhysReg;
    PhysReg oldPhysDst = invalidPhysReg;
    LogReg logDst = noReg;
    u8 waitingSrcs = 0;             //!< unready source operands

    // Pipeline status.
    bool renamed = false;
    bool inWindow = false;
    bool issued = false;
    bool completed = false;
    bool killed = false;

    /** Extra execution latency (D-cache miss penalty). */
    u8 extraLatency = 0;

    u8 histPos = noHistPos;         //!< CTX position (branches/returns)
    bool hasResult = false;

    InstSeq seq = 0;
    Instr instr;

    /**
     * Intrusive per-source wakeup links (see PolyPathCore::waiterHeads):
     * waitNext[s] chains the waiter list this instruction's source slot
     * s sits on. Tagged-pointer encoding — bit 0 of a link holds the
     * *next* node's slot number, valid because pool slots are aligned
     * to alignof(DynInst) >= 8. Zero means end of list / not enqueued.
     */
    uintptr_t waitNext[2] = {0, 0};

    CtxTag tag;

    // Execution results (computed at issue, visible at writeback).
    u64 result = 0;
    Addr effAddr = 0;

    // --- cold: fetch/trace/recovery state ------------------------------

    Addr pc = 0;
    u32 ctxId = 0;                  //!< the path context it was fetched in

    /** The fetching path context. Dereferenced only while the
     *  instruction is un-killed, which guarantees the context is live
     *  (a kill that destroys the context kills its instructions in the
     *  same resolution broadcast). */
    PathContext *ctx = nullptr;

    /** Commit-clear log watermark: broadcasts up to this index have
     *  been applied to `tag` (see CommitClearLog). */
    u32 clearsSeen = 0;

    // Branch/return state (null for everything else).
    std::unique_ptr<BranchState> branch;

    Cycle fetchCycle = 0;

    /** Owning pool; nullptr for plain heap allocations (tests). */
    DynInstPool *pool = nullptr;

    bool isCondBranch() const { return instr.isCondBranch(); }
    bool isReturn() const { return instr.info().isReturn; }

    /** Does this instruction hold a CTX history position? */
    bool holdsHistPos() const { return histPos != noHistPos; }
};

namespace detail
{
/** Out-of-line cold path: destroy a zero-ref instruction, returning it
 *  to its pool (or the heap). Defined in inst_pool.cc. */
void destroyDynInst(DynInst *inst);
} // namespace detail

/**
 * Shared-ownership smart handle for DynInst, backed by an intrusive
 * (non-atomic) reference count instead of a shared_ptr control block.
 * Semantics match std::shared_ptr for everything the simulator and the
 * tests use: copy/move, comparison, bool conversion, get().
 */
class DynInstPtr
{
  public:
    DynInstPtr() = default;
    DynInstPtr(std::nullptr_t) {}

    /** Adopt a raw instruction (fresh or already shared). */
    explicit DynInstPtr(DynInst *inst) : ptr(inst) { incref(); }

    DynInstPtr(const DynInstPtr &other) : ptr(other.ptr) { incref(); }

    DynInstPtr(DynInstPtr &&other) noexcept : ptr(other.ptr)
    {
        other.ptr = nullptr;
    }

    DynInstPtr &
    operator=(const DynInstPtr &other)
    {
        if (ptr != other.ptr) {
            decref();
            ptr = other.ptr;
            incref();
        }
        return *this;
    }

    DynInstPtr &
    operator=(DynInstPtr &&other) noexcept
    {
        if (this != &other) {
            decref();
            ptr = other.ptr;
            other.ptr = nullptr;
        }
        return *this;
    }

    ~DynInstPtr() { decref(); }

    void
    reset()
    {
        decref();
        ptr = nullptr;
    }

    DynInst *get() const { return ptr; }
    DynInst &operator*() const { return *ptr; }
    DynInst *operator->() const { return ptr; }
    explicit operator bool() const { return ptr != nullptr; }

    friend bool
    operator==(const DynInstPtr &a, const DynInstPtr &b)
    {
        return a.ptr == b.ptr;
    }
    friend bool
    operator!=(const DynInstPtr &a, const DynInstPtr &b)
    {
        return a.ptr != b.ptr;
    }
    friend bool operator==(const DynInstPtr &a, std::nullptr_t)
    {
        return a.ptr == nullptr;
    }
    friend bool operator!=(const DynInstPtr &a, std::nullptr_t)
    {
        return a.ptr != nullptr;
    }
    /** Address order; only used to satisfy container instantiations
     *  (ready-queue pairs order by unique sequence number first). */
    friend bool
    operator<(const DynInstPtr &a, const DynInstPtr &b)
    {
        return a.ptr < b.ptr;
    }
    friend bool
    operator>(const DynInstPtr &a, const DynInstPtr &b)
    {
        return b < a;
    }

    long use_count() const { return ptr ? ptr->refCount : 0; }

  private:
    void
    incref()
    {
        if (ptr)
            ++ptr->refCount;
    }

    void
    decref()
    {
        if (ptr && --ptr->refCount == 0)
            detail::destroyDynInst(ptr);
    }

    DynInst *ptr = nullptr;
};

/** Heap-allocate a standalone instruction (unit tests, harnesses that
 *  have no core and hence no pool). */
inline DynInstPtr
makeHeapInst()
{
    return DynInstPtr(new DynInst());
}

} // namespace polypath

#endif // POLYPATH_CORE_DYN_INST_HH
