/**
 * @file
 * Pooled allocation for dynamic instructions.
 *
 * The cycle loop used to heap-allocate one std::shared_ptr<DynInst>
 * control block per fetched instruction — several million transient
 * allocations per simulated workload, and the single largest source of
 * host-side allocator traffic in the fetch/rename path. DynInstPool
 * replaces that with a per-core freelist over arena slabs: instructions
 * are carved from large chunks, recycled when their last DynInstPtr
 * reference drops (shortly after commit or kill, once the lazy
 * issue/completion queues drain), and re-constructed in place on reuse
 * so no stale state can leak between incarnations.
 *
 * DynInstPtr (see dyn_inst.hh) stays a smart handle with shared-pointer
 * semantics; the reference count is intrusive and non-atomic, which is
 * safe because a DynInst never leaves the simulation thread of the core
 * that fetched it.
 */

#ifndef POLYPATH_CORE_INST_POOL_HH
#define POLYPATH_CORE_INST_POOL_HH

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "common/logging.hh"
#include "core/dyn_inst.hh"

namespace polypath
{

/** Freelist/arena recycler for DynInst objects. */
class DynInstPool
{
  public:
    /** @param chunk_insts instructions carved per arena slab */
    explicit DynInstPool(size_t chunk_insts = 512)
        : chunkInsts(chunk_insts)
    {
        panic_if(chunkInsts == 0, "DynInstPool: empty chunk size");
    }

    ~DynInstPool()
    {
        // Every instruction must be dead (back on the freelist) before
        // the arena goes away; a violation means a DynInstPtr outlived
        // its core.
        panic_if(liveCount != 0,
                 "DynInstPool destroyed with %zu live instructions",
                 liveCount);
    }

    DynInstPool(const DynInstPool &) = delete;
    DynInstPool &operator=(const DynInstPool &) = delete;

    /** Get a freshly default-constructed instruction. */
    DynInstPtr
    acquire()
    {
        DynInst *slot;
        if (!freeList.empty()) {
            slot = freeList.back();
            freeList.pop_back();
            ++recycleCount;
        } else {
            if (freshList.empty())
                grow();
            slot = freshList.back();
            freshList.pop_back();
        }
        DynInst *inst = new (slot) DynInst();
        inst->pool = this;
        ++liveCount;
        ++acquireCount;
        return DynInstPtr(inst);
    }

    /** Destroy @p inst and return its slot to the freelist. Called by
     *  DynInstPtr when the last reference drops. */
    void
    release(DynInst *inst)
    {
        panic_if(liveCount == 0, "DynInstPool: release underflow");
        inst->~DynInst();
        freeList.push_back(inst);
        --liveCount;
    }

    // --- introspection (tests, PERFORMANCE.md numbers) ----------------

    /** Instructions currently live (acquired, not yet recycled). */
    size_t live() const { return liveCount; }

    /** Total acquire() calls so far. */
    size_t totalAcquired() const { return acquireCount; }

    /** Acquires served by recycling a previously released slot. */
    size_t totalRecycled() const { return recycleCount; }

    /** Arena slabs allocated (steady state: stops growing). */
    size_t numChunks() const { return chunks.size(); }

    /** Capacity in instructions across all slabs. */
    size_t capacity() const { return chunks.size() * chunkInsts; }

  private:
    void
    grow()
    {
        auto chunk = std::make_unique<Slot[]>(chunkInsts);
        for (size_t i = 0; i < chunkInsts; ++i)
            freshList.push_back(reinterpret_cast<DynInst *>(&chunk[i]));
        chunks.push_back(std::move(chunk));
    }

    /** Raw, correctly aligned storage for one instruction. */
    struct alignas(alignof(DynInst)) Slot
    {
        std::byte raw[sizeof(DynInst)];
    };

    size_t chunkInsts;
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::vector<DynInst *> freeList;    //!< released, ready for reuse
    std::vector<DynInst *> freshList;   //!< carved but never used
    size_t liveCount = 0;
    size_t acquireCount = 0;
    size_t recycleCount = 0;
};

} // namespace polypath

#endif // POLYPATH_CORE_INST_POOL_HH
