/**
 * @file
 * Statistics collected during a timing-simulation run. Covers every
 * quantity the paper reports: IPC, misprediction rates, confidence
 * estimator PVN, useless (non-committing) fetches, active-path
 * utilisation, functional-unit utilisation and window occupancy.
 */

#ifndef POLYPATH_CORE_STATS_HH
#define POLYPATH_CORE_STATS_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace polypath
{

/** All counters for one simulation run. */
struct SimStats
{
    Cycle cycles = 0;

    // Instruction flow.
    u64 fetchedInstrs = 0;
    u64 committedInstrs = 0;
    u64 killedInstrs = 0;           //!< squashed after entering the window
    u64 killedFrontend = 0;         //!< squashed while still in-order

    // Conditional branches (committed-path, i.e. architectural).
    u64 committedBranches = 0;
    u64 mispredictedBranches = 0;   //!< committed with wrong prediction
    u64 committedReturns = 0;
    u64 mispredictedReturns = 0;

    // Confidence estimation (counted at branch commit).
    u64 lowConfidenceBranches = 0;
    u64 lowConfidenceMispredicts = 0;
    u64 highConfidenceMispredicts = 0;

    // SEE path management.
    u64 divergences = 0;            //!< divergence points created at fetch
    u64 divergencesSuppressed = 0;  //!< low confidence but no resources
    u64 recoveries = 0;             //!< monopath-style mispredict restarts
    u64 recoveriesCorrectPath = 0;  //!< restarts of the architected path
    u64 retRecoveries = 0;

    // Fetch.
    u64 fetchCycleSlotsUsed = 0;
    u64 fetchStallNoCtx = 0;        //!< branch stalled: no history position
    u64 fetchStallFrontendFull = 0;

    // Issue/memory.
    u64 loadsForwarded = 0;
    u64 loadBlockedEvents = 0;
    u64 dcacheHits = 0;
    u64 dcacheMisses = 0;

    // Per-FU-class issue counts (utilisation).
    std::array<u64, static_cast<size_t>(ExecClass::NumClasses)>
        fuIssued{};

    // Occupancy integrals (divide by cycles for averages).
    u64 windowOccupancySum = 0;
    u64 livePathsSum = 0;

    /** livePathsHistogram[n] = cycles with exactly n live paths
     *  (saturated at the last bucket). */
    std::vector<u64> livePathsHistogram;

    bool halted = false;            //!< HALT committed before cycle cap

    // --- Derived metrics ----------------------------------------------

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedInstrs) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Conditional-branch misprediction rate over committed branches. */
    double
    mispredictRate() const
    {
        return committedBranches
                   ? static_cast<double>(mispredictedBranches) /
                         static_cast<double>(committedBranches)
                   : 0.0;
    }

    /** PVN: P(misprediction | low confidence) over committed branches. */
    double
    pvn() const
    {
        return lowConfidenceBranches
                   ? static_cast<double>(lowConfidenceMispredicts) /
                         static_cast<double>(lowConfidenceBranches)
                   : 0.0;
    }

    /** Fetched-to-committed ratio (§3.1 reports 1.86 for monopath). */
    double
    fetchToCommitRatio() const
    {
        return committedInstrs
                   ? static_cast<double>(fetchedInstrs) /
                         static_cast<double>(committedInstrs)
                   : 0.0;
    }

    /** Fetched instructions that never commit ("useless", §5.1). */
    u64
    uselessInstrs() const
    {
        return fetchedInstrs >= committedInstrs
                   ? fetchedInstrs - committedInstrs
                   : 0;
    }

    /** Mean number of live paths per cycle (§5.2 reports ~2.9). */
    double
    avgLivePaths() const
    {
        return cycles ? static_cast<double>(livePathsSum) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Fraction of cycles with at most @p n live paths. */
    double fractionCyclesWithPathsAtMost(unsigned n) const;

    /** Mean instruction-window occupancy. */
    double
    avgWindowOccupancy() const
    {
        return cycles ? static_cast<double>(windowOccupancySum) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Utilisation of FU class @p cls given @p num_units units. */
    double fuUtilization(ExecClass cls, unsigned num_units) const;

    /** Multi-line human-readable dump. */
    std::string toString() const;

    /**
     * All counters plus the headline derived metrics as a JSON object
     * (same rendering style as DiagnosticEngine::renderJson).
     */
    std::string toJson() const;
};

} // namespace polypath

#endif // POLYPATH_CORE_STATS_HH
