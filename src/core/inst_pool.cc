#include "core/inst_pool.hh"

namespace polypath
{
namespace detail
{

void
destroyDynInst(DynInst *inst)
{
    if (inst->pool)
        inst->pool->release(inst);
    else
        delete inst;
}

} // namespace detail
} // namespace polypath
