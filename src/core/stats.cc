#include "stats.hh"

#include <cstdio>
#include <sstream>

namespace polypath
{

double
SimStats::fractionCyclesWithPathsAtMost(unsigned n) const
{
    if (cycles == 0)
        return 0.0;
    u64 sum = 0;
    for (size_t i = 0; i < livePathsHistogram.size() && i <= n; ++i)
        sum += livePathsHistogram[i];
    return static_cast<double>(sum) / static_cast<double>(cycles);
}

double
SimStats::fuUtilization(ExecClass cls, unsigned num_units) const
{
    if (cycles == 0 || num_units == 0)
        return 0.0;
    u64 issued = fuIssued[static_cast<size_t>(cls)];
    return static_cast<double>(issued) /
           (static_cast<double>(cycles) * num_units);
}

std::string
SimStats::toString() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "cycles %llu  committed %llu  IPC %.3f\n"
        "fetched %llu (%.2fx committed, %llu useless)\n"
        "branches %llu  mispredicted %llu (%.2f%%)  "
        "returns %llu/%llu mispred\n"
        "low-confidence %llu  PVN %.1f%%  divergences %llu "
        "(suppressed %llu)  recoveries %llu\n"
        "avg live paths %.2f  avg window occupancy %.1f\n",
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(committedInstrs), ipc(),
        static_cast<unsigned long long>(fetchedInstrs),
        fetchToCommitRatio(),
        static_cast<unsigned long long>(uselessInstrs()),
        static_cast<unsigned long long>(committedBranches),
        static_cast<unsigned long long>(mispredictedBranches),
        100.0 * mispredictRate(),
        static_cast<unsigned long long>(mispredictedReturns),
        static_cast<unsigned long long>(committedReturns),
        static_cast<unsigned long long>(lowConfidenceBranches),
        100.0 * pvn(),
        static_cast<unsigned long long>(divergences),
        static_cast<unsigned long long>(divergencesSuppressed),
        static_cast<unsigned long long>(recoveries),
        avgLivePaths(), avgWindowOccupancy());
    return std::string(buf);
}

std::string
SimStats::toJson() const
{
    std::ostringstream os;
    auto field = [&](const char *nm, u64 v) {
        os << "    \"" << nm << "\": " << v << ",\n";
    };
    auto derived = [&](const char *nm, double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6f", v);
        os << "    \"" << nm << "\": " << buf << ",\n";
    };
    os << "  \"stats\": {\n";
    field("cycles", cycles);
    field("fetched_instrs", fetchedInstrs);
    field("committed_instrs", committedInstrs);
    field("killed_instrs", killedInstrs);
    field("killed_frontend", killedFrontend);
    field("committed_branches", committedBranches);
    field("mispredicted_branches", mispredictedBranches);
    field("committed_returns", committedReturns);
    field("mispredicted_returns", mispredictedReturns);
    field("low_confidence_branches", lowConfidenceBranches);
    field("low_confidence_mispredicts", lowConfidenceMispredicts);
    field("high_confidence_mispredicts", highConfidenceMispredicts);
    field("divergences", divergences);
    field("divergences_suppressed", divergencesSuppressed);
    field("recoveries", recoveries);
    field("recoveries_correct_path", recoveriesCorrectPath);
    field("ret_recoveries", retRecoveries);
    field("fetch_cycle_slots_used", fetchCycleSlotsUsed);
    field("fetch_stall_no_ctx", fetchStallNoCtx);
    field("fetch_stall_frontend_full", fetchStallFrontendFull);
    field("loads_forwarded", loadsForwarded);
    field("load_blocked_events", loadBlockedEvents);
    field("dcache_hits", dcacheHits);
    field("dcache_misses", dcacheMisses);
    field("window_occupancy_sum", windowOccupancySum);
    field("live_paths_sum", livePathsSum);
    os << "    \"fu_issued\": [";
    for (size_t i = 0; i < fuIssued.size(); ++i)
        os << (i ? ", " : "") << fuIssued[i];
    os << "],\n";
    os << "    \"live_paths_histogram\": [";
    for (size_t i = 0; i < livePathsHistogram.size(); ++i)
        os << (i ? ", " : "") << livePathsHistogram[i];
    os << "],\n";
    derived("ipc", ipc());
    derived("mispredict_rate", mispredictRate());
    derived("pvn", pvn());
    derived("fetch_to_commit_ratio", fetchToCommitRatio());
    derived("avg_live_paths", avgLivePaths());
    derived("avg_window_occupancy", avgWindowOccupancy());
    os << "    \"halted\": " << (halted ? "true" : "false") << "\n";
    os << "  }";
    return os.str();
}

} // namespace polypath
