#include "stats.hh"

#include <cstdio>

namespace polypath
{

double
SimStats::fractionCyclesWithPathsAtMost(unsigned n) const
{
    if (cycles == 0)
        return 0.0;
    u64 sum = 0;
    for (size_t i = 0; i < livePathsHistogram.size() && i <= n; ++i)
        sum += livePathsHistogram[i];
    return static_cast<double>(sum) / static_cast<double>(cycles);
}

double
SimStats::fuUtilization(ExecClass cls, unsigned num_units) const
{
    if (cycles == 0 || num_units == 0)
        return 0.0;
    u64 issued = fuIssued[static_cast<size_t>(cls)];
    return static_cast<double>(issued) /
           (static_cast<double>(cycles) * num_units);
}

std::string
SimStats::toString() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "cycles %llu  committed %llu  IPC %.3f\n"
        "fetched %llu (%.2fx committed, %llu useless)\n"
        "branches %llu  mispredicted %llu (%.2f%%)  "
        "returns %llu/%llu mispred\n"
        "low-confidence %llu  PVN %.1f%%  divergences %llu "
        "(suppressed %llu)  recoveries %llu\n"
        "avg live paths %.2f  avg window occupancy %.1f\n",
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(committedInstrs), ipc(),
        static_cast<unsigned long long>(fetchedInstrs),
        fetchToCommitRatio(),
        static_cast<unsigned long long>(uselessInstrs()),
        static_cast<unsigned long long>(committedBranches),
        static_cast<unsigned long long>(mispredictedBranches),
        100.0 * mispredictRate(),
        static_cast<unsigned long long>(mispredictedReturns),
        static_cast<unsigned long long>(committedReturns),
        static_cast<unsigned long long>(lowConfidenceBranches),
        100.0 * pvn(),
        static_cast<unsigned long long>(divergences),
        static_cast<unsigned long long>(divergencesSuppressed),
        static_cast<unsigned long long>(recoveries),
        avgLivePaths(), avgWindowOccupancy());
    return std::string(buf);
}

} // namespace polypath
