/**
 * @file
 * Machine configuration for the PolyPath / monopath simulator.
 *
 * Defaults reproduce the paper's baseline (§4.2): an 8-way superscalar,
 * out-of-order, in-order-commit machine with a 256-entry central
 * instruction window/reorder buffer, an 8-stage pipeline, AXP-21164
 * functional-unit mix (4 IntType0, 4 IntType1, 4 FPAdd, 4 FPMult,
 * 4 D-cache ports), a 14-bit gshare predictor and a same-sized JRS
 * confidence estimator with 1-bit resetting counters.
 */

#ifndef POLYPATH_CORE_CONFIG_HH
#define POLYPATH_CORE_CONFIG_HH

#include <string>

#include "common/types.hh"
#include "memsys/cache.hh"

namespace polypath
{

/** Direction-predictor selection. */
enum class PredictorKind : u8
{
    Gshare,
    Bimodal,        //!< PC-indexed 2-bit counters (McFarling TN 36)
    Combining,      //!< bimodal + gshare + chooser (McFarling TN 36)
    Oracle,         //!< perfect prediction (calibration bound)
    AlwaysTaken,    //!< static (tests/ablation)
};

/** Confidence-estimator selection. */
enum class ConfidenceKind : u8
{
    AlwaysHigh,     //!< never diverge: the monopath machine
    Jrs,            //!< the paper's real estimator
    Oracle,         //!< perfect confidence (calibration bound)
    AlwaysLow,      //!< diverge whenever resources allow (ablation)
    AdaptiveJrs,    //!< §5.1 lesson: JRS that self-monitors its PVN
};

/** Multi-path fetch bandwidth arbitration policy (§3.2.6). */
enum class FetchPolicy : u8
{
    ExponentialPriority,    //!< paper baseline: bandwidth halves per rank
    RoundRobin,             //!< even split (ablation)
    OldestFirst,            //!< oldest path takes all it can (ablation)
    PredictedFirst,         //!< §3.2.7 future work: within the
                            //!< exponential scheme, paths that followed
                            //!< the predictor at their divergences rank
                            //!< ahead of their non-predicted siblings
};

/** Full machine configuration. */
struct SimConfig
{
    // Pipeline widths.
    unsigned fetchWidth = 8;
    unsigned renameWidth = 8;
    unsigned commitWidth = 8;

    /** Central instruction window / reorder buffer entries. */
    unsigned windowSize = 256;

    /**
     * In-order front-end depth in cycles (fetch through rename). The
     * paper's total pipeline length is frontendStages + 3 (window/issue,
     * execute, commit): the 8-stage baseline has a 5-stage front end;
     * Fig. 12 sweeps total depth 6..10.
     */
    unsigned frontendStages = 5;

    // Execution core (per-class functional unit counts).
    unsigned numIntAlu0 = 4;
    unsigned numIntAlu1 = 4;
    unsigned numFpAdd = 4;
    unsigned numFpMul = 4;
    unsigned numMemPorts = 4;

    /**
     * CTX tag width in history positions = maximum number of in-flight
     * (uncommitted) conditional branches, like checkpoint RegMaps in a
     * monopath machine.
     */
    unsigned tagWidth = 16;

    /** Cap on simultaneously live paths; 0 = auto (tagWidth + 1). */
    unsigned maxActivePaths = 0;

    /**
     * Maximum simultaneous unresolved divergences: -1 unlimited (SEE),
     * 0 never diverge, 1 = dual-path execution (3 paths, §5.2).
     */
    int maxDivergences = -1;

    // Branch prediction.
    PredictorKind predictor = PredictorKind::Gshare;
    unsigned historyBits = 14;          //!< gshare: 2^14 = 16k counters
    bool speculativeHistoryUpdate = true;

    // Confidence estimation.
    ConfidenceKind confidence = ConfidenceKind::AlwaysHigh;
    unsigned jrsCounterBits = 1;
    unsigned jrsThreshold = 1;
    bool enhancedConfidenceIndex = true;

    /** AdaptiveJrs: revert to monopath when measured PVN drops below
     *  this floor, over windows of adaptiveWindowEvents
     *  low-confidence calls. */
    double adaptivePvnFloor = 0.25;
    unsigned adaptiveWindowEvents = 512;

    /** Train predictor/estimator at resolution instead of commit. */
    bool trainAtResolution = false;

    // Fetch.
    FetchPolicy fetchPolicy = FetchPolicy::ExponentialPriority;
    unsigned rasDepth = 32;

    /**
     * D-cache timing model. The paper's machine has perfect caches
     * (always hit, default); set dcache.perfect = false to study SEE
     * under realistic memory latency (extension, see `ablations`).
     */
    CacheConfig dcache;

    /** Physical registers; 0 = auto (64 logical + window + slack). */
    unsigned numPhysRegs = 0;

    /** Cycle cap; 0 = auto (generous multiple of the dynamic count). */
    u64 maxCycles = 0;

    /** Run the golden-trace commit verification (cheap; default on). */
    bool verify = true;

    /**
     * Fetch through the program's predecode table instead of decoding
     * every instruction word (required to be observationally invisible;
     * the knob exists so tests can pin the equivalence and so the
     * slow path stays exercised). The PP_NO_PREDECODE environment
     * variable force-disables it regardless of this setting.
     */
    bool predecode = true;

    /** Collect per-static-branch profiles (execs, mispredicts,
     *  low-confidence calls, divergences); see ppsim --profile. */
    bool profileBranches = false;

    /**
     * Fault injection for the differential-testing subsystem
     * (src/testkit/): when non-zero, every committed store whose
     * effective address is >= this threshold writes its data XOR 1 to
     * memory instead of the correct value. This plants a genuine
     * final-state bug for the lockstep oracle and the ppfuzz reducer to
     * find, without perturbing control flow: generated programs keep a
     * write-only output region (testkit::outputBase) above all read
     * data, so the corruption can never feed back into a branch and
     * trip the core's trace-grounding panics. Never set outside tests.
     */
    Addr bugCorruptStoreAbove = 0;

    /**
     * Deep structural self-check every N cycles (0 = off). Validates
     * resource-conservation and path-tree invariants; used heavily by
     * the test suite, costs O(window) per check.
     */
    unsigned selfCheckInterval = 0;

    /** Derived: total pipeline stages as the paper counts them. */
    unsigned totalPipelineStages() const { return frontendStages + 3; }

    /** Derived: effective path cap. */
    unsigned
    effectiveMaxPaths() const
    {
        return maxActivePaths ? maxActivePaths : tagWidth + 1;
    }

    /** Derived: effective physical register count. */
    unsigned
    effectivePhysRegs() const
    {
        return numPhysRegs ? numPhysRegs : (1 + 64 + windowSize + 16);
    }

    // --- Named configurations used throughout the evaluation ---------

    /** Paper baseline monopath machine (gshare, never diverge). */
    static SimConfig monopath();

    /** SEE with the real JRS estimator ("gshare/JRS"). */
    static SimConfig seeJrs();

    /** SEE with perfect confidence ("gshare/oracle"). */
    static SimConfig seeOracleConfidence();

    /** Perfect branch prediction ("oracle"). */
    static SimConfig oraclePrediction();

    /** Dual-path restriction of SEE (§5.2), JRS estimator. */
    static SimConfig dualPathJrs();

    /** Dual-path restriction of SEE (§5.2), oracle confidence. */
    static SimConfig dualPathOracleConfidence();

    /** SEE with the self-monitoring adaptive JRS estimator (§5.1's
     *  future-work suggestion, implemented). */
    static SimConfig seeAdaptiveJrs();

    /** Human-readable category label matching the paper's legends. */
    std::string categoryName() const;

    /**
     * Canonical full serialization: every configuration field as one
     * "name value" line, in declaration order. This is the SimConfig
     * half of the result-cache key (src/sim/result_cache.hh), so two
     * configs serialize identically iff every field matches. Add a
     * line here whenever SimConfig grows a field — a forgotten field
     * would let the cache return results for the wrong configuration.
     */
    std::string serialize() const;
};

} // namespace polypath

#endif // POLYPATH_CORE_CONFIG_HH
