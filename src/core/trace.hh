/**
 * @file
 * Pipeline event tracing.
 *
 * A TraceSink attached to the core receives one record per pipeline
 * event (fetch, rename, issue, writeback, commit, kill, divergence,
 * recovery). Tracing is entirely optional: with no sink attached the
 * cost is a null-pointer test per event.
 */

#ifndef POLYPATH_CORE_TRACE_HH
#define POLYPATH_CORE_TRACE_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace polypath
{

/** Pipeline event kinds. */
enum class PipeEvent : u8
{
    Fetch,
    Rename,
    Issue,
    Writeback,
    Commit,
    Kill,
    Diverge,    //!< a low-confidence branch forked two paths
    Recover,    //!< misprediction recovery spawned the correct path
};

/** Printable event name. */
const char *pipeEventName(PipeEvent event);

/** One pipeline event. */
struct TraceRecord
{
    Cycle cycle;
    PipeEvent event;
    InstSeq seq;
    Addr pc;
    std::string detail;     //!< disassembly / tag / context info
};

/** Receiver interface for pipeline events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceRecord &rec) = 0;
};

/** Collects records in memory (tests, programmatic analysis). */
class VectorTraceSink : public TraceSink
{
  public:
    void record(const TraceRecord &rec) override
    {
        records.push_back(rec);
    }

    std::vector<TraceRecord> records;
};

/**
 * Records only the committed-instruction stream — the architectural
 * retirement order, which is what differential oracles compare against
 * the golden interpreter (src/testkit/oracle.hh). Every other pipeline
 * event (fetch, kill, wrong-path execution...) is speculation noise for
 * that purpose and is dropped at the sink.
 *
 * The callback is invoked once per committed instruction, in commit
 * order, while the core is inside its commit phase; it must not touch
 * the core. A callback is used instead of buffering so a lockstep
 * consumer can flag divergence the moment it happens (the driver stops
 * ticking) rather than after a full — possibly wedged — run.
 */
class CommitRecorder : public TraceSink
{
  public:
    using Callback = std::function<void(const TraceRecord &)>;

    explicit CommitRecorder(Callback on_commit = {})
        : onCommit(std::move(on_commit))
    {}

    void
    record(const TraceRecord &rec) override
    {
        if (rec.event != PipeEvent::Commit)
            return;
        ++numCommitted;
        if (onCommit)
            onCommit(rec);
        else
            committed.push_back(rec);
    }

    /** Commit records seen so far (buffered mode only). */
    std::vector<TraceRecord> committed;

    /** Commits seen (both modes). */
    u64 numCommitted = 0;

  private:
    Callback onCommit;
};

/** Streams records to a FILE (human-readable pipeline viewer). */
class FileTraceSink : public TraceSink
{
  public:
    explicit FileTraceSink(std::FILE *out) : out(out) {}

    void
    record(const TraceRecord &rec) override
    {
        std::fprintf(out, "%8llu  %-9s #%-6llu %#8llx  %s\n",
                     static_cast<unsigned long long>(rec.cycle),
                     pipeEventName(rec.event),
                     static_cast<unsigned long long>(rec.seq),
                     static_cast<unsigned long long>(rec.pc),
                     rec.detail.c_str());
    }

  private:
    std::FILE *out;
};

} // namespace polypath

#endif // POLYPATH_CORE_TRACE_HH
