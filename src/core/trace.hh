/**
 * @file
 * Pipeline event tracing.
 *
 * A TraceSink attached to the core receives one record per pipeline
 * event (fetch, rename, issue, writeback, commit, kill, divergence,
 * recovery). Tracing is entirely optional: with no sink attached the
 * cost is a null-pointer test per event.
 */

#ifndef POLYPATH_CORE_TRACE_HH
#define POLYPATH_CORE_TRACE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hh"

namespace polypath
{

/** Pipeline event kinds. */
enum class PipeEvent : u8
{
    Fetch,
    Rename,
    Issue,
    Writeback,
    Commit,
    Kill,
    Diverge,    //!< a low-confidence branch forked two paths
    Recover,    //!< misprediction recovery spawned the correct path
};

/** Printable event name. */
const char *pipeEventName(PipeEvent event);

/** One pipeline event. */
struct TraceRecord
{
    Cycle cycle;
    PipeEvent event;
    InstSeq seq;
    Addr pc;
    std::string detail;     //!< disassembly / tag / context info
};

/** Receiver interface for pipeline events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceRecord &rec) = 0;
};

/** Collects records in memory (tests, programmatic analysis). */
class VectorTraceSink : public TraceSink
{
  public:
    void record(const TraceRecord &rec) override
    {
        records.push_back(rec);
    }

    std::vector<TraceRecord> records;
};

/** Streams records to a FILE (human-readable pipeline viewer). */
class FileTraceSink : public TraceSink
{
  public:
    explicit FileTraceSink(std::FILE *out) : out(out) {}

    void
    record(const TraceRecord &rec) override
    {
        std::fprintf(out, "%8llu  %-9s #%-6llu %#8llx  %s\n",
                     static_cast<unsigned long long>(rec.cycle),
                     pipeEventName(rec.event),
                     static_cast<unsigned long long>(rec.seq),
                     static_cast<unsigned long long>(rec.pc),
                     rec.detail.c_str());
    }

  private:
    std::FILE *out;
};

} // namespace polypath

#endif // POLYPATH_CORE_TRACE_HH
