/**
 * @file
 * Path contexts and the CTX manager's context table (§3.2.6, Fig. 7).
 *
 * A PathContext is one live *leaf* of the branch tree: a fetch stream
 * with its own fetch PC, CTX tag, speculative global history, RAS copy,
 * trace cursor and RegMap. The tag of a leaf evolves as it fetches past
 * predicted branches; divergent branches retire the leaf and spawn two
 * children.
 */

#ifndef POLYPATH_CORE_PATH_CONTEXT_HH
#define POLYPATH_CORE_PATH_CONTEXT_HH

#include <memory>

#include "arch/branch_trace.hh"
#include "common/types.hh"
#include "core/ras.hh"
#include "ctx/ctx_tag.hh"
#include "rename/regmap.hh"

namespace polypath
{

/** One live fetch path. */
struct PathContext
{
    u32 id = 0;
    CtxTag tag;

    Addr fetchPc = 0;

    /** Still fetching? (false after HALT or while a child of an
     *  un-renamed divergence is parked). */
    bool fetchStopped = false;

    /** Live: not yet killed by a branch resolution. */
    bool live = true;

    /** First cycle this path may fetch (redirect latency modelling). */
    Cycle fetchStart = 0;

    /** Speculatively updated global branch history (per §4.2). */
    u64 ghr = 0;

    /** This path's private return-address stack. */
    std::unique_ptr<ReturnAddressStack> ras;

    /** Position in the committed branch trace (oracle/verification). */
    TraceCursor cursor;

    /**
     * The path's register mapping table. Children of a divergence are
     * created without one; the divergent branch hands over / clones its
     * parent's map when it passes the rename stage, which is always
     * before any child instruction renames.
     */
    std::unique_ptr<RegMap> regMap;

    /** Creation order; breaks fetch-priority ties deterministically. */
    u64 createSeq = 0;

    /** Divergences where this path took the non-predicted direction
     *  (fetch-priority key for FetchPolicy::PredictedFirst). */
    unsigned nonPredictedEdges = 0;

    /** Tree depth of the current tag (fetch-priority key). */
    unsigned depth() const { return tag.depth(); }
};

using PathContextPtr = std::shared_ptr<PathContext>;

} // namespace polypath

#endif // POLYPATH_CORE_PATH_CONTEXT_HH
