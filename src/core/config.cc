#include "config.hh"

namespace polypath
{

SimConfig
SimConfig::monopath()
{
    SimConfig cfg;
    cfg.predictor = PredictorKind::Gshare;
    cfg.confidence = ConfidenceKind::AlwaysHigh;
    cfg.maxDivergences = 0;
    return cfg;
}

SimConfig
SimConfig::seeJrs()
{
    SimConfig cfg;
    cfg.predictor = PredictorKind::Gshare;
    cfg.confidence = ConfidenceKind::Jrs;
    cfg.maxDivergences = -1;
    return cfg;
}

SimConfig
SimConfig::seeOracleConfidence()
{
    SimConfig cfg;
    cfg.predictor = PredictorKind::Gshare;
    cfg.confidence = ConfidenceKind::Oracle;
    cfg.maxDivergences = -1;
    return cfg;
}

SimConfig
SimConfig::oraclePrediction()
{
    SimConfig cfg;
    cfg.predictor = PredictorKind::Oracle;
    cfg.confidence = ConfidenceKind::AlwaysHigh;
    cfg.maxDivergences = 0;
    return cfg;
}

SimConfig
SimConfig::dualPathJrs()
{
    SimConfig cfg = seeJrs();
    cfg.maxDivergences = 1;
    return cfg;
}

SimConfig
SimConfig::dualPathOracleConfidence()
{
    SimConfig cfg = seeOracleConfidence();
    cfg.maxDivergences = 1;
    return cfg;
}

SimConfig
SimConfig::seeAdaptiveJrs()
{
    SimConfig cfg = seeJrs();
    cfg.confidence = ConfidenceKind::AdaptiveJrs;
    return cfg;
}

std::string
SimConfig::categoryName() const
{
    std::string name;
    switch (predictor) {
      case PredictorKind::Gshare: name = "gshare"; break;
      case PredictorKind::Bimodal: name = "bimodal"; break;
      case PredictorKind::Combining: name = "combining"; break;
      case PredictorKind::Oracle: name = "oracle"; break;
      case PredictorKind::AlwaysTaken: name = "taken"; break;
    }
    if (predictor == PredictorKind::Oracle &&
        confidence == ConfidenceKind::AlwaysHigh) {
        return name;
    }
    switch (confidence) {
      case ConfidenceKind::AlwaysHigh: name += "/monopath"; break;
      case ConfidenceKind::Jrs: name += "/JRS"; break;
      case ConfidenceKind::Oracle: name += "/oracle"; break;
      case ConfidenceKind::AlwaysLow: name += "/eager"; break;
      case ConfidenceKind::AdaptiveJrs: name += "/JRS-adaptive"; break;
    }
    if (maxDivergences == 1)
        name += "/dual-path";
    return name;
}

} // namespace polypath
