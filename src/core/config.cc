#include "config.hh"

#include <sstream>

namespace polypath
{

SimConfig
SimConfig::monopath()
{
    SimConfig cfg;
    cfg.predictor = PredictorKind::Gshare;
    cfg.confidence = ConfidenceKind::AlwaysHigh;
    cfg.maxDivergences = 0;
    return cfg;
}

SimConfig
SimConfig::seeJrs()
{
    SimConfig cfg;
    cfg.predictor = PredictorKind::Gshare;
    cfg.confidence = ConfidenceKind::Jrs;
    cfg.maxDivergences = -1;
    return cfg;
}

SimConfig
SimConfig::seeOracleConfidence()
{
    SimConfig cfg;
    cfg.predictor = PredictorKind::Gshare;
    cfg.confidence = ConfidenceKind::Oracle;
    cfg.maxDivergences = -1;
    return cfg;
}

SimConfig
SimConfig::oraclePrediction()
{
    SimConfig cfg;
    cfg.predictor = PredictorKind::Oracle;
    cfg.confidence = ConfidenceKind::AlwaysHigh;
    cfg.maxDivergences = 0;
    return cfg;
}

SimConfig
SimConfig::dualPathJrs()
{
    SimConfig cfg = seeJrs();
    cfg.maxDivergences = 1;
    return cfg;
}

SimConfig
SimConfig::dualPathOracleConfidence()
{
    SimConfig cfg = seeOracleConfidence();
    cfg.maxDivergences = 1;
    return cfg;
}

SimConfig
SimConfig::seeAdaptiveJrs()
{
    SimConfig cfg = seeJrs();
    cfg.confidence = ConfidenceKind::AdaptiveJrs;
    return cfg;
}

std::string
SimConfig::categoryName() const
{
    std::string name;
    switch (predictor) {
      case PredictorKind::Gshare: name = "gshare"; break;
      case PredictorKind::Bimodal: name = "bimodal"; break;
      case PredictorKind::Combining: name = "combining"; break;
      case PredictorKind::Oracle: name = "oracle"; break;
      case PredictorKind::AlwaysTaken: name = "taken"; break;
    }
    if (predictor == PredictorKind::Oracle &&
        confidence == ConfidenceKind::AlwaysHigh) {
        return name;
    }
    switch (confidence) {
      case ConfidenceKind::AlwaysHigh: name += "/monopath"; break;
      case ConfidenceKind::Jrs: name += "/JRS"; break;
      case ConfidenceKind::Oracle: name += "/oracle"; break;
      case ConfidenceKind::AlwaysLow: name += "/eager"; break;
      case ConfidenceKind::AdaptiveJrs: name += "/JRS-adaptive"; break;
    }
    if (maxDivergences == 1)
        name += "/dual-path";
    return name;
}

std::string
SimConfig::serialize() const
{
    std::ostringstream out;
    out << "fetchWidth " << fetchWidth << '\n'
        << "renameWidth " << renameWidth << '\n'
        << "commitWidth " << commitWidth << '\n'
        << "windowSize " << windowSize << '\n'
        << "frontendStages " << frontendStages << '\n'
        << "numIntAlu0 " << numIntAlu0 << '\n'
        << "numIntAlu1 " << numIntAlu1 << '\n'
        << "numFpAdd " << numFpAdd << '\n'
        << "numFpMul " << numFpMul << '\n'
        << "numMemPorts " << numMemPorts << '\n'
        << "tagWidth " << tagWidth << '\n'
        << "maxActivePaths " << maxActivePaths << '\n'
        << "maxDivergences " << maxDivergences << '\n'
        << "predictor " << static_cast<unsigned>(predictor) << '\n'
        << "historyBits " << historyBits << '\n'
        << "speculativeHistoryUpdate " << speculativeHistoryUpdate << '\n'
        << "confidence " << static_cast<unsigned>(confidence) << '\n'
        << "jrsCounterBits " << jrsCounterBits << '\n'
        << "jrsThreshold " << jrsThreshold << '\n'
        << "enhancedConfidenceIndex " << enhancedConfidenceIndex << '\n'
        // Doubles are printed as hex floats: exact round-trip, no
        // locale or precision surprises in the cache key.
        << "adaptivePvnFloor " << std::hexfloat << adaptivePvnFloor
        << std::defaultfloat << '\n'
        << "adaptiveWindowEvents " << adaptiveWindowEvents << '\n'
        << "trainAtResolution " << trainAtResolution << '\n'
        << "fetchPolicy " << static_cast<unsigned>(fetchPolicy) << '\n'
        << "rasDepth " << rasDepth << '\n'
        << "dcache.perfect " << dcache.perfect << '\n'
        << "dcache.sizeBytes " << dcache.sizeBytes << '\n'
        << "dcache.lineBytes " << dcache.lineBytes << '\n'
        << "dcache.ways " << dcache.ways << '\n'
        << "dcache.missLatency " << dcache.missLatency << '\n'
        << "numPhysRegs " << numPhysRegs << '\n'
        << "maxCycles " << maxCycles << '\n'
        << "verify " << verify << '\n'
        << "predecode " << predecode << '\n'
        << "profileBranches " << profileBranches << '\n'
        << "bugCorruptStoreAbove " << bugCorruptStoreAbove << '\n'
        << "selfCheckInterval " << selfCheckInterval << '\n';
    return out.str();
}

} // namespace polypath
