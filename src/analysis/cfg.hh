/**
 * @file
 * Control-flow graph construction over an assembled Program.
 *
 * The code image is decoded once into a CodeView, partitioned into
 * basic blocks at branch targets and after control transfers, and
 * connected with typed edges:
 *
 *   Fallthrough      sequential flow (incl. the not-taken branch arm)
 *   Taken            conditional/unconditional branch to its target
 *   Call             JSR to its callee entry
 *   CallFallthrough  JSR to its return point (pc + 4) — the edge the
 *                    intraprocedural analyses traverse instead of
 *                    following the call
 *
 * RET and HALT terminate a block with no static successors. Targets
 * that land outside the code image (or on a misaligned address) are
 * reported through the DiagnosticEngine during construction and get no
 * edge.
 */

#ifndef POLYPATH_ANALYSIS_CFG_HH
#define POLYPATH_ANALYSIS_CFG_HH

#include <vector>

#include "analysis/diagnostics.hh"
#include "common/types.hh"
#include "isa/instr.hh"

namespace polypath
{

struct Program;

/** A Program's code image decoded for analysis. */
struct CodeView
{
    Addr codeBase = 0;
    Addr entry = 0;
    std::vector<Instr> instrs;

    static CodeView decode(const Program &program);

    size_t size() const { return instrs.size(); }
    Addr pcOf(size_t idx) const { return codeBase + 4 * idx; }

    /** True when @p pc is a word-aligned address inside the code. */
    bool
    contains(Addr pc) const
    {
        return pc >= codeBase && pc < codeBase + 4 * instrs.size() &&
               pc % 4 == 0;
    }

    size_t indexOf(Addr pc) const { return (pc - codeBase) / 4; }
};

enum class EdgeKind : u8
{
    Fallthrough,
    Taken,
    Call,
    CallFallthrough,
};

struct CfgEdge
{
    EdgeKind kind;
    u32 to;     //!< successor block id
};

/** Maximal straight-line run of instructions [first, last]. */
struct BasicBlock
{
    u32 id = 0;
    size_t first = 0;           //!< index of the first instruction
    size_t last = 0;            //!< index of the last instruction
    std::vector<CfgEdge> succs;
    std::vector<u32> preds;     //!< predecessor block ids (any kind)

    /** Set when the block can run past the end of the code image. */
    bool fallsOffEnd = false;
};

class Cfg
{
  public:
    /**
     * Build the CFG for @p code. Out-of-range and misaligned control
     * targets are reported to @p diags (and the edge is dropped).
     */
    Cfg(const CodeView &code, DiagnosticEngine &diags);

    const std::vector<BasicBlock> &blocks() const { return blockList; }
    const BasicBlock &block(u32 id) const { return blockList[id]; }

    /** Block containing instruction @p instr_index. */
    u32 blockOf(size_t instr_index) const { return blockIds[instr_index]; }

    /** Entry block id (the block containing the entry point). */
    u32 entryBlock() const { return entryId; }

    /**
     * Per-block flag: reachable from the entry block following every
     * edge kind (calls included).
     */
    std::vector<bool> reachableFromEntry() const;

  private:
    std::vector<BasicBlock> blockList;
    std::vector<u32> blockIds;  //!< instr index -> block id
    u32 entryId = 0;
};

} // namespace polypath

#endif // POLYPATH_ANALYSIS_CFG_HH
