#include "constprop.hh"

#include <array>
#include <cstdio>

#include "analysis/dataflow.hh"
#include "isa/semantics.hh"

namespace polypath
{

namespace
{

/** Per-register lattice element. */
struct ConstVal
{
    enum Kind : u8 { Bottom, Const, Top };
    Kind kind = Bottom;
    u64 value = 0;

    bool isConst() const { return kind == Const; }

    static ConstVal constant(u64 v) { return {Const, v}; }
    static ConstVal top() { return {Top, 0}; }

    bool
    operator==(const ConstVal &other) const
    {
        return kind == other.kind &&
               (kind != Const || value == other.value);
    }
};

using ConstState = std::array<ConstVal, numLogRegs>;

/** Meet two lattice elements (Bottom is the identity). */
ConstVal
meet(const ConstVal &a, const ConstVal &b)
{
    if (a.kind == ConstVal::Bottom)
        return b;
    if (b.kind == ConstVal::Bottom)
        return a;
    if (a.kind == ConstVal::Top || b.kind == ConstVal::Top)
        return ConstVal::top();
    return a.value == b.value ? a : ConstVal::top();
}

/** True when @p op is modelled by computeResult() for constprop. */
bool
isPureAlu(const Instr &instr)
{
    const OpInfo &info = instr.info();
    if (info.isLoad || info.isStore || info.isCondBranch ||
        info.isUncondBranch || info.isReturn || info.isHalt ||
        info.isInvalid) {
        return false;
    }
    return instr.op != Opcode::NOP;
}

struct ConstProblem
{
    using State = ConstState;

    const CodeView &code;
    const Cfg &cfg;
    const DefUseAnalysis &defuse;

    State
    boundaryState() const
    {
        State s;
        // Registers other than the hardwired zeros start as "unknown":
        // the simulator zeroes them, but deriving addresses from that
        // convention is exactly what the lint should not bless. Callee
        // routines inherit whatever the caller left, also unknown.
        for (ConstVal &v : s)
            v = ConstVal::top();
        s[intZeroReg] = ConstVal::constant(0);
        s[fpZeroReg] = ConstVal::constant(0);
        return s;
    }

    State initialState() const { return State{}; }    // all Bottom

    bool
    join(State &into, const State &from) const
    {
        bool changed = false;
        for (unsigned r = 0; r < numLogRegs; ++r) {
            ConstVal next = meet(into[r], from[r]);
            if (!(next == into[r])) {
                into[r] = next;
                changed = true;
            }
        }
        return changed;
    }

    void
    transfer(u32 node, State &s) const
    {
        const BasicBlock &blk = cfg.block(node);
        for (size_t i = blk.first; i <= blk.last; ++i)
            transferInstr(i, node, s);
    }

    void
    transferInstr(size_t i, u32 node, State &s) const
    {
        const Instr &instr = code.instrs[i];
        const OpInfo &info = instr.info();

        if (info.isCall) {
            const RoutineInfo *callee = defuse.routineAt(calleeOf(node));
            RegSet clobbered =
                callee ? callee->mayDefs : allRegsMask;
            if (LogReg link = instr.dst(); link != noReg)
                clobbered |= regBit(link);
            for (unsigned r = 0; r < numLogRegs; ++r)
                if ((clobbered & regBit(r)) && !isZeroReg(r))
                    s[r] = ConstVal::top();
            return;
        }

        LogReg dst = instr.dst();
        if (dst == noReg)
            return;

        if (isPureAlu(instr)) {
            ConstVal a = srcVal(instr.src1(), s);
            ConstVal b = srcVal(instr.src2(), s);
            if (a.isConst() && b.isConst()) {
                s[dst] = ConstVal::constant(computeResult(
                    instr, a.value, b.value, code.pcOf(i)));
                return;
            }
        }
        s[dst] = ConstVal::top();
    }

    static ConstVal
    srcVal(LogReg reg, const State &s)
    {
        // Missing operands contribute a harmless constant zero.
        return reg == noReg ? ConstVal::constant(0) : s[reg];
    }

    static u32
    calleeOf(const Cfg &cfg, u32 node)
    {
        for (const CfgEdge &edge : cfg.block(node).succs)
            if (edge.kind == EdgeKind::Call)
                return edge.to;
        return 0xffffffff;
    }

    u32 calleeOf(u32 node) const { return calleeOf(cfg, node); }
};

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%#llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // anonymous namespace

void
runConstProp(const CodeView &code, const Cfg &cfg,
             const DefUseAnalysis &defuse, DiagnosticEngine &diags)
{
    for (const RoutineInfo &func : defuse.routines()) {
        std::vector<std::vector<u32>> preds(cfg.blocks().size());
        std::vector<bool> inFunc(cfg.blocks().size(), false);
        for (u32 id : func.blocks)
            inFunc[id] = true;
        for (u32 id : func.blocks) {
            for (const CfgEdge &edge : cfg.block(id).succs) {
                if (edge.kind != EdgeKind::Call && inFunc[edge.to])
                    preds[edge.to].push_back(id);
            }
        }

        ConstProblem problem{code, cfg, defuse};
        std::vector<ConstState> in, out;
        solveDataflow(func.blocks, preds, problem, in, out);

        // Final walk: flag quadword accesses whose effective address is
        // statically derivable and provably misaligned.
        for (u32 id : func.blocks) {
            ConstState s = in[id];
            const BasicBlock &blk = cfg.block(id);
            for (size_t i = blk.first; i <= blk.last; ++i) {
                const Instr &instr = code.instrs[i];
                if (instr.isMem() && instr.accessSize() == 8) {
                    ConstVal base = s[instr.src1()];
                    if (base.isConst()) {
                        Addr ea = effectiveAddr(instr, base.value);
                        if (ea % 8 != 0) {
                            diags.report(
                                DiagCode::MisalignedAccess, i,
                                "'" + instr.toString() +
                                    "' accesses " + hexAddr(ea) +
                                    ", which is not 8-byte aligned");
                        }
                    }
                }
                problem.transferInstr(i, id, s);
            }
        }
    }
}

} // namespace polypath
