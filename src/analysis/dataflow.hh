/**
 * @file
 * A small generic worklist engine for iterative dataflow analysis.
 *
 * The engine is direction-agnostic: callers hand it a subgraph as an
 * adjacency view (predecessor ids for a forward problem, successor ids
 * for a backward one) plus a Problem object providing the lattice
 * operations. Clients in this library: definite assignment and
 * upward-exposed-use summaries (defuse.cc), liveness (defuse.cc) and
 * constant propagation (constprop.cc).
 *
 * Problem requirements:
 *
 *   using State = ...;                 // a semilattice element
 *   State boundaryState();             // IN at the boundary node
 *   State initialState();              // optimistic initial state
 *   void transfer(u32 node, State &s); // s := OUT of node given IN s
 *   bool join(State &into, const State &from);  // confluence;
 *                                      // returns true if into changed
 *
 * Monotone transfer + optimistic initial state give the usual MFP
 * solution for both may- (union) and must- (intersection) problems.
 *
 * Nodes are dense u32 ids into the caller's CFG; the engine only visits
 * the ids listed in @p nodes, so analyses over a function's subgraph
 * simply pass that function's block set.
 */

#ifndef POLYPATH_ANALYSIS_DATAFLOW_HH
#define POLYPATH_ANALYSIS_DATAFLOW_HH

#include <vector>

#include "common/types.hh"

namespace polypath
{

/**
 * Iterate @p problem to a fixpoint over @p nodes.
 *
 * @param nodes      node ids to visit; nodes.front() is the boundary
 *                   node (the entry for a forward problem, the sink
 *                   for a backward one)
 * @param inputsOf   per node id, the ids whose OUT feeds this node's IN
 *                   (preds forward, succs backward), already restricted
 *                   to the subgraph
 * @param problem    the dataflow problem (see file comment)
 * @param in         out-param: fixpoint IN state per node id
 * @param out        out-param: fixpoint OUT state per node id
 *
 * The in/out vectors are sized to the full id space (inputsOf.size())
 * so block ids index directly; unvisited nodes keep initialState().
 */
template <typename Problem>
void
solveDataflow(const std::vector<u32> &nodes,
              const std::vector<std::vector<u32>> &inputsOf,
              Problem &problem,
              std::vector<typename Problem::State> &in,
              std::vector<typename Problem::State> &out)
{
    size_t id_space = inputsOf.size();
    in.assign(id_space, problem.initialState());
    out.assign(id_space, problem.initialState());
    if (nodes.empty())
        return;

    // Dependents: which visited nodes consume each node's OUT.
    std::vector<std::vector<u32>> dependents(id_space);
    std::vector<bool> visited(id_space, false);
    for (u32 node : nodes)
        visited[node] = true;
    for (u32 node : nodes)
        for (u32 input : inputsOf[node])
            if (visited[input])
                dependents[input].push_back(node);

    std::vector<bool> queued(id_space, false);
    // Seed in reverse so the boundary node pops first; for reducible
    // graphs this approximates a topological sweep and converges in
    // few passes.
    std::vector<u32> worklist(nodes.rbegin(), nodes.rend());
    for (u32 node : nodes)
        queued[node] = true;

    u32 boundary = nodes.front();
    while (!worklist.empty()) {
        u32 node = worklist.back();
        worklist.pop_back();
        queued[node] = false;

        typename Problem::State state = node == boundary
                                            ? problem.boundaryState()
                                            : problem.initialState();
        for (u32 input : inputsOf[node])
            problem.join(state, out[input]);
        in[node] = state;

        problem.transfer(node, state);
        if (problem.join(out[node], state)) {
            for (u32 dep : dependents[node]) {
                if (!queued[dep]) {
                    queued[dep] = true;
                    worklist.push_back(dep);
                }
            }
        }
    }
}

} // namespace polypath

#endif // POLYPATH_ANALYSIS_DATAFLOW_HH
