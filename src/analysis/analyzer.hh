/**
 * @file
 * The top-level static analyzer over assembled Programs.
 *
 * analyzeProgram() decodes the code image, builds the CFG, and runs the
 * full check battery (see docs/ANALYSIS.md for the catalogue):
 *
 *   structure     bad-entry, branch-out-of-range, misaligned-target,
 *                 fall-off-end, missing-halt, reachable-invalid,
 *                 unreachable-code
 *   dataflow      use-before-def, ret-at-entry, dead-write
 *   constants     misaligned-access
 *
 * Exposed through the pplint CLI, the ppsim --verify pre-run gate, and
 * directly to tests/embedders.
 */

#ifndef POLYPATH_ANALYSIS_ANALYZER_HH
#define POLYPATH_ANALYSIS_ANALYZER_HH

#include "analysis/diagnostics.hh"

namespace polypath
{

struct Program;

struct AnalysisOptions
{
    /** Run the liveness pass and emit dead-write notes. */
    bool deadWrites = true;
};

/** Everything one analysis run produced. */
struct AnalysisResult
{
    DiagnosticEngine diags;

    // Structural statistics (for reporting and tests).
    size_t numInstrs = 0;
    size_t numBlocks = 0;
    size_t numRoutines = 0;

    bool ok() const { return !diags.hasErrors(); }
};

/** Run every check over @p program. */
AnalysisResult analyzeProgram(const Program &program,
                              const AnalysisOptions &options = {});

} // namespace polypath

#endif // POLYPATH_ANALYSIS_ANALYZER_HH
