/**
 * @file
 * Structured diagnostics for the static-analysis subsystem.
 *
 * Every finding carries a machine-readable code, a severity, the program
 * counter and instruction index it anchors to, and — when the program
 * came through the textual assembler — the source line. The engine
 * renders the collected findings as human-readable text or as JSON (for
 * tooling), and drives pplint's exit status via hasErrors().
 */

#ifndef POLYPATH_ANALYSIS_DIAGNOSTICS_HH
#define POLYPATH_ANALYSIS_DIAGNOSTICS_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace polypath
{

struct Program;

/** How bad a finding is; errors gate pplint/--verify exit status. */
enum class Severity : u8
{
    Note,       //!< stylistic / informational
    Warning,    //!< suspicious but cannot corrupt the correct path
    Error,      //!< the program is wrong (or will trap at commit)
};

/** Machine-readable diagnostic catalogue (see docs/ANALYSIS.md). */
enum class DiagCode : u8
{
    BadEntry,           //!< entry point outside code or misaligned
    BranchOutOfRange,   //!< control target outside the code image
    MisalignedTarget,   //!< control target not word aligned
    ReachableInvalid,   //!< INVALID opcode on an executable path
    FallOffEnd,         //!< a path runs past the last instruction
    MissingHalt,        //!< no HALT reachable from the entry point
    RetAtEntry,         //!< RET reachable in the entry routine
    UnreachableCode,    //!< block no path from the entry can reach
    UseBeforeDef,       //!< register read before any path defines it
    MisalignedAccess,   //!< statically-derivable unaligned quad access
    DeadWrite,          //!< register written but never read afterwards
    NumDiagCodes
};

/** Stable kebab-case identifier, e.g. "use-before-def". */
const char *diagCodeName(DiagCode code);

/** Default severity of @p code. */
Severity diagSeverity(DiagCode code);

/** Printable severity ("note" / "warning" / "error"). */
const char *severityName(Severity severity);

/** One analysis finding. */
struct Diagnostic
{
    DiagCode code;
    Severity severity;
    Addr pc = 0;            //!< address of the anchoring instruction
    size_t instrIndex = 0;  //!< index into Program::code
    u32 srcLine = 0;        //!< source line when known, else 0
    std::string message;
};

/**
 * Collects findings for one program and renders them. The engine copies
 * the location info it needs, so it may outlive the Program.
 */
class DiagnosticEngine
{
  public:
    explicit DiagnosticEngine(const Program &program);

    /**
     * Record a finding anchored at instruction @p instr_index. The
     * source line is looked up from the program automatically.
     */
    void report(DiagCode code, size_t instr_index, std::string message);

    /** Record a finding with no instruction anchor (e.g. BadEntry). */
    void reportGlobal(DiagCode code, std::string message);

    const std::vector<Diagnostic> &diagnostics() const { return diags; }

    size_t count(Severity severity) const;
    bool hasErrors() const { return count(Severity::Error) > 0; }

    /** Sort findings by program order (pc, then code). */
    void sort();

    /**
     * Render as human-readable text, one finding per line:
     *   <name>[:<line>]: <severity>: <message> [<code>] @ <pc>
     * Findings below @p min_severity are skipped.
     */
    std::string renderText(Severity min_severity = Severity::Note) const;

    /** Render the findings plus a summary object as a JSON document. */
    std::string renderJson() const;

  private:
    std::string progName;
    std::string unit;           //!< sourceName, or progName without one
    Addr codeBase = 0;
    std::vector<u32> srcLines;
    std::vector<Diagnostic> diags;
};

} // namespace polypath

#endif // POLYPATH_ANALYSIS_DIAGNOSTICS_HH
