/**
 * @file
 * Register definedness and liveness analysis over the CFG.
 *
 * The code is partitioned into routines (the entry routine plus every
 * JSR target reachable from it); per routine, a forward must-analysis
 * computes the registers *definitely written* at each point, and a
 * backward may-analysis computes liveness. Calls are handled with
 * routine summaries iterated to a whole-program fixpoint:
 *
 *   defs       registers written on every path entry -> RET
 *   mayDefs    registers written on some path (incl. callees)
 *   upExposed  registers a routine (or its callees) may read before
 *              writing — its de-facto arguments
 *
 * Findings:
 *   use-before-def (error)  a register read in the entry routine, or
 *                           required by a callee at a JSR site, that no
 *                           path from the entry point has written
 *   ret-at-entry   (error)  RET reachable in the entry routine (there
 *                           is no caller to return to)
 *   dead-write     (note)   a register written but never read again
 */

#ifndef POLYPATH_ANALYSIS_DEFUSE_HH
#define POLYPATH_ANALYSIS_DEFUSE_HH

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/diagnostics.hh"

namespace polypath
{

/** Bitset over the unified logical register namespace (64 regs). */
using RegSet = u64;

constexpr RegSet
regBit(LogReg reg)
{
    return RegSet(1) << reg;
}

constexpr RegSet zeroRegMask = regBit(intZeroReg) | regBit(fpZeroReg);
constexpr RegSet allRegsMask = ~RegSet(0);

/** Printable register name in the unified namespace ("r5", "f2"). */
std::string regName(LogReg reg);

/** Summary of one routine (the entry routine or a JSR target). */
struct RoutineInfo
{
    u32 entryBlock = 0;
    bool isEntryRoutine = false;
    bool hasRet = false;

    /** Blocks reachable from entryBlock without following Call edges. */
    std::vector<u32> blocks;

    RegSet defs = allRegsMask;  //!< definitely written at every RET
    RegSet mayDefs = 0;         //!< possibly written (incl. callees)
    RegSet upExposed = 0;       //!< possibly read before written
};

class DefUseAnalysis
{
  public:
    DefUseAnalysis(const CodeView &code, const Cfg &cfg);

    /**
     * Solve the summaries and report findings into @p diags. Dead-write
     * notes are skipped when @p dead_writes is false.
     */
    void run(DiagnosticEngine &diags, bool dead_writes = true);

    /** Solved routine summaries (valid after run()). */
    const std::vector<RoutineInfo> &routines() const { return funcs; }

    /** The routine whose entry block is @p block, or nullptr. */
    const RoutineInfo *routineAt(u32 block) const;

  private:
    void discoverRoutines();
    void buildLocalGraph(const RoutineInfo &func,
                         std::vector<std::vector<u32>> &preds,
                         std::vector<std::vector<u32>> &succs) const;
    const RoutineInfo *calleeOf(u32 block) const;

    /** One summary-update pass over @p func; true if it changed. */
    bool updateSummaries(RoutineInfo &func);

    void reportUseBeforeDef(const RoutineInfo &func,
                            DiagnosticEngine &diags) const;
    void reportDeadWrites(const RoutineInfo &func,
                          DiagnosticEngine &diags) const;

    /** Definedness solve over @p func; returns per-block IN sets. */
    std::vector<RegSet> solveDefined(const RoutineInfo &func) const;

    /** Liveness solve over @p func; returns per-block live-out sets. */
    std::vector<RegSet> solveLive(const RoutineInfo &func) const;

    const CodeView &code;
    const Cfg &cfg;
    std::vector<RoutineInfo> funcs;
    std::vector<s32> funcOfEntry;   //!< block id -> funcs index or -1
};

} // namespace polypath

#endif // POLYPATH_ANALYSIS_DEFUSE_HH
