#include "defuse.hh"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "analysis/dataflow.hh"

namespace polypath
{

namespace
{

std::string
hexPc(Addr pc)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%#llx",
                  static_cast<unsigned long long>(pc));
    return buf;
}

/** List the register names in @p set ("r5, r16"). */
std::string
regSetNames(RegSet set)
{
    std::string out;
    for (LogReg r = 0; r < numLogRegs; ++r) {
        if (set & regBit(r)) {
            if (!out.empty())
                out += ", ";
            out += regName(r);
        }
    }
    return out;
}

/** Forward must-analysis: registers definitely written. */
struct DefinedProblem
{
    using State = RegSet;

    const CodeView &code;
    const Cfg &cfg;
    const DefUseAnalysis &analysis;

    State boundaryState() const { return zeroRegMask; }
    State initialState() const { return allRegsMask; }

    bool
    join(State &into, const State &from) const
    {
        State next = into & from;
        bool changed = next != into;
        into = next;
        return changed;
    }

    void
    transfer(u32 node, State &s) const
    {
        const BasicBlock &blk = cfg.block(node);
        for (size_t i = blk.first; i <= blk.last; ++i) {
            const Instr &instr = code.instrs[i];
            if (instr.info().isCall) {
                if (LogReg link = instr.dst(); link != noReg)
                    s |= regBit(link);
                // Unknown callees (out-of-range call target) are
                // assumed to define nothing.
                if (const RoutineInfo *callee = analysis.routineAt(
                        calleeBlock(cfg, node))) {
                    s |= callee->defs;
                }
            } else if (LogReg dst = instr.dst(); dst != noReg) {
                s |= regBit(dst);
            }
        }
    }

    static constexpr u32 badBlock = 0xffffffff;

    static u32
    calleeBlock(const Cfg &cfg, u32 node)
    {
        for (const CfgEdge &edge : cfg.block(node).succs)
            if (edge.kind == EdgeKind::Call)
                return edge.to;
        return badBlock;
    }
};

/** Backward may-analysis: registers possibly read later (liveness). */
struct LiveProblem
{
    using State = RegSet;

    const CodeView &code;
    const Cfg &cfg;
    const DefUseAnalysis &analysis;

    State boundaryState() const { return 0; }
    State initialState() const { return 0; }

    bool
    join(State &into, const State &from) const
    {
        State next = into | from;
        bool changed = next != into;
        into = next;
        return changed;
    }

    // s arrives as live-out of the block, leaves as live-in.
    void
    transfer(u32 node, State &s) const
    {
        const BasicBlock &blk = cfg.block(node);
        const Instr &term = code.instrs[blk.last];
        // A RET returns to an unknown caller; a block that can run off
        // the code end is already an error elsewhere. Both make every
        // register conservatively live.
        if (term.info().isReturn || blk.fallsOffEnd)
            s = allRegsMask;
        for (size_t i = blk.last + 1; i-- > blk.first;) {
            const Instr &instr = code.instrs[i];
            if (instr.info().isCall) {
                const RoutineInfo *callee = analysis.routineAt(
                    DefinedProblem::calleeBlock(cfg, node));
                RegSet callee_defs = callee ? callee->defs : 0;
                RegSet callee_uses =
                    callee ? callee->upExposed : allRegsMask;
                s = (s & ~callee_defs) | callee_uses;
                if (LogReg link = instr.dst(); link != noReg)
                    s &= ~regBit(link);
            } else {
                if (LogReg dst = instr.dst(); dst != noReg)
                    s &= ~regBit(dst);
                LogReg srcs[2];
                unsigned n = instr.srcRegs(srcs);
                for (unsigned k = 0; k < n; ++k)
                    s |= regBit(srcs[k]);
            }
        }
    }
};

} // anonymous namespace

std::string
regName(LogReg reg)
{
    if (reg >= 32)
        return "f" + std::to_string(reg - 32);
    return "r" + std::to_string(reg);
}

DefUseAnalysis::DefUseAnalysis(const CodeView &code_view,
                               const Cfg &cfg_ref)
    : code(code_view), cfg(cfg_ref)
{
    funcOfEntry.assign(cfg.blocks().size(), -1);
}

const RoutineInfo *
DefUseAnalysis::routineAt(u32 block) const
{
    if (block >= funcOfEntry.size() || funcOfEntry[block] < 0)
        return nullptr;
    return &funcs[funcOfEntry[block]];
}

const RoutineInfo *
DefUseAnalysis::calleeOf(u32 block) const
{
    return routineAt(DefinedProblem::calleeBlock(cfg, block));
}

void
DefUseAnalysis::discoverRoutines()
{
    if (cfg.blocks().empty())
        return;

    std::vector<u32> pending{cfg.entryBlock()};
    auto addRoutine = [&](u32 entry, bool is_main) {
        if (funcOfEntry[entry] >= 0)
            return;
        funcOfEntry[entry] = static_cast<s32>(funcs.size());
        RoutineInfo func;
        func.entryBlock = entry;
        func.isEntryRoutine = is_main;
        funcs.push_back(std::move(func));
        pending.push_back(entry);
    };

    funcOfEntry[cfg.entryBlock()] = 0;
    RoutineInfo main_func;
    main_func.entryBlock = cfg.entryBlock();
    main_func.isEntryRoutine = true;
    funcs.push_back(std::move(main_func));

    // Trace each routine's local blocks; new Call targets found along
    // the way become routines themselves. Note addRoutine() may grow
    // funcs, so the routine under construction is indexed afresh.
    for (size_t next = 0; next < pending.size(); ++next) {
        u32 entry = pending[next];
        size_t func_idx = static_cast<size_t>(funcOfEntry[entry]);
        std::vector<u32> local_blocks;
        std::vector<bool> seen(cfg.blocks().size(), false);
        std::vector<u32> stack{entry};
        seen[entry] = true;
        while (!stack.empty()) {
            u32 id = stack.back();
            stack.pop_back();
            local_blocks.push_back(id);
            for (const CfgEdge &edge : cfg.block(id).succs) {
                if (edge.kind == EdgeKind::Call) {
                    addRoutine(edge.to, false);
                    continue;
                }
                if (!seen[edge.to]) {
                    seen[edge.to] = true;
                    stack.push_back(edge.to);
                }
            }
        }
        // Entry block first, the rest in program order for stable
        // reporting.
        std::sort(local_blocks.begin() + 1, local_blocks.end());
        funcs[func_idx].blocks = std::move(local_blocks);
    }
}

void
DefUseAnalysis::buildLocalGraph(const RoutineInfo &func,
                                std::vector<std::vector<u32>> &preds,
                                std::vector<std::vector<u32>> &succs)
    const
{
    preds.assign(cfg.blocks().size(), {});
    succs.assign(cfg.blocks().size(), {});
    std::vector<bool> inFunc(cfg.blocks().size(), false);
    for (u32 id : func.blocks)
        inFunc[id] = true;
    for (u32 id : func.blocks) {
        for (const CfgEdge &edge : cfg.block(id).succs) {
            if (edge.kind == EdgeKind::Call || !inFunc[edge.to])
                continue;
            succs[id].push_back(edge.to);
            preds[edge.to].push_back(id);
        }
    }
}

std::vector<RegSet>
DefUseAnalysis::solveDefined(const RoutineInfo &func) const
{
    std::vector<std::vector<u32>> preds, succs;
    buildLocalGraph(func, preds, succs);
    DefinedProblem problem{code, cfg, *this};
    std::vector<RegSet> in, out;
    solveDataflow(func.blocks, preds, problem, in, out);
    return in;
}

std::vector<RegSet>
DefUseAnalysis::solveLive(const RoutineInfo &func) const
{
    std::vector<std::vector<u32>> preds, succs;
    buildLocalGraph(func, preds, succs);
    LiveProblem problem{code, cfg, *this};
    std::vector<RegSet> in, out;
    // Backward: the solver's "inputs" are the successors, its "IN" is
    // the block's live-out.
    solveDataflow(func.blocks, succs, problem, in, out);
    return in;
}

bool
DefUseAnalysis::updateSummaries(RoutineInfo &func)
{
    std::vector<RegSet> block_in = solveDefined(func);

    RegSet new_defs = allRegsMask;
    RegSet new_may = 0;
    RegSet new_up = 0;
    bool has_ret = false;

    for (u32 id : func.blocks) {
        RegSet defined = block_in[id];
        const BasicBlock &blk = cfg.block(id);
        for (size_t i = blk.first; i <= blk.last; ++i) {
            const Instr &instr = code.instrs[i];
            if (instr.info().isCall) {
                const RoutineInfo *callee = calleeOf(id);
                RegSet link = instr.dst() != noReg
                                  ? regBit(instr.dst()) : 0;
                RegSet callee_up =
                    callee ? callee->upExposed : 0;
                new_up |= callee_up & ~(defined | link);
                defined |= link;
                defined |= callee ? callee->defs : 0;
                new_may |= link;
                new_may |= callee ? callee->mayDefs : allRegsMask;
                continue;
            }
            LogReg srcs[2];
            unsigned n = instr.srcRegs(srcs);
            for (unsigned k = 0; k < n; ++k)
                new_up |= regBit(srcs[k]) & ~defined;
            if (LogReg dst = instr.dst(); dst != noReg) {
                defined |= regBit(dst);
                new_may |= regBit(dst);
            }
            if (instr.info().isReturn) {
                has_ret = true;
                new_defs &= defined;
            }
        }
    }

    if (!has_ret)
        new_defs = allRegsMask;
    new_defs &= ~zeroRegMask;   // zero regs are constants, not defs
    new_up &= ~zeroRegMask;

    bool changed = new_defs != func.defs || new_may != func.mayDefs ||
                   new_up != func.upExposed || has_ret != func.hasRet;
    func.defs = new_defs;
    func.mayDefs = new_may;
    func.upExposed = new_up;
    func.hasRet = has_ret;
    return changed;
}

void
DefUseAnalysis::reportUseBeforeDef(const RoutineInfo &func,
                                   DiagnosticEngine &diags) const
{
    std::vector<RegSet> block_in = solveDefined(func);

    for (u32 id : func.blocks) {
        RegSet defined = block_in[id];
        const BasicBlock &blk = cfg.block(id);
        for (size_t i = blk.first; i <= blk.last; ++i) {
            const Instr &instr = code.instrs[i];
            if (instr.info().isCall) {
                const RoutineInfo *callee = calleeOf(id);
                RegSet link = instr.dst() != noReg
                                  ? regBit(instr.dst()) : 0;
                RegSet missing =
                    (callee ? callee->upExposed : 0) & ~(defined | link);
                if (missing) {
                    diags.report(
                        DiagCode::UseBeforeDef, i,
                        "call requires " + regSetNames(missing) +
                            " but no path from the entry point has "
                            "written " +
                            (std::popcount(missing) == 1 ? "it"
                                                         : "them") +
                            " (routine at " +
                            hexPc(code.pcOf(
                                cfg.block(callee ? callee->entryBlock
                                              : id).first)) +
                            " reads them before writing)");
                }
                defined |= link;
                defined |= callee ? callee->defs : 0;
                continue;
            }
            LogReg srcs[2];
            unsigned n = instr.srcRegs(srcs);
            for (unsigned k = 0; k < n; ++k) {
                RegSet bit = regBit(srcs[k]) & ~zeroRegMask;
                if (bit & ~defined) {
                    diags.report(
                        DiagCode::UseBeforeDef, i,
                        "register " + regName(srcs[k]) +
                            " read by '" + instr.toString() +
                            "' but not written on every path from the "
                            "entry point");
                    // One report per register per block is enough.
                    defined |= bit;
                }
            }
            if (LogReg dst = instr.dst(); dst != noReg)
                defined |= regBit(dst);
            if (instr.info().isReturn) {
                diags.report(DiagCode::RetAtEntry, i,
                             "'" + instr.toString() +
                                 "' reachable in the entry routine, "
                                 "which has no caller to return to");
            }
        }
    }
}

void
DefUseAnalysis::reportDeadWrites(const RoutineInfo &func,
                                 DiagnosticEngine &diags) const
{
    std::vector<RegSet> live_out = solveLive(func);

    for (u32 id : func.blocks) {
        const BasicBlock &blk = cfg.block(id);
        // Walk backwards so per-instruction live-after is available.
        RegSet live = live_out[id];
        const Instr &term = code.instrs[blk.last];
        if (term.info().isReturn || blk.fallsOffEnd)
            live = allRegsMask;
        for (size_t i = blk.last + 1; i-- > blk.first;) {
            const Instr &instr = code.instrs[i];
            LogReg dst = instr.dst();
            if (instr.info().isCall) {
                const RoutineInfo *callee = calleeOf(id);
                RegSet callee_defs = callee ? callee->defs : 0;
                RegSet callee_uses =
                    callee ? callee->upExposed : allRegsMask;
                live = (live & ~callee_defs) | callee_uses;
                if (dst != noReg)
                    live &= ~regBit(dst);
                continue;
            }
            if (dst != noReg && !(live & regBit(dst))) {
                diags.report(DiagCode::DeadWrite, i,
                             "value written to " + regName(dst) +
                                 " by '" + instr.toString() +
                                 "' is never read");
            }
            if (dst != noReg)
                live &= ~regBit(dst);
            LogReg srcs[2];
            unsigned n = instr.srcRegs(srcs);
            for (unsigned k = 0; k < n; ++k)
                live |= regBit(srcs[k]);
        }
    }
}

void
DefUseAnalysis::run(DiagnosticEngine &diags, bool dead_writes)
{
    discoverRoutines();
    if (funcs.empty())
        return;

    // Whole-program summary fixpoint: defs shrinks, mayDefs/upExposed
    // grow; both lattices are finite so this terminates quickly.
    bool changed = true;
    unsigned rounds = 0;
    while (changed && rounds++ < 64) {
        changed = false;
        for (RoutineInfo &func : funcs)
            changed = updateSummaries(func) || changed;
    }

    // use-before-def and ret-at-entry are only decidable in the entry
    // routine: a callee's upward-exposed reads are its arguments and
    // are judged at each call site during the entry routine's walk.
    for (const RoutineInfo &func : funcs) {
        if (func.isEntryRoutine)
            reportUseBeforeDef(func, diags);
        if (dead_writes)
            reportDeadWrites(func, diags);
    }
}

} // namespace polypath
