#include "cfg.hh"

#include <cstdio>

#include "asmkit/program.hh"
#include "isa/decoded_program.hh"

namespace polypath
{

namespace
{

std::string
hexPc(Addr pc)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%#llx",
                  static_cast<unsigned long long>(pc));
    return buf;
}

} // anonymous namespace

CodeView
CodeView::decode(const Program &program)
{
    CodeView view;
    view.codeBase = program.codeBase;
    view.entry = program.entry;
    view.instrs.reserve(program.code.size());
    if (const DecodedProgram *table = program.decoded()) {
        // Reuse the predecode table built at program load.
        for (size_t i = 0; i < table->size(); ++i)
            view.instrs.push_back(table->at(i).instr);
    } else {
        for (u32 word : program.code)
            view.instrs.push_back(decodeInstr(word));
    }
    return view;
}

Cfg::Cfg(const CodeView &code, DiagnosticEngine &diags)
{
    size_t n = code.size();
    blockIds.assign(n, 0);
    if (n == 0)
        return;

    // --- pass 1: find block leaders ------------------------------------
    std::vector<bool> leader(n, false);
    leader[0] = true;
    if (code.contains(code.entry))
        leader[code.indexOf(code.entry)] = true;
    for (size_t i = 0; i < n; ++i) {
        const Instr &instr = code.instrs[i];
        if (!instr.endsBlock())
            continue;
        if (i + 1 < n)
            leader[i + 1] = true;
        const OpInfo &info = instr.info();
        if (info.isCondBranch || info.isUncondBranch) {
            Addr target = instr.targetFrom(code.pcOf(i));
            if (code.contains(target))
                leader[code.indexOf(target)] = true;
        }
    }

    // --- pass 2: materialise blocks ------------------------------------
    for (size_t i = 0; i < n; ++i) {
        if (leader[i]) {
            BasicBlock blk;
            blk.id = static_cast<u32>(blockList.size());
            blk.first = i;
            blockList.push_back(blk);
        }
        blockIds[i] = blockList.back().id;
        blockList.back().last = i;
        // A non-leader instruction after a terminator cannot happen:
        // endsBlock() instructions force a leader at i + 1.
    }

    // --- pass 3: edges ---------------------------------------------------
    auto addEdge = [&](u32 from, EdgeKind kind, size_t to_idx) {
        u32 to = blockIds[to_idx];
        blockList[from].succs.push_back({kind, to});
        blockList[to].preds.push_back(from);
    };

    for (BasicBlock &blk : blockList) {
        size_t i = blk.last;
        const Instr &instr = code.instrs[i];
        const OpInfo &info = instr.info();
        Addr pc = code.pcOf(i);

        if (info.isCondBranch || info.isUncondBranch) {
            Addr target = instr.targetFrom(pc);
            if (target % 4 != 0) {
                diags.report(DiagCode::MisalignedTarget, i,
                             std::string(info.name) + " at " + hexPc(pc) +
                                 " targets misaligned address " +
                                 hexPc(target));
            } else if (!code.contains(target)) {
                diags.report(DiagCode::BranchOutOfRange, i,
                             std::string(info.name) + " at " + hexPc(pc) +
                                 " targets " + hexPc(target) +
                                 ", outside the code image");
            } else {
                addEdge(blk.id, info.isCall ? EdgeKind::Call
                                            : EdgeKind::Taken,
                        code.indexOf(target));
            }
        }

        if (instr.fallsThrough()) {
            if (i + 1 < code.size()) {
                addEdge(blk.id,
                        info.isCall ? EdgeKind::CallFallthrough
                                    : EdgeKind::Fallthrough,
                        i + 1);
            } else {
                blk.fallsOffEnd = true;
            }
        }
    }

    if (code.contains(code.entry))
        entryId = blockIds[code.indexOf(code.entry)];
}

std::vector<bool>
Cfg::reachableFromEntry() const
{
    std::vector<bool> seen(blockList.size(), false);
    if (blockList.empty())
        return seen;
    std::vector<u32> stack{entryId};
    seen[entryId] = true;
    while (!stack.empty()) {
        u32 id = stack.back();
        stack.pop_back();
        for (const CfgEdge &edge : blockList[id].succs) {
            if (!seen[edge.to]) {
                seen[edge.to] = true;
                stack.push_back(edge.to);
            }
        }
    }
    return seen;
}

} // namespace polypath
