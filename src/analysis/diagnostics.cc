#include "diagnostics.hh"

#include <algorithm>
#include <cstdio>

#include "asmkit/program.hh"
#include "common/logging.hh"

namespace polypath
{

namespace
{

struct DiagCodeInfo
{
    const char *name;
    Severity severity;
};

const DiagCodeInfo diagCodeTable[] = {
    {"bad-entry", Severity::Error},
    {"branch-out-of-range", Severity::Error},
    {"misaligned-target", Severity::Error},
    {"reachable-invalid", Severity::Error},
    {"fall-off-end", Severity::Error},
    {"missing-halt", Severity::Error},
    {"ret-at-entry", Severity::Error},
    {"unreachable-code", Severity::Warning},
    {"use-before-def", Severity::Error},
    {"misaligned-access", Severity::Error},
    {"dead-write", Severity::Note},
};

static_assert(sizeof(diagCodeTable) / sizeof(diagCodeTable[0]) ==
                  static_cast<size_t>(DiagCode::NumDiagCodes),
              "diagCodeTable out of sync with DiagCode enum");

const DiagCodeInfo &
codeInfo(DiagCode code)
{
    auto idx = static_cast<size_t>(code);
    panic_if(idx >= static_cast<size_t>(DiagCode::NumDiagCodes),
             "bad DiagCode %zu", idx);
    return diagCodeTable[idx];
}

std::string
jsonEscape(const std::string &str)
{
    std::string out;
    out.reserve(str.size());
    for (char c : str) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // anonymous namespace

const char *
diagCodeName(DiagCode code)
{
    return codeInfo(code).name;
}

Severity
diagSeverity(DiagCode code)
{
    return codeInfo(code).severity;
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

DiagnosticEngine::DiagnosticEngine(const Program &program)
    : progName(program.name),
      unit(!program.sourceName.empty() ? program.sourceName
                                       : program.name),
      codeBase(program.codeBase), srcLines(program.srcLines)
{}

void
DiagnosticEngine::report(DiagCode code, size_t instr_index,
                         std::string message)
{
    Diagnostic d;
    d.code = code;
    d.severity = diagSeverity(code);
    d.instrIndex = instr_index;
    d.pc = codeBase + 4 * instr_index;
    d.srcLine =
        instr_index < srcLines.size() ? srcLines[instr_index] : 0;
    d.message = std::move(message);
    diags.push_back(std::move(d));
}

void
DiagnosticEngine::reportGlobal(DiagCode code, std::string message)
{
    Diagnostic d;
    d.code = code;
    d.severity = diagSeverity(code);
    d.pc = 0;
    d.message = std::move(message);
    diags.push_back(std::move(d));
}

size_t
DiagnosticEngine::count(Severity severity) const
{
    size_t n = 0;
    for (const Diagnostic &d : diags)
        n += d.severity == severity ? 1 : 0;
    return n;
}

void
DiagnosticEngine::sort()
{
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.pc != b.pc)
                             return a.pc < b.pc;
                         return a.code < b.code;
                     });
}

std::string
DiagnosticEngine::renderText(Severity min_severity) const
{
    std::string out;
    for (const Diagnostic &d : diags) {
        if (d.severity < min_severity)
            continue;
        char head[96];
        if (d.srcLine > 0) {
            std::snprintf(head, sizeof(head), "%s:%u:", unit.c_str(),
                          d.srcLine);
        } else {
            std::snprintf(head, sizeof(head), "%s:", unit.c_str());
        }
        char tail[64];
        std::snprintf(tail, sizeof(tail), " [%s] @ %#llx",
                      diagCodeName(d.code),
                      static_cast<unsigned long long>(d.pc));
        out += std::string(head) + " " + severityName(d.severity) +
               ": " + d.message + tail + "\n";
    }
    return out;
}

std::string
DiagnosticEngine::renderJson() const
{
    std::string out = "{\n  \"program\": \"" + jsonEscape(progName) +
                      "\",\n  \"diagnostics\": [";
    bool first = true;
    for (const Diagnostic &d : diags) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "\n    {\"code\": \"%s\", \"severity\": \"%s\", "
                      "\"pc\": %llu, \"index\": %zu, \"line\": %u, ",
                      diagCodeName(d.code), severityName(d.severity),
                      static_cast<unsigned long long>(d.pc),
                      d.instrIndex, d.srcLine);
        out += (first ? "" : ",") + std::string(buf) +
               "\"message\": \"" + jsonEscape(d.message) + "\"}";
        first = false;
    }
    char summary[128];
    std::snprintf(summary, sizeof(summary),
                  "\n  ],\n  \"errors\": %zu, \"warnings\": %zu, "
                  "\"notes\": %zu\n}\n",
                  count(Severity::Error), count(Severity::Warning),
                  count(Severity::Note));
    out += summary;
    return out;
}

} // namespace polypath
