#include "analyzer.hh"

#include <cstdio>

#include "analysis/cfg.hh"
#include "analysis/constprop.hh"
#include "analysis/defuse.hh"
#include "asmkit/program.hh"

namespace polypath
{

namespace
{

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%#llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

/**
 * Structural checks that only need the CFG and the reachability bitmap:
 * reachable-invalid, fall-off-end, unreachable-code and missing-halt.
 */
void
checkStructure(const CodeView &code, const Cfg &cfg,
               DiagnosticEngine &diags)
{
    std::vector<bool> reachable = cfg.reachableFromEntry();
    bool halt_reachable = false;

    for (const BasicBlock &blk : cfg.blocks()) {
        if (!reachable[blk.id]) {
            size_t count = blk.last - blk.first + 1;
            char desc[64];
            std::snprintf(desc, sizeof(desc),
                          " (%zu instruction%s)", count,
                          count == 1 ? "" : "s");
            diags.report(DiagCode::UnreachableCode, blk.first,
                         "code at " + hexAddr(code.pcOf(blk.first)) +
                             " is unreachable from the entry point" +
                             desc);
            continue;
        }

        for (size_t i = blk.first; i <= blk.last; ++i) {
            const OpInfo &info = code.instrs[i].info();
            if (info.isInvalid) {
                diags.report(DiagCode::ReachableInvalid, i,
                             "invalid instruction word is reachable "
                             "from the entry point");
            }
            halt_reachable |= info.isHalt;
        }

        if (blk.fallsOffEnd) {
            diags.report(DiagCode::FallOffEnd, blk.last,
                         "execution can run past the last instruction "
                         "('" + code.instrs[blk.last].toString() +
                             "' does not end the program)");
        }
    }

    if (!halt_reachable) {
        diags.reportGlobal(DiagCode::MissingHalt,
                           "no HALT instruction is reachable from the "
                           "entry point");
    }
}

} // anonymous namespace

AnalysisResult
analyzeProgram(const Program &program, const AnalysisOptions &options)
{
    AnalysisResult result{DiagnosticEngine(program)};
    DiagnosticEngine &diags = result.diags;

    CodeView code = CodeView::decode(program);
    result.numInstrs = code.size();

    // The entry point must land on an instruction; without that there is
    // nothing meaningful to analyze.
    if (code.instrs.empty()) {
        diags.reportGlobal(DiagCode::BadEntry,
                           "program contains no code");
        return result;
    }
    if (!code.contains(program.entry)) {
        diags.reportGlobal(
            DiagCode::BadEntry,
            "entry point " + hexAddr(program.entry) +
                (program.entry % 4 != 0
                     ? " is not word aligned"
                     : " is outside the code image [" +
                           hexAddr(code.codeBase) + ", " +
                           hexAddr(code.codeBase + 4 * code.size()) +
                           ")"));
        return result;
    }

    // CFG construction reports branch-out-of-range / misaligned-target.
    Cfg cfg(code, diags);
    result.numBlocks = cfg.blocks().size();

    checkStructure(code, cfg, diags);

    DefUseAnalysis defuse(code, cfg);
    defuse.run(diags, options.deadWrites);
    result.numRoutines = defuse.routines().size();

    runConstProp(code, cfg, defuse, diags);

    diags.sort();
    return result;
}

} // namespace polypath
