/**
 * @file
 * Sparse conditional-free constant propagation over the CFG, used to
 * statically derive effective addresses and flag misaligned quadword
 * accesses (LDQ/STQ/FLD/FST to an address that is provably not 8-byte
 * aligned).
 *
 * The lattice per register is the usual three levels: unvisited
 * (bottom), a known 64-bit constant, or unknown (top). Transfer reuses
 * computeResult() from the ISA semantics so derived values match the
 * interpreter bit-for-bit (including shift-amount masking). Calls
 * clobber the callee's may-defined register summary from DefUseAnalysis.
 */

#ifndef POLYPATH_ANALYSIS_CONSTPROP_HH
#define POLYPATH_ANALYSIS_CONSTPROP_HH

#include "analysis/cfg.hh"
#include "analysis/defuse.hh"
#include "analysis/diagnostics.hh"

namespace polypath
{

/** Run the constant-propagation checks, reporting misaligned-access. */
void runConstProp(const CodeView &code, const Cfg &cfg,
                  const DefUseAnalysis &defuse, DiagnosticEngine &diags);

} // namespace polypath

#endif // POLYPATH_ANALYSIS_CONSTPROP_HH
