/**
 * @file
 * Lockstep differential oracle: golden Interpreter vs timing core.
 *
 * The digest-style check in sim/machine.cc answers only "did the run
 * match?" — a bare panic on mismatch. This oracle instead runs the
 * golden interpreter *in lockstep* with the timing core's committed
 * instruction stream (captured by a CommitRecorder trace sink) and, on
 * the first divergence, reports exactly where and how the two machines
 * disagree: the committed-instruction index, both PCs with
 * disassembly, and an architectural register/memory diff. That is the
 * difference between "seed 1234 failed" and a debuggable bug report.
 *
 * Detectable divergence classes (DivergenceKind):
 *   - CommitPc:       the core committed a different instruction than
 *                     the golden run executed at that position;
 *   - ExtraCommit:    the core kept committing after the golden run
 *                     halted;
 *   - MissingCommits: the core halted before committing everything the
 *                     golden run executed;
 *   - FinalRegs/FinalMem: the streams matched but the final
 *                     architectural state does not;
 *   - CycleCap:       the core exceeded its cycle budget (a probable
 *                     hang, reported instead of aborting the process).
 *
 * Internal invariant violations inside the core (panic/fatal) still
 * abort — those are simulator bugs of a different kind, and a trashed
 * core cannot be trusted to keep producing a commit stream anyway.
 */

#ifndef POLYPATH_TESTKIT_ORACLE_HH
#define POLYPATH_TESTKIT_ORACLE_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/interpreter.hh"
#include "asmkit/program.hh"
#include "core/config.hh"
#include "core/stats.hh"
#include "memsys/memory.hh"

namespace polypath
{
namespace testkit
{

/** What kind of disagreement the oracle found first. */
enum class DivergenceKind : u8
{
    None,
    CommitPc,
    ExtraCommit,
    MissingCommits,
    FinalRegs,
    FinalMem,
    CycleCap,
};

/** Printable kind name. */
const char *divergenceKindName(DivergenceKind kind);

/** One architectural register the two machines disagree on. */
struct RegDiff
{
    LogReg reg;
    u64 core;
    u64 golden;
};

/** A fully located first divergence. */
struct Divergence
{
    DivergenceKind kind = DivergenceKind::None;

    /** Committed-instruction index of the first disagreement (for the
     *  final-state kinds: the total committed count). */
    u64 commitIndex = 0;

    Addr corePc = 0;            //!< what the core committed
    Addr goldenPc = 0;          //!< what the golden run executed
    std::string coreDisasm;
    std::string goldenDisasm;

    std::vector<RegDiff> regDiffs;
    std::vector<SparseMemory::ByteDiff> memDiffs;

    bool diverged() const { return kind != DivergenceKind::None; }

    /** Multi-line human-readable report ("" when !diverged()). */
    std::string report() const;
};

/** Oracle run limits and report sizing. */
struct OracleOptions
{
    u64 maxGoldenInstrs = 100'000'000ull;

    /** Timing-run cycle cap; 0 = auto (as sim/machine.cc computes). */
    u64 maxCycles = 0;

    /** Cap on reported register/memory diff entries. */
    size_t maxDiffEntries = 8;
};

/** Outcome of one differential run. */
struct OracleResult
{
    Divergence divergence;
    SimStats stats;             //!< timing-core statistics
    u64 goldenInstructions = 0;

    bool ok() const { return !divergence.diverged(); }
};

/**
 * The stream half of the oracle, separated out so it can be unit
 * tested against synthetic (deliberately corrupted) commit streams
 * without a timing core. Feed committed PCs in order; the checker
 * steps its own golden interpreter one instruction per commit.
 */
class LockstepChecker
{
  public:
    explicit LockstepChecker(const Program &program,
                             u64 max_golden_instrs = 100'000'000ull);
    ~LockstepChecker();

    /**
     * Record that the core committed the instruction at @p pc.
     * @return false on the first divergence (stop feeding).
     */
    bool onCommit(Addr pc);

    /**
     * The core's run ended; verify it committed everything and that
     * the final architectural state matches. No-op after a stream
     * divergence.
     */
    void finish(const ArchState &core_regs, const SparseMemory &core_mem,
                size_t max_diff_entries);

    const Divergence &divergence() const { return div; }
    u64 committed() const { return commits; }
    const Interpreter &interp() const { return *golden; }

  private:
    const Program &program;
    std::unique_ptr<Interpreter> golden;
    u64 maxGoldenInstrs;
    u64 commits = 0;
    Divergence div;
};

/** Registers where @p core and @p golden disagree (zero regs skipped). */
std::vector<RegDiff> diffRegs(const ArchState &core,
                              const ArchState &golden,
                              size_t max_entries = 0);

/** Disassembly of the instruction at @p pc, or "<outside text>". */
std::string disasmAt(const Program &program, Addr pc);

/**
 * Run the timing core for @p cfg against the golden interpreter in
 * lockstep and report the first divergence. @p cfg's own verify flag
 * is ignored (the oracle replaces the digest check with its richer
 * one). The overload without @p golden runs the reference itself.
 */
OracleResult runOracle(const Program &program, SimConfig cfg,
                       const InterpResult &golden,
                       const OracleOptions &opts = {});
OracleResult runOracle(const Program &program, SimConfig cfg,
                       const OracleOptions &opts = {});

} // namespace testkit
} // namespace polypath

#endif // POLYPATH_TESTKIT_ORACLE_HH
