#include "testkit/reduce.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace polypath
{
namespace testkit
{
namespace
{

/** Shared state for one reduction session. */
struct Session
{
    const ReduceOptions &opts;
    DivergenceKind targetKind;
    unsigned runs = 0;
    Divergence lastDivergence;

    /** Does @p plan still exhibit the target failure? */
    bool
    fails(const GenPlan &plan)
    {
        Program program = emitPlan(plan);
        OracleResult result =
            runOracle(program, opts.cfg, opts.oracle);
        ++runs;
        if (result.divergence.kind != targetKind)
            return false;
        lastDivergence = result.divergence;
        return true;
    }

    void
    note(const char *what, const GenPlan &plan)
    {
        if (!opts.verbose)
            return;
        std::fprintf(stderr, "reduce: %s -> %zu body ops, %u trips\n",
                     what, plan.body.size(), plan.outerTrips);
    }
};

/** ddmin-style pass: remove chunks of body ops while the failure
 *  persists. Returns true if anything was removed. */
bool
reduceBody(Session &session, GenPlan &plan)
{
    bool shrunk = false;
    size_t chunk = std::max<size_t>(plan.body.size() / 2, 1);
    while (!plan.body.empty()) {
        bool removed = false;
        for (size_t at = 0; at < plan.body.size();) {
            GenPlan candidate = plan;
            size_t end = std::min(at + chunk, candidate.body.size());
            candidate.body.erase(candidate.body.begin() + at,
                                 candidate.body.begin() + end);
            if (session.fails(candidate)) {
                plan = std::move(candidate);
                removed = true;
                session.note("drop ops", plan);
                // Retry the same index: the list shifted left.
            } else {
                at += chunk;
            }
        }
        shrunk |= removed;
        if (chunk > 1)
            chunk /= 2;         // finer granularity next sweep
        else if (!removed)
            break;              // single-op sweep with no progress: done
    }
    return shrunk;
}

/** Flatten inner loops into their nested ops and shrink trip counts. */
bool
reduceInnerLoops(Session &session, GenPlan &plan)
{
    bool shrunk = false;
    for (size_t i = 0; i < plan.body.size(); ++i) {
        if (plan.body[i].kind != GenOpKind::InnerLoop)
            continue;
        // First try replacing the whole loop with its body, once.
        GenPlan flat = plan;
        std::vector<GenOp> nested = flat.body[i].nested;
        flat.body.erase(flat.body.begin() + i);
        flat.body.insert(flat.body.begin() + i, nested.begin(),
                         nested.end());
        if (session.fails(flat)) {
            plan = std::move(flat);
            shrunk = true;
            session.note("flatten inner loop", plan);
            continue;
        }
        // Keep the loop but try a single trip.
        if (plan.body[i].amount > 1) {
            GenPlan once = plan;
            once.body[i].amount = 1;
            if (session.fails(once)) {
                plan = std::move(once);
                shrunk = true;
                session.note("inner trips -> 1", plan);
            }
        }
    }
    return shrunk;
}

/** Find the smallest failing outer trip count by upward probing. */
bool
reduceTrips(Session &session, GenPlan &plan)
{
    if (plan.outerTrips <= 1)
        return false;
    for (unsigned trips = 1; trips < plan.outerTrips; trips *= 2) {
        GenPlan candidate = plan;
        candidate.outerTrips = trips;
        if (session.fails(candidate)) {
            plan = std::move(candidate);
            session.note("outer trips", plan);
            return true;
        }
    }
    return false;
}

/** Drop optional scaffolding (xorshift, final store, arena seed). */
bool
reduceScaffolding(Session &session, GenPlan &plan)
{
    bool shrunk = false;
    if (plan.keepXorshift) {
        GenPlan candidate = plan;
        candidate.keepXorshift = false;
        if (session.fails(candidate)) {
            plan = std::move(candidate);
            shrunk = true;
            session.note("drop xorshift", plan);
        }
    }
    if (plan.keepFinalStore) {
        GenPlan candidate = plan;
        candidate.keepFinalStore = false;
        if (session.fails(candidate)) {
            plan = std::move(candidate);
            shrunk = true;
            session.note("drop final store", plan);
        }
    }
    if (!plan.arenaInit.empty()) {
        GenPlan candidate = plan;
        candidate.arenaInit.clear();
        if (session.fails(candidate)) {
            plan = std::move(candidate);
            shrunk = true;
            session.note("drop arena seed", plan);
        }
    }
    return shrunk;
}

} // anonymous namespace

ReduceResult
reduceFailure(const GenPlan &initial, const ReduceOptions &opts)
{
    ReduceResult result;
    result.plan = initial;
    result.program = emitPlan(initial);
    result.staticBefore = result.program.codeSize();

    // Establish the failure kind we must preserve.
    OracleResult first = runOracle(result.program, opts.cfg, opts.oracle);
    if (!first.divergence.diverged()) {
        result.failedInitially = false;
        result.staticAfter = result.staticBefore;
        result.oracleRuns = 1;
        return result;
    }

    Session session{opts, first.divergence.kind, 1, first.divergence};
    GenPlan plan = initial;
    for (unsigned round = 0; round < opts.maxRounds; ++round) {
        bool progress = false;
        progress |= reduceTrips(session, plan);
        progress |= reduceBody(session, plan);
        progress |= reduceInnerLoops(session, plan);
        progress |= reduceScaffolding(session, plan);
        if (!progress)
            break;
    }

    result.plan = plan;
    result.program = emitPlan(plan);
    result.staticAfter = result.program.codeSize();
    result.divergence = session.lastDivergence;
    result.oracleRuns = session.runs;
    return result;
}

} // namespace testkit
} // namespace polypath
