#include "testkit/progen.hh"

#include <utility>

#include "asmkit/assembler.hh"
#include "common/logging.hh"
#include "common/prng.hh"
#include "workloads/workload_util.hh"

namespace polypath
{
namespace testkit
{
namespace
{

using namespace wreg;

/** Weighted draw of one body operation kind. */
GenOpKind
pickKind(Prng &prng, const ProgenOptions &opts, bool allow_structured)
{
    // Structured kinds (branches, calls, inner loops) are excluded
    // inside inner-loop bodies so nesting stays one level deep and
    // every branch in an inner body is the loop's own backward branch.
    const std::pair<GenOpKind, unsigned> table[] = {
        {GenOpKind::Alu, opts.wAlu},
        {GenOpKind::Shift, opts.wShift},
        {GenOpKind::Load, opts.wLoad},
        {GenOpKind::Store, opts.wStore},
        {GenOpKind::FwdBranch, allow_structured ? opts.wFwdBranch : 0},
        {GenOpKind::Mix, opts.wMix},
        {GenOpKind::Call, allow_structured ? opts.wCall : 0},
        {GenOpKind::Accum, opts.wAccum},
        {GenOpKind::Fp, opts.wFp},
        {GenOpKind::OutputStore, opts.wOutputStore},
        {GenOpKind::InnerLoop, allow_structured ? opts.wInnerLoop : 0},
    };
    u64 total = 0;
    for (const auto &[kind, weight] : table)
        total += weight;
    fatal_if(total == 0, "progen: all grammar weights are zero");
    u64 roll = prng.nextBelow(total);
    for (const auto &[kind, weight] : table) {
        if (roll < weight)
            return kind;
        roll -= weight;
    }
    panic("unreachable");
}

/** Random temporary register (t0..t7 = logical 1..8). */
u8
tempReg(Prng &prng)
{
    return static_cast<u8>(1 + prng.nextBelow(8));
}

GenOp
buildOp(Prng &prng, const ProgenOptions &opts, bool allow_structured)
{
    GenOp op;
    op.kind = pickKind(prng, opts, allow_structured);
    op.r1 = tempReg(prng);
    op.r2 = tempReg(prng);
    op.rd = tempReg(prng);
    switch (op.kind) {
      case GenOpKind::Alu:
        op.sub = static_cast<u8>(prng.nextBelow(5));
        break;
      case GenOpKind::Shift:
        op.amount = static_cast<u32>(prng.nextBelow(8));
        break;
      case GenOpKind::FwdBranch:
        op.sub = static_cast<u8>(prng.nextBelow(3));
        op.amount = static_cast<u32>(1 + prng.nextBelow(opts.fwdSkipMax));
        break;
      case GenOpKind::Fp:
        op.sub = static_cast<u8>(prng.nextBelow(5));
        break;
      case GenOpKind::OutputStore:
        op.amount =
            static_cast<u32>(8 * prng.nextBelow(outputBytes / 8));
        break;
      case GenOpKind::InnerLoop: {
        op.amount = static_cast<u32>(1 + prng.nextBelow(opts.innerTripsMax));
        unsigned nested = 1 + prng.nextBelow(opts.innerBodyMaxOps);
        for (unsigned i = 0; i < nested; ++i)
            op.nested.push_back(buildOp(prng, opts, false));
        break;
      }
      default:
        break;
    }
    return op;
}

/** Worst-case dynamic instructions one execution of @p op can take. */
u64
opMaxDynamic(const GenOp &op)
{
    switch (op.kind) {
      case GenOpKind::Load:
      case GenOpKind::Store:
        return 3;                       // andi + add + ldq/stq
      case GenOpKind::Call:
        return 1 + 3;                   // jsr + straight-line leaf
      case GenOpKind::InnerLoop: {
        u64 body = 0;
        for (const GenOp &nested : op.nested)
            body += opMaxDynamic(nested);
        return 1 + op.amount * (body + 2);  // li + trips*(body+addi+bgt)
      }
      default:
        return 1;
    }
}

/** Emit one body operation (shared by outer and inner bodies). */
void
emitOp(Assembler &a, const GenPlan &plan, const GenOp &op,
       Label leaf, u32 arena_mask)
{
    switch (op.kind) {
      case GenOpKind::Alu:
        switch (op.sub % 5) {
          case 0: a.add(op.r1, op.r2, op.rd); break;
          case 1: a.sub(op.r1, op.r2, op.rd); break;
          case 2: a.xor_(op.r1, op.r2, op.rd); break;
          case 3: a.mul(op.r1, op.r2, op.rd); break;
          default: a.cmplt(op.r1, op.r2, op.rd); break;
        }
        break;
      case GenOpKind::Shift:
        a.srli(op.r1, static_cast<s32>(op.amount & 7), op.rd);
        break;
      case GenOpKind::Load:
        a.andi(op.r1, static_cast<s32>(arena_mask), op.rd);
        a.add(s1, op.rd, op.rd);
        a.ldq(op.rd, 0, op.rd);
        break;
      case GenOpKind::Store:
        a.andi(op.r1, static_cast<s32>(arena_mask), op.rd);
        a.add(s1, op.rd, op.rd);
        a.stq(op.r2, 0, op.rd);
        break;
      case GenOpKind::Mix:
        a.xor_(op.r1, s2, op.rd);
        break;
      case GenOpKind::Call:
        a.jsr(ra, leaf);
        break;
      case GenOpKind::Accum:
        a.add(s3, op.r1, s3);
        break;
      case GenOpKind::Fp:
        switch (op.sub % 5) {
          case 0: a.cvtif(op.r1, op.rd & 3); break;
          case 1: a.fadd(op.r1 & 3, op.r2 & 3, op.rd & 3); break;
          case 2: a.fsub(op.r1 & 3, op.r2 & 3, op.rd & 3); break;
          case 3: a.fmul(op.r1 & 3, op.r2 & 3, op.rd & 3); break;
          default: a.fcmplt(op.r1 & 3, op.r2 & 3, op.rd); break;
        }
        break;
      case GenOpKind::OutputStore:
        a.stq(op.r1, static_cast<s32>(op.amount), s5);
        break;
      case GenOpKind::InnerLoop: {
        a.li(s4, op.amount);
        Label top = a.here();
        for (const GenOp &nested : op.nested)
            emitOp(a, plan, nested, leaf, arena_mask);
        a.addi(s4, -1, s4);
        a.bgt(s4, top);
        break;
      }
      case GenOpKind::FwdBranch:
        // Handled by the caller (needs the pending-label bookkeeping);
        // reaching here means a FwdBranch leaked into an inner body.
        panic("progen: FwdBranch emitted outside the outer body");
    }
}

ProgenOptions
smallSweepBase()
{
    ProgenOptions opts;
    opts.outerTripsMin = 60;
    opts.outerTripsMax = 119;
    return opts;
}

} // anonymous namespace

bool
GenPlan::usesKind(GenOpKind kind) const
{
    for (const GenOp &op : body) {
        if (op.kind == kind)
            return true;
        for (const GenOp &nested : op.nested) {
            if (nested.kind == kind)
                return true;
        }
    }
    return false;
}

u64
GenPlan::maxDynamicInstrs() const
{
    u64 body_cost = 0;
    for (const GenOp &op : body)
        body_cost += opMaxDynamic(op);
    u64 per_iter = 2 + body_cost + 1;           // beq + addi ... br
    if (keepXorshift)
        per_iter += 6 + 1;                      // xorshift + checksum fold
    // Generous fixed preamble/tail slack (li expansions, final store,
    // HALT); an overcount only loosens the termination bound.
    return 64 + static_cast<u64>(outerTrips) * per_iter;
}

GenPlan
buildPlan(const ProgenOptions &opts, u64 seed)
{
    fatal_if(opts.bodyMinOps == 0 || opts.bodyMaxOps < opts.bodyMinOps,
             "progen: bad body size range [%u, %u]",
             opts.bodyMinOps, opts.bodyMaxOps);
    fatal_if(opts.outerTripsMin == 0 ||
                 opts.outerTripsMax < opts.outerTripsMin,
             "progen: bad outer trip range [%u, %u]",
             opts.outerTripsMin, opts.outerTripsMax);
    fatal_if(opts.arenaBytes < 16 || (opts.arenaBytes & 7),
             "progen: arenaBytes must be a multiple of 8 and >= 16");

    Prng prng(seed);
    GenPlan plan;
    plan.seed = seed;
    plan.name = opts.name;
    plan.arenaBytes = opts.arenaBytes;
    plan.outerTrips =
        opts.outerTripsMin +
        static_cast<unsigned>(prng.nextBelow(
            opts.outerTripsMax - opts.outerTripsMin + 1));
    plan.xorshiftSeed = prng.next() | 1;
    for (unsigned i = 0; i < opts.arenaInitWords; ++i)
        plan.arenaInit.push_back(prng.next());

    unsigned body_len =
        opts.bodyMinOps +
        static_cast<unsigned>(prng.nextBelow(
            opts.bodyMaxOps - opts.bodyMinOps + 1));
    for (unsigned i = 0; i < body_len; ++i)
        plan.body.push_back(buildOp(prng, opts, true));
    return plan;
}

Program
emitPlan(const GenPlan &plan)
{
    Assembler a;

    Addr arena = a.dZero(plan.arenaBytes);
    for (u64 word : plan.arenaInit)
        a.d64(word);

    emitWorkloadInit(a);
    Label leaf_fn = a.newLabel();

    bool uses_call = plan.usesKind(GenOpKind::Call);
    bool uses_output = plan.usesKind(GenOpKind::OutputStore);
    u32 arena_mask = (plan.arenaBytes - 8) & ~7u;

    a.li(s0, plan.outerTrips);
    a.li(s1, arena);
    if (plan.keepXorshift)
        a.li(s2, plan.xorshiftSeed | 1);
    a.li(s3, 0);
    if (uses_output)
        a.li(s5, outputBase);

    Label outer = a.newLabel();
    Label done = a.newLabel();
    a.bind(outer);
    a.beq(s0, done);
    a.addi(s0, -1, s0);
    if (plan.keepXorshift)
        emitXorshift(a, s2, t0);

    // Forward-branch joins still waiting for their landing site. The
    // distance is measured in body *operations*, exactly like the
    // original ad-hoc generator.
    std::vector<Label> pending;
    std::vector<unsigned> pending_dist;
    auto bind_due = [&]() {
        for (size_t i = 0; i < pending.size();) {
            if (pending_dist[i] == 0) {
                a.bind(pending[i]);
                pending.erase(pending.begin() + i);
                pending_dist.erase(pending_dist.begin() + i);
            } else {
                --pending_dist[i];
                ++i;
            }
        }
    };

    for (const GenOp &op : plan.body) {
        bind_due();
        if (op.kind == GenOpKind::FwdBranch) {
            Label skip = a.newLabel();
            switch (op.sub % 3) {
              case 0: a.beq(op.r1, skip); break;
              case 1: a.blt(op.r1, skip); break;
              default: a.bgt(op.r1, skip); break;
            }
            pending.push_back(skip);
            pending_dist.push_back(op.amount);
        } else {
            emitOp(a, plan, op, leaf_fn, arena_mask);
        }
    }
    for (Label &label : pending)
        a.bind(label);
    if (plan.keepXorshift)
        a.add(s3, t0, s3);
    a.br(outer);

    a.bind(done);
    if (plan.keepFinalStore)
        a.stq(s3, 0, s1);
    a.halt();

    if (uses_call) {
        // Leaf function: a little work, no stack use.
        a.bind(leaf_fn);
        a.addi(v0, 3, v0);
        a.xor_(v0, a0, v0);
        a.ret(ra);
    }

    return a.assemble(plan.name + "_" + std::to_string(plan.seed));
}

Program
generate(const ProgenOptions &opts, u64 seed)
{
    return emitPlan(buildPlan(opts, seed));
}

// --- presets ----------------------------------------------------------

ProgenOptions
presetLegacy()
{
    ProgenOptions opts;     // the defaults *are* the legacy shape
    opts.name = "legacy";
    return opts;
}

ProgenOptions
presetBranchy()
{
    ProgenOptions opts = smallSweepBase();
    opts.name = "branchy";
    opts.wFwdBranch = 6;
    opts.wAlu = 4;
    opts.wMix = 3;
    opts.wCall = 0;
    opts.fwdSkipMax = 4;
    opts.bodyMinOps = 24;
    opts.bodyMaxOps = 48;
    return opts;
}

ProgenOptions
presetMemory()
{
    ProgenOptions opts = smallSweepBase();
    opts.name = "memory";
    opts.wLoad = 5;
    opts.wStore = 5;
    opts.wAlu = 3;
    return opts;
}

ProgenOptions
presetCalls()
{
    ProgenOptions opts = smallSweepBase();
    opts.name = "calls";
    opts.wCall = 6;
    opts.wAlu = 3;
    return opts;
}

ProgenOptions
presetFp()
{
    ProgenOptions opts = smallSweepBase();
    opts.name = "fp";
    opts.wFp = 5;
    opts.wAlu = 3;
    return opts;
}

ProgenOptions
presetMixed()
{
    ProgenOptions opts;
    opts.name = "mixed";
    opts.wAlu = 4;
    opts.wShift = 1;
    opts.wLoad = 2;
    opts.wStore = 2;
    opts.wFwdBranch = 2;
    opts.wMix = 1;
    opts.wCall = 1;
    opts.wAccum = 1;
    opts.wFp = 1;
    opts.wOutputStore = 2;
    opts.wInnerLoop = 1;
    opts.bodyMinOps = 16;
    opts.bodyMaxOps = 32;
    opts.outerTripsMin = 40;
    opts.outerTripsMax = 79;
    return opts;
}

const std::vector<std::string> &
presetNames()
{
    static const std::vector<std::string> names = {
        "legacy", "branchy", "memory", "calls", "fp", "mixed",
    };
    return names;
}

ProgenOptions
presetByName(const std::string &name)
{
    if (name == "legacy")
        return presetLegacy();
    if (name == "branchy")
        return presetBranchy();
    if (name == "memory")
        return presetMemory();
    if (name == "calls")
        return presetCalls();
    if (name == "fp")
        return presetFp();
    if (name == "mixed")
        return presetMixed();
    fatal("unknown progen preset '%s' (have: legacy branchy memory "
          "calls fp mixed)",
          name.c_str());
}

} // namespace testkit
} // namespace polypath
