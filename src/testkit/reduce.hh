/**
 * @file
 * Structural delta-debugging over generator plans.
 *
 * Reduction never edits instruction bytes: it edits the *decision log*
 * (GenPlan) the program was generated from, so every candidate is by
 * construction a valid, terminating program — no reduced artifact can
 * hang, jump off the text segment, or unbalance the call stack. Passes:
 *
 *   1. ddmin over the body operation list (chunks halving to 1);
 *   2. inner loops: flatten to their nested ops, then shrink trips;
 *   3. outer trip count: smallest failing value by downward probing;
 *   4. scaffolding: drop the per-iteration xorshift, the final
 *      checksum store, and the arena pre-seed words.
 *
 * "Still fails" means the lockstep oracle (testkit/oracle.hh) reports
 * a divergence of the same kind as the original failure under the same
 * machine configuration (including fault-injection knobs).
 */

#ifndef POLYPATH_TESTKIT_REDUCE_HH
#define POLYPATH_TESTKIT_REDUCE_HH

#include "core/config.hh"
#include "testkit/oracle.hh"
#include "testkit/progen.hh"

namespace polypath
{
namespace testkit
{

/** Reduction parameters. */
struct ReduceOptions
{
    SimConfig cfg;              //!< configuration that fails (incl. knobs)
    OracleOptions oracle;
    unsigned maxRounds = 16;    //!< outer fixpoint iterations
    bool verbose = false;       //!< progress notes on stderr
};

/** Outcome of a reduction. */
struct ReduceResult
{
    GenPlan plan;               //!< minimal failing plan
    Program program;            //!< emitPlan(plan)
    Divergence divergence;      //!< how the minimal program still fails
    size_t staticBefore = 0;    //!< static instructions, original
    size_t staticAfter = 0;     //!< static instructions, reduced
    unsigned oracleRuns = 0;    //!< total differential runs performed
    bool failedInitially = true;//!< false: the input plan did not fail
};

/** Shrink @p initial while the oracle keeps reporting the failure. */
ReduceResult reduceFailure(const GenPlan &initial,
                           const ReduceOptions &opts);

} // namespace testkit
} // namespace polypath

#endif // POLYPATH_TESTKIT_REDUCE_HH
