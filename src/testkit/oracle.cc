#include "testkit/oracle.hh"

#include <cstdio>

#include "common/logging.hh"
#include "core/core.hh"
#include "core/trace.hh"
#include "isa/instr.hh"

namespace polypath
{
namespace testkit
{
namespace
{

std::string
hex(u64 value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%#llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
regName(LogReg reg)
{
    char buf[8];
    if (reg >= 32)
        std::snprintf(buf, sizeof(buf), "f%u", reg - 32);
    else
        std::snprintf(buf, sizeof(buf), "r%u", reg);
    return buf;
}

} // anonymous namespace

const char *
divergenceKindName(DivergenceKind kind)
{
    switch (kind) {
      case DivergenceKind::None: return "none";
      case DivergenceKind::CommitPc: return "commit-pc";
      case DivergenceKind::ExtraCommit: return "extra-commit";
      case DivergenceKind::MissingCommits: return "missing-commits";
      case DivergenceKind::FinalRegs: return "final-registers";
      case DivergenceKind::FinalMem: return "final-memory";
      case DivergenceKind::CycleCap: return "cycle-cap";
    }
    return "?";
}

std::string
disasmAt(const Program &program, Addr pc)
{
    Addr base = program.codeBase;
    Addr limit = base + 4 * program.code.size();
    if (pc < base || pc >= limit || (pc - base) % 4 != 0)
        return "<outside text>";
    return decodeInstr(program.code[(pc - base) / 4]).toString();
}

std::vector<RegDiff>
diffRegs(const ArchState &core, const ArchState &golden, size_t max_entries)
{
    std::vector<RegDiff> diffs;
    for (LogReg r = 0; r < numLogRegs; ++r) {
        if (isZeroReg(r))
            continue;
        if (core.reg(r) == golden.reg(r))
            continue;
        diffs.push_back({r, core.reg(r), golden.reg(r)});
        if (max_entries && diffs.size() >= max_entries)
            break;
    }
    return diffs;
}

std::string
Divergence::report() const
{
    if (!diverged())
        return "";
    std::string out = "divergence: ";
    out += divergenceKindName(kind);
    out += " at committed instruction #" + std::to_string(commitIndex);
    out += '\n';
    switch (kind) {
      case DivergenceKind::CommitPc:
        out += "  core committed:  pc " + hex(corePc) + "  " +
               coreDisasm + '\n';
        out += "  golden executed: pc " + hex(goldenPc) + "  " +
               goldenDisasm + '\n';
        break;
      case DivergenceKind::ExtraCommit:
        out += "  core committed pc " + hex(corePc) + "  " + coreDisasm +
               " after the golden run halted\n";
        break;
      case DivergenceKind::MissingCommits:
        out += "  core halted; golden expected pc " + hex(goldenPc) +
               "  " + goldenDisasm + '\n';
        break;
      case DivergenceKind::CycleCap:
        out += "  core exceeded its cycle budget; golden expected pc " +
               hex(goldenPc) + "  " + goldenDisasm + '\n';
        break;
      default:
        break;
    }
    if (!regDiffs.empty()) {
        out += "architectural register diff (core vs golden):\n";
        for (const RegDiff &d : regDiffs) {
            out += "  " + regName(d.reg) + ": " + hex(d.core) + " vs " +
                   hex(d.golden) + '\n';
        }
    }
    if (!memDiffs.empty()) {
        out += "memory diff (core vs golden):\n";
        for (const SparseMemory::ByteDiff &d : memDiffs) {
            out += "  [" + hex(d.addr) + "]: " + hex(d.mine) + " vs " +
                   hex(d.theirs) + '\n';
        }
    }
    return out;
}

// --- LockstepChecker --------------------------------------------------

LockstepChecker::LockstepChecker(const Program &program,
                                 u64 max_golden_instrs)
    : program(program),
      golden(std::make_unique<Interpreter>(program)),
      maxGoldenInstrs(max_golden_instrs)
{}

LockstepChecker::~LockstepChecker() = default;

bool
LockstepChecker::onCommit(Addr pc)
{
    if (div.diverged())
        return false;
    if (golden->halted()) {
        div.kind = DivergenceKind::ExtraCommit;
        div.commitIndex = commits;
        div.corePc = pc;
        div.coreDisasm = disasmAt(program, pc);
        return false;
    }
    Addr expected = golden->state().pc;
    if (pc != expected) {
        div.kind = DivergenceKind::CommitPc;
        div.commitIndex = commits;
        div.corePc = pc;
        div.goldenPc = expected;
        div.coreDisasm = disasmAt(program, pc);
        div.goldenDisasm = disasmAt(program, expected);
        return false;
    }
    fatal_if(commits >= maxGoldenInstrs,
             "lockstep oracle: %s exceeded %llu golden instructions",
             program.name.c_str(),
             static_cast<unsigned long long>(maxGoldenInstrs));
    golden->step();
    ++commits;
    return true;
}

void
LockstepChecker::finish(const ArchState &core_regs,
                        const SparseMemory &core_mem,
                        size_t max_diff_entries)
{
    if (div.diverged())
        return;
    if (!golden->halted()) {
        div.kind = DivergenceKind::MissingCommits;
        div.commitIndex = commits;
        div.goldenPc = golden->state().pc;
        div.goldenDisasm = disasmAt(program, div.goldenPc);
        return;
    }
    std::vector<RegDiff> reg_diffs =
        diffRegs(core_regs, golden->state(), max_diff_entries);
    std::vector<SparseMemory::ByteDiff> mem_diffs =
        core_mem.diffBytes(golden->memory(), max_diff_entries);
    if (reg_diffs.empty() && mem_diffs.empty())
        return;
    div.kind = reg_diffs.empty() ? DivergenceKind::FinalMem
                                 : DivergenceKind::FinalRegs;
    div.commitIndex = commits;
    div.regDiffs = std::move(reg_diffs);
    div.memDiffs = std::move(mem_diffs);
}

// --- runOracle --------------------------------------------------------

OracleResult
runOracle(const Program &program, SimConfig cfg,
          const InterpResult &golden, const OracleOptions &opts)
{
    // The oracle replaces the digest check — and the core's commit-time
    // trace panic would fire *before* the lockstep comparison could
    // produce its report.
    cfg.verify = false;

    PolyPathCore core(cfg, program, golden);
    LockstepChecker checker(program, opts.maxGoldenInstrs);

    bool stream_diverged = false;
    CommitRecorder recorder([&](const TraceRecord &rec) {
        if (!stream_diverged && !checker.onCommit(rec.pc))
            stream_diverged = true;
    });
    core.setTraceSink(&recorder);

    u64 max_cycles = opts.maxCycles;
    if (!max_cycles) {
        max_cycles = cfg.maxCycles ? cfg.maxCycles
                                   : 50 * golden.instructions + 1'000'000;
    }

    OracleResult result;
    result.goldenInstructions = golden.instructions;

    bool cycle_capped = false;
    while (!core.halted() && !stream_diverged) {
        if (core.cycle() >= max_cycles) {
            cycle_capped = true;
            break;
        }
        core.tick();
    }
    result.stats = core.stats();
    result.stats.halted = core.halted();

    if (cycle_capped) {
        Divergence &div = result.divergence;
        div.kind = DivergenceKind::CycleCap;
        div.commitIndex = checker.committed();
        if (!checker.interp().halted()) {
            div.goldenPc = checker.interp().state().pc;
            div.goldenDisasm = disasmAt(program, div.goldenPc);
        }
        return result;
    }

    if (!stream_diverged) {
        checker.finish(core.architecturalState(), core.memory(),
                       opts.maxDiffEntries);
        result.divergence = checker.divergence();
        return result;
    }

    // Stream divergence: attach the architectural-state delta at the
    // moment of death so the report shows *how far* values had drifted.
    result.divergence = checker.divergence();
    result.divergence.regDiffs =
        diffRegs(core.architecturalState(), checker.interp().state(),
                 opts.maxDiffEntries);
    return result;
}

OracleResult
runOracle(const Program &program, SimConfig cfg, const OracleOptions &opts)
{
    InterpResult golden = interpret(program, opts.maxGoldenInstrs);
    fatal_if(!golden.halted,
             "oracle: golden run of %s did not halt within %llu "
             "instructions — not a terminating-by-construction program?",
             program.name.c_str(),
             static_cast<unsigned long long>(opts.maxGoldenInstrs));
    return runOracle(program, cfg, golden, opts);
}

} // namespace testkit
} // namespace polypath
