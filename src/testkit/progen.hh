/**
 * @file
 * Grammar-driven random PPR program generator.
 *
 * Programs are *terminating by construction*: one outer counted loop
 * (the trip counter lives in a register no body operation may write),
 * forward-only data-dependent branches inside the body, counted inner
 * loops with immediate trip counts, and straight-line leaf calls. The
 * dynamic instruction count is therefore statically bounded
 * (GenPlan::maxDynamicInstrs), which is what lets the differential
 * fuzzer run millions of them without a watchdog.
 *
 * Generation is split into two phases so failures can be *reduced
 * structurally* (src/testkit/reduce.hh):
 *
 *   buildPlan(options, seed)  ->  GenPlan   (the decision log)
 *   emitPlan(plan)            ->  Program   (deterministic emission)
 *
 * A GenPlan is the generator's complete decision log: deleting a body
 * operation, lowering the trip count, or dropping a scaffolding flag
 * always yields another valid, terminating plan — so delta debugging
 * works on plans, never on raw instruction bytes.
 *
 * Register discipline: body operations read and write only the
 * temporaries t0..t7 plus the dedicated accumulator s3; s0 (outer trip
 * counter), s1 (arena base), s2 (xorshift state), s4 (inner-loop
 * counter), s5 (output-region base), ra and sp are reserved for
 * scaffolding. Loads are masked into the arena; stores go to the arena
 * or the write-only output region — never anywhere control flow could
 * observe indirectly (stack, code).
 */

#ifndef POLYPATH_TESTKIT_PROGEN_HH
#define POLYPATH_TESTKIT_PROGEN_HH

#include <string>
#include <vector>

#include "asmkit/program.hh"
#include "common/types.hh"

namespace polypath
{
namespace testkit
{

/**
 * Base of the write-only output region. Generated OutputStore
 * operations store here and nothing ever loads from at or above this
 * address, so a corrupted committed store (SimConfig::
 * bugCorruptStoreAbove = outputBase) shows up as a final-memory
 * divergence without feeding back into control flow.
 */
constexpr Addr outputBase = 0x300000;

/** Size of the output region (stores are masked into it). */
constexpr unsigned outputBytes = 2048;

/** Body operation kinds the grammar can draw. */
enum class GenOpKind : u8
{
    Alu,            //!< add/sub/xor/mul/cmplt rd, r1, r2
    Shift,          //!< srli r1, amount, rd
    Load,           //!< masked register-indexed arena load
    Store,          //!< masked register-indexed arena store
    FwdBranch,      //!< conditional skip over the next few operations
    Mix,            //!< xor with the xorshift state (fresh entropy)
    Call,           //!< jsr to the straight-line leaf function
    Accum,          //!< fold a temporary into the s3 checksum
    Fp,             //!< cvtif/fadd/fsub/fmul/fcmplt over f0..f3
    OutputStore,    //!< store a temporary into the write-only region
    InnerLoop,      //!< counted backward-branch loop (one level deep)
};

/** One recorded generator decision (a body operation). */
struct GenOp
{
    GenOpKind kind = GenOpKind::Alu;
    u8 sub = 0;             //!< opcode variant within the kind
    u8 r1 = 1;              //!< source temporary (t-register index 1..8)
    u8 r2 = 1;              //!< second source temporary
    u8 rd = 1;              //!< destination temporary
    u32 amount = 0;         //!< shift count / skip distance / disp / trips
    std::vector<GenOp> nested;  //!< InnerLoop body (never nests further)
};

/** Tunable grammar weights and size ranges. */
struct ProgenOptions
{
    // Relative selection weights; 0 disables a kind.
    unsigned wAlu = 5;
    unsigned wShift = 1;
    unsigned wLoad = 1;
    unsigned wStore = 1;
    unsigned wFwdBranch = 1;
    unsigned wMix = 1;
    unsigned wCall = 1;
    unsigned wAccum = 1;
    unsigned wFp = 0;
    unsigned wOutputStore = 0;
    unsigned wInnerLoop = 0;

    unsigned bodyMinOps = 20;       //!< operations per iteration body
    unsigned bodyMaxOps = 40;
    unsigned outerTripsMin = 150;   //!< outer loop trip count range
    unsigned outerTripsMax = 249;
    unsigned fwdSkipMax = 5;        //!< max ops a forward branch skips
    unsigned innerTripsMax = 4;     //!< inner loop trip count 1..max
    unsigned innerBodyMaxOps = 4;   //!< inner loop body 1..max ops
    unsigned arenaBytes = 2048;     //!< private load/store arena
    unsigned arenaInitWords = 64;   //!< random 64-bit words pre-seeded

    std::string name = "custom";    //!< preset name (program naming)
};

/**
 * The generator's complete decision log for one program. Any
 * sub-structure of a valid plan is again a valid, terminating plan.
 */
struct GenPlan
{
    u64 seed = 0;
    std::string name;               //!< preset name
    unsigned outerTrips = 1;
    u64 xorshiftSeed = 1;
    std::vector<u64> arenaInit;     //!< pre-seeded arena words
    std::vector<GenOp> body;        //!< one outer-loop iteration
    unsigned arenaBytes = 2048;

    // Scaffolding the reducer may strip.
    bool keepXorshift = true;       //!< per-iteration xorshift + t0 fold
    bool keepFinalStore = true;     //!< checksum store before HALT

    /** Upper bound on golden dynamic instructions (termination bound). */
    u64 maxDynamicInstrs() const;

    /** True if any (possibly nested) op has kind @p kind. */
    bool usesKind(GenOpKind kind) const;
};

/** Build the decision log for @p seed under @p opts. */
GenPlan buildPlan(const ProgenOptions &opts, u64 seed);

/** Deterministically emit @p plan as an assembled Program. */
Program emitPlan(const GenPlan &plan);

/** Convenience: buildPlan + emitPlan. */
Program generate(const ProgenOptions &opts, u64 seed);

// --- named presets ----------------------------------------------------

/** The exact shape of the original tests/integration/test_fuzz.cc
 *  generator: equal-weight ALU/shift/load/store/forward-branch/mix/
 *  call/accum over a 2 KiB arena, 150..249 outer trips. */
ProgenOptions presetLegacy();

/** Branch-dense bodies with short skips — stresses divergence,
 *  out-of-order resolution and wrong-path containment. */
ProgenOptions presetBranchy();

/** Load/store-dense bodies — stresses CTX-tagged store forwarding and
 *  disambiguation. */
ProgenOptions presetMemory();

/** Call/return-dense bodies — stresses per-path RAS cloning. */
ProgenOptions presetCalls();

/** Integer/FP mix — exercises the FP units and cross-domain moves. */
ProgenOptions presetFp();

/** Everything enabled, including inner loops and output stores;
 *  smaller trip counts so wide sweeps stay cheap. */
ProgenOptions presetMixed();

/** All preset names, in a stable order. */
const std::vector<std::string> &presetNames();

/** Look up a preset by name; fatals on an unknown name. */
ProgenOptions presetByName(const std::string &name);

} // namespace testkit
} // namespace polypath

#endif // POLYPATH_TESTKIT_PROGEN_HH
