#include "machine.hh"

#include <atomic>
#include <thread>

#include "common/logging.hh"

namespace polypath
{

InterpResult
runGolden(const Program &program, u64 max_instrs)
{
    return interpret(program, max_instrs);
}

SimResult
simulate(const Program &program, const SimConfig &cfg,
         const InterpResult &golden)
{
    PolyPathCore core(cfg, program, golden);

    u64 max_cycles = cfg.maxCycles
                         ? cfg.maxCycles
                         : 50 * golden.instructions + 1'000'000;
    while (!core.halted()) {
        fatal_if(core.cycle() >= max_cycles,
                 "simulation of %s exceeded %llu cycles",
                 program.name.c_str(),
                 static_cast<unsigned long long>(max_cycles));
        core.tick();
    }

    SimResult result;
    result.stats = core.stats();
    result.stats.halted = true;
    result.category = cfg.categoryName();
    result.workload = program.name;

    if (cfg.verify) {
        // Committed instruction count must match the reference exactly.
        panic_if(result.stats.committedInstrs != golden.instructions,
                 "%s: committed %llu instructions, reference %llu",
                 program.name.c_str(),
                 static_cast<unsigned long long>(
                     result.stats.committedInstrs),
                 static_cast<unsigned long long>(golden.instructions));

        // Architectural register state must match.
        ArchState final_regs = core.architecturalState();
        panic_if(!(final_regs == golden.finalRegs),
                 "%s: final register state diverged from reference",
                 program.name.c_str());

        // Committed memory state must match.
        panic_if(!core.memory().contentsEqual(*golden.finalMem),
                 "%s: final memory state diverged from reference",
                 program.name.c_str());
        result.verified = true;
    }
    return result;
}

SimResult
simulate(const Program &program, const SimConfig &cfg)
{
    InterpResult golden = runGolden(program);
    return simulate(program, cfg, golden);
}

std::vector<SimResult>
runParallel(const std::vector<std::function<SimResult()>> &jobs,
            unsigned num_workers)
{
    if (num_workers == 0) {
        num_workers = std::thread::hardware_concurrency();
        if (num_workers == 0)
            num_workers = 2;
    }

    std::vector<SimResult> results(jobs.size());
    std::atomic<size_t> next{0};

    auto worker = [&]() {
        while (true) {
            size_t idx = next.fetch_add(1);
            if (idx >= jobs.size())
                break;
            results[idx] = jobs[idx]();
        }
    };

    std::vector<std::thread> threads;
    unsigned spawn = std::min<size_t>(num_workers, jobs.size());
    for (unsigned i = 0; i < spawn; ++i)
        threads.emplace_back(worker);
    for (std::thread &thread : threads)
        thread.join();
    return results;
}

} // namespace polypath
