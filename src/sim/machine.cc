#include "machine.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace polypath
{

InterpResult
runGolden(const Program &program, u64 max_instrs)
{
    return interpret(program, max_instrs);
}

SimResult
simulate(const Program &program, const SimConfig &cfg,
         const InterpResult &golden)
{
    PolyPathCore core(cfg, program, golden);

    u64 max_cycles = cfg.maxCycles
                         ? cfg.maxCycles
                         : 50 * golden.instructions + 1'000'000;
    while (!core.halted()) {
        // Two distinct guards can stop a wedged run: this coarse
        // whole-run cycle cap, and the core's own no-commit deadlock
        // detector (PolyPathCore::deadlockThreshold), which fires first
        // when commits stop entirely. Name the one that fired.
        fatal_if(core.cycle() >= max_cycles,
                 "simulation cycle cap: %s exceeded %llu cycles "
                 "(cap = %s; last commit at cycle %llu, %llu committed; "
                 "the core's no-commit deadlock guard of %llu cycles did "
                 "not fire, so the run is slow rather than wedged)",
                 program.name.c_str(),
                 static_cast<unsigned long long>(max_cycles),
                 cfg.maxCycles ? "cfg.maxCycles"
                               : "50 * golden instructions + 1M",
                 static_cast<unsigned long long>(core.lastCommit()),
                 static_cast<unsigned long long>(
                     core.stats().committedInstrs),
                 static_cast<unsigned long long>(
                     PolyPathCore::deadlockThreshold));
        core.tick();
    }

    SimResult result;
    result.stats = core.stats();
    result.stats.halted = true;
    result.category = cfg.categoryName();
    result.workload = program.name;

    if (cfg.verify) {
        // Committed instruction count must match the reference exactly.
        panic_if(result.stats.committedInstrs != golden.instructions,
                 "%s: committed %llu instructions, reference %llu",
                 program.name.c_str(),
                 static_cast<unsigned long long>(
                     result.stats.committedInstrs),
                 static_cast<unsigned long long>(golden.instructions));

        // Architectural register state must match.
        ArchState final_regs = core.architecturalState();
        panic_if(!(final_regs == golden.finalRegs),
                 "%s: final register state diverged from reference",
                 program.name.c_str());

        // Committed memory state must match.
        panic_if(!core.memory().contentsEqual(*golden.finalMem),
                 "%s: final memory state diverged from reference",
                 program.name.c_str());
        result.verified = true;
    }
    return result;
}

SimResult
simulate(const Program &program, const SimConfig &cfg)
{
    InterpResult golden = runGolden(program);
    return simulate(program, cfg, golden);
}

std::vector<SimResult>
runParallel(const std::vector<std::function<SimResult()>> &jobs,
            unsigned num_workers)
{
    // PP_BENCH_WORKERS overrides the worker count (0/unset/garbage =
    // caller's choice, which itself defaults to hardware concurrency).
    if (const char *env = std::getenv("PP_BENCH_WORKERS")) {
        unsigned long parsed = std::strtoul(env, nullptr, 10);
        if (parsed > 0)
            num_workers = static_cast<unsigned>(parsed);
    }
    if (num_workers == 0) {
        num_workers = std::thread::hardware_concurrency();
        if (num_workers == 0)
            num_workers = 2;
    }

    std::vector<SimResult> results(jobs.size());
    std::atomic<size_t> next{0};

    // A job that throws (bad_alloc, exceptions from user-supplied
    // thunks) must not escape a worker thread — that would
    // std::terminate the process with no usable diagnostic. Capture the
    // first exception and rethrow it on the joining thread; remaining
    // jobs are abandoned.
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&]() {
        while (true) {
            size_t idx = next.fetch_add(1);
            if (idx >= jobs.size())
                break;
            {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (first_error)
                    break;      // another worker already failed
            }
            try {
                results[idx] = jobs[idx]();
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                break;
            }
        }
    };

    std::vector<std::thread> threads;
    unsigned spawn = std::min<size_t>(num_workers, jobs.size());
    for (unsigned i = 0; i < spawn; ++i)
        threads.emplace_back(worker);
    for (std::thread &thread : threads)
        thread.join();
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace polypath
