/**
 * @file
 * Content-addressed on-disk cache of simulation results.
 *
 * Every experiment sweep re-simulates identical (program, config)
 * points — each figure bench re-runs the gshare/monopath and
 * gshare/JRS baselines the others already computed, and a second
 * `run_all_experiments.sh` pass redoes everything. A timing run is a
 * pure function of its inputs, so its SimResult can be cached on disk,
 * keyed by SHA-256 over:
 *
 *   - the full program image (name, entry, code words, data segments);
 *   - the full SimConfig serialization (SimConfig::serialize());
 *   - the simulator version digest (kSimVersionDigest below).
 *
 * kSimVersionDigest MUST be bumped whenever a change alters timing
 * behaviour or the SimStats a run produces — anything that would change
 * the digests in tests/integration/test_sim_digest.cc, a stats field's
 * meaning, or the golden interpreter's semantics. Purely host-side
 * speedups that are observationally invisible (and pinned so by the
 * digest test) do not need a bump.
 *
 * Entries are one file per key. Corrupt, truncated or
 * version-mismatched entries are treated as misses and recomputed —
 * never trusted, never fatal. An empty cache directory disables the
 * cache entirely (every lookup misses, stores are dropped), which is
 * the `--no-cache` path.
 */

#ifndef POLYPATH_SIM_RESULT_CACHE_HH
#define POLYPATH_SIM_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "sim/machine.hh"

namespace polypath
{

struct Program;

/**
 * Bump on any change to simulated timing behaviour or stats semantics
 * (see file comment). Format: a short history of bumps, newest first.
 */
inline constexpr const char *kSimVersionDigest = "polypath-sim-v3";

/** On-disk SimResult store; see file comment for the key scheme. */
class ResultCache
{
  public:
    /**
     * @param dir cache directory (created on first store). An empty
     *            string disables the cache: lookups miss, stores drop.
     * @param version sim-version digest mixed into every entry;
     *            overridable for tests
     */
    explicit ResultCache(std::string dir,
                         std::string version = kSimVersionDigest);

    /** Content key for one (program, config, sim version) point. */
    static std::string keyFor(const Program &program,
                              const SimConfig &cfg,
                              const std::string &version =
                                  kSimVersionDigest);

    /**
     * Fetch the cached result for @p key. Any problem — absent file,
     * bad header, version mismatch, checksum mismatch, truncation,
     * unparseable field — is a miss.
     */
    std::optional<SimResult> lookup(const std::string &key);

    /** Persist @p result under @p key (no-op when disabled). */
    void store(const std::string &key, const SimResult &result);

    bool enabled() const { return !dirPath.empty(); }
    const std::string &dir() const { return dirPath; }

    // Counters (since construction). With the cache enabled, misses ==
    // simulations actually executed by a cache-consulting driver.
    u64 hits() const { return hitCount; }
    u64 misses() const { return missCount; }
    u64 stores() const { return storeCount; }

  private:
    std::string entryPath(const std::string &key) const;

    std::string dirPath;
    std::string versionDigest;
    u64 hitCount = 0;
    u64 missCount = 0;
    u64 storeCount = 0;
};

/**
 * Exact text serialization of a SimResult (used for cache entries; all
 * fields are integers/bools/strings, so the round-trip is bit-exact).
 */
std::string serializeSimResult(const SimResult &result);

/** Inverse of serializeSimResult; nullopt on any malformed input. */
std::optional<SimResult> parseSimResult(const std::string &text);

} // namespace polypath

#endif // POLYPATH_SIM_RESULT_CACHE_HH
