/**
 * @file
 * Top-level simulation driver.
 *
 * Wires a workload, a machine configuration and the golden reference run
 * together, runs the timing core to completion and verifies the result
 * against the reference (committed control-flow stream during the run,
 * architectural registers and memory at the end).
 */

#ifndef POLYPATH_SIM_MACHINE_HH
#define POLYPATH_SIM_MACHINE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/interpreter.hh"
#include "asmkit/program.hh"
#include "core/config.hh"
#include "core/core.hh"
#include "core/stats.hh"

namespace polypath
{

/** Result of one timing simulation. */
struct SimResult
{
    SimStats stats;
    std::string category;       //!< e.g. "gshare/JRS"
    std::string workload;
    bool verified = false;      //!< final-state check passed

    double ipc() const { return stats.ipc(); }
};

/**
 * Run the golden reference once for @p program.
 * Heavier workloads should share one golden run across configurations.
 */
InterpResult runGolden(const Program &program,
                       u64 max_instrs = 2'000'000'000ull);

/**
 * Simulate @p program on configuration @p cfg, reusing the golden run
 * @p golden. Panics (simulator bug) if verification fails.
 */
SimResult simulate(const Program &program, const SimConfig &cfg,
                   const InterpResult &golden);

/** Convenience: golden run + timing run in one call. */
SimResult simulate(const Program &program, const SimConfig &cfg);

/**
 * Run many independent simulations on a small worker pool (the
 * experiment sweeps are embarrassingly parallel).
 *
 * The PP_BENCH_WORKERS environment variable, when set to a positive
 * integer, overrides @p num_workers. If a job throws, the first
 * exception is rethrown from this function on the calling thread
 * (instead of std::terminate-ing the process from a worker);
 * remaining jobs are abandoned.
 *
 * @param jobs thunks, each returning one SimResult
 * @param num_workers 0 = hardware concurrency
 * @return results in job order
 */
std::vector<SimResult>
runParallel(const std::vector<std::function<SimResult()>> &jobs,
            unsigned num_workers = 0);

} // namespace polypath

#endif // POLYPATH_SIM_MACHINE_HH
