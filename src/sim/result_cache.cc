#include "result_cache.hh"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "asmkit/program.hh"
#include "common/sha256.hh"

namespace polypath
{

namespace
{

constexpr const char *kEntryMagic = "ppcache 1";

void
putU64(std::ostringstream &os, const char *nm, u64 v)
{
    os << nm << ' ' << v << '\n';
}

void
putVec(std::ostringstream &os, const char *nm, const u64 *v, size_t n)
{
    os << nm << ' ' << n;
    for (size_t i = 0; i < n; ++i)
        os << ' ' << v[i];
    os << '\n';
}

/**
 * Strict line-oriented reader: every get* must see the expected field
 * name; any deviation poisons the parse and the entry is a miss.
 */
class FieldReader
{
  public:
    explicit FieldReader(const std::string &text) : in(text) {}

    bool ok() const { return good; }

    std::string
    getString(const char *nm)
    {
        std::string line;
        if (!good || !std::getline(in, line)) {
            good = false;
            return {};
        }
        std::string prefix = std::string(nm) + ' ';
        if (line.rfind(prefix, 0) != 0) {
            good = false;
            return {};
        }
        return line.substr(prefix.size());
    }

    u64
    getU64(const char *nm)
    {
        std::istringstream ls(getString(nm));
        u64 v = 0;
        if (!(ls >> v) || !(ls >> std::ws).eof())
            good = false;
        return good ? v : 0;
    }

    std::vector<u64>
    getVec(const char *nm)
    {
        std::istringstream ls(getString(nm));
        size_t n = 0;
        std::vector<u64> v;
        if (!(ls >> n) || n > (1u << 20)) {
            good = false;
            return v;
        }
        v.resize(n);
        for (size_t i = 0; i < n; ++i) {
            if (!(ls >> v[i])) {
                good = false;
                return v;
            }
        }
        if (!(ls >> std::ws).eof())
            good = false;
        return v;
    }

  private:
    std::istringstream in;
    bool good = true;
};

} // anonymous namespace

std::string
serializeSimResult(const SimResult &result)
{
    const SimStats &s = result.stats;
    std::ostringstream os;
    os << "category " << result.category << '\n';
    os << "workload " << result.workload << '\n';
    putU64(os, "verified", result.verified ? 1 : 0);
    putU64(os, "cycles", s.cycles);
    putU64(os, "fetchedInstrs", s.fetchedInstrs);
    putU64(os, "committedInstrs", s.committedInstrs);
    putU64(os, "killedInstrs", s.killedInstrs);
    putU64(os, "killedFrontend", s.killedFrontend);
    putU64(os, "committedBranches", s.committedBranches);
    putU64(os, "mispredictedBranches", s.mispredictedBranches);
    putU64(os, "committedReturns", s.committedReturns);
    putU64(os, "mispredictedReturns", s.mispredictedReturns);
    putU64(os, "lowConfidenceBranches", s.lowConfidenceBranches);
    putU64(os, "lowConfidenceMispredicts", s.lowConfidenceMispredicts);
    putU64(os, "highConfidenceMispredicts", s.highConfidenceMispredicts);
    putU64(os, "divergences", s.divergences);
    putU64(os, "divergencesSuppressed", s.divergencesSuppressed);
    putU64(os, "recoveries", s.recoveries);
    putU64(os, "recoveriesCorrectPath", s.recoveriesCorrectPath);
    putU64(os, "retRecoveries", s.retRecoveries);
    putU64(os, "fetchCycleSlotsUsed", s.fetchCycleSlotsUsed);
    putU64(os, "fetchStallNoCtx", s.fetchStallNoCtx);
    putU64(os, "fetchStallFrontendFull", s.fetchStallFrontendFull);
    putU64(os, "loadsForwarded", s.loadsForwarded);
    putU64(os, "loadBlockedEvents", s.loadBlockedEvents);
    putU64(os, "dcacheHits", s.dcacheHits);
    putU64(os, "dcacheMisses", s.dcacheMisses);
    putVec(os, "fuIssued", s.fuIssued.data(), s.fuIssued.size());
    putU64(os, "windowOccupancySum", s.windowOccupancySum);
    putU64(os, "livePathsSum", s.livePathsSum);
    putVec(os, "livePathsHistogram", s.livePathsHistogram.data(),
           s.livePathsHistogram.size());
    putU64(os, "halted", s.halted ? 1 : 0);
    return os.str();
}

std::optional<SimResult>
parseSimResult(const std::string &text)
{
    FieldReader rd(text);
    SimResult r;
    SimStats &s = r.stats;
    r.category = rd.getString("category");
    r.workload = rd.getString("workload");
    r.verified = rd.getU64("verified") != 0;
    s.cycles = rd.getU64("cycles");
    s.fetchedInstrs = rd.getU64("fetchedInstrs");
    s.committedInstrs = rd.getU64("committedInstrs");
    s.killedInstrs = rd.getU64("killedInstrs");
    s.killedFrontend = rd.getU64("killedFrontend");
    s.committedBranches = rd.getU64("committedBranches");
    s.mispredictedBranches = rd.getU64("mispredictedBranches");
    s.committedReturns = rd.getU64("committedReturns");
    s.mispredictedReturns = rd.getU64("mispredictedReturns");
    s.lowConfidenceBranches = rd.getU64("lowConfidenceBranches");
    s.lowConfidenceMispredicts = rd.getU64("lowConfidenceMispredicts");
    s.highConfidenceMispredicts = rd.getU64("highConfidenceMispredicts");
    s.divergences = rd.getU64("divergences");
    s.divergencesSuppressed = rd.getU64("divergencesSuppressed");
    s.recoveries = rd.getU64("recoveries");
    s.recoveriesCorrectPath = rd.getU64("recoveriesCorrectPath");
    s.retRecoveries = rd.getU64("retRecoveries");
    s.fetchCycleSlotsUsed = rd.getU64("fetchCycleSlotsUsed");
    s.fetchStallNoCtx = rd.getU64("fetchStallNoCtx");
    s.fetchStallFrontendFull = rd.getU64("fetchStallFrontendFull");
    s.loadsForwarded = rd.getU64("loadsForwarded");
    s.loadBlockedEvents = rd.getU64("loadBlockedEvents");
    s.dcacheHits = rd.getU64("dcacheHits");
    s.dcacheMisses = rd.getU64("dcacheMisses");
    std::vector<u64> fu = rd.getVec("fuIssued");
    if (fu.size() != s.fuIssued.size())
        return std::nullopt;
    std::copy(fu.begin(), fu.end(), s.fuIssued.begin());
    s.windowOccupancySum = rd.getU64("windowOccupancySum");
    s.livePathsSum = rd.getU64("livePathsSum");
    s.livePathsHistogram = rd.getVec("livePathsHistogram");
    s.halted = rd.getU64("halted") != 0;
    if (!rd.ok())
        return std::nullopt;
    return r;
}

ResultCache::ResultCache(std::string dir, std::string version)
    : dirPath(std::move(dir)), versionDigest(std::move(version))
{
}

std::string
ResultCache::keyFor(const Program &program, const SimConfig &cfg,
                    const std::string &version)
{
    Sha256 h;
    h.update("program\n");
    h.update(program.name);
    h.update("\n");
    h.updateU64(program.entry);
    h.updateU64(program.codeBase);
    h.updateU64(program.code.size());
    h.update(program.code.data(), program.code.size() * sizeof(u32));
    h.updateU64(program.dataSegments.size());
    for (const auto &[base, bytes] : program.dataSegments) {
        h.updateU64(base);
        h.updateU64(bytes.size());
        h.update(bytes.data(), bytes.size());
    }
    h.update("config\n");
    h.update(cfg.serialize());
    h.update("version\n");
    h.update(version);
    return h.hexDigest();
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return dirPath + "/" + key + ".ppresult";
}

std::optional<SimResult>
ResultCache::lookup(const std::string &key)
{
    if (!enabled()) {
        ++missCount;
        return std::nullopt;
    }

    std::ifstream in(entryPath(key));
    if (!in) {
        ++missCount;
        return std::nullopt;
    }

    std::string magic, version_line, checksum_line;
    if (!std::getline(in, magic) || magic != kEntryMagic ||
        !std::getline(in, version_line) ||
        version_line != "version " + versionDigest ||
        !std::getline(in, checksum_line) ||
        checksum_line.rfind("payload-sha256 ", 0) != 0) {
        ++missCount;
        return std::nullopt;
    }

    std::ostringstream payload;
    payload << in.rdbuf();
    std::string body = payload.str();
    if (checksum_line.substr(15) != Sha256::hashHex(body)) {
        ++missCount;
        return std::nullopt;
    }

    std::optional<SimResult> result = parseSimResult(body);
    if (!result) {
        ++missCount;
        return std::nullopt;
    }
    ++hitCount;
    return result;
}

void
ResultCache::store(const std::string &key, const SimResult &result)
{
    if (!enabled())
        return;

    std::error_code ec;
    std::filesystem::create_directories(dirPath, ec);
    if (ec)
        return;

    std::string body = serializeSimResult(result);
    std::ostringstream entry;
    entry << kEntryMagic << '\n'
          << "version " << versionDigest << '\n'
          << "payload-sha256 " << Sha256::hashHex(body) << '\n'
          << body;

    // Write-then-rename so concurrent readers (parallel sweeps sharing
    // one cache dir) never observe a half-written entry.
    std::string path = entryPath(key);
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return;
        out << entry.str();
        if (!out)
            return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
    else
        ++storeCount;
}

} // namespace polypath
