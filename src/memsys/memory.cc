#include "memory.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/prof.hh"

namespace polypath
{

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    return lookupPage(addr >> pageShift);
}

const SparseMemory::Page *
SparseMemory::lookupPage(u64 page_idx) const
{
    if (page_idx == cachedIdx)
        return cachedPage;
    auto it = pages.find(page_idx);
    if (it == pages.end())
        return nullptr;     // absence is never cached (pages can appear)
    cachedIdx = page_idx;
    cachedPage = it->second.get();
    return cachedPage;
}

SparseMemory::Page &
SparseMemory::getPage(Addr addr)
{
    auto &slot = pages[addr >> pageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

u8
SparseMemory::readByte(Addr addr) const
{
    const Page *page = findPage(addr);
    if (!page)
        return 0;
    return (*page)[addr & (pageBytes - 1)];
}

void
SparseMemory::writeByte(Addr addr, u8 value)
{
    getPage(addr)[addr & (pageBytes - 1)] = value;
}

u64
SparseMemory::read(Addr addr, unsigned size) const
{
    PP_PROF_SCOPE(MemRead);
    panic_if(size == 0 || size > 8, "memory read of size %u", size);
    // Fast path: the access lies within one page (the overwhelmingly
    // common case), so the page is resolved once instead of per byte.
    if ((addr >> pageShift) == ((addr + size - 1) >> pageShift)) {
        const Page *page = lookupPage(addr >> pageShift);
        if (!page)
            return 0;
        const u8 *bytes = page->data() + (addr & (pageBytes - 1));
        u64 value = 0;
        for (unsigned i = 0; i < size; ++i)
            value |= static_cast<u64>(bytes[i]) << (8 * i);
        return value;
    }
    u64 value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= static_cast<u64>(readByte(addr + i)) << (8 * i);
    return value;
}

void
SparseMemory::write(Addr addr, u64 value, unsigned size)
{
    PP_PROF_SCOPE(MemWrite);
    panic_if(size == 0 || size > 8, "memory write of size %u", size);
    if ((addr >> pageShift) == ((addr + size - 1) >> pageShift)) {
        u8 *bytes = getPage(addr).data() + (addr & (pageBytes - 1));
        for (unsigned i = 0; i < size; ++i)
            bytes[i] = static_cast<u8>(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<u8>(value >> (8 * i)));
}

bool
SparseMemory::contentsEqual(const SparseMemory &other) const
{
    auto pages_match = [](const SparseMemory &a, const SparseMemory &b) {
        for (const auto &[pageNum, page] : a.pages) {
            const Page *peer = nullptr;
            auto it = b.pages.find(pageNum);
            if (it != b.pages.end())
                peer = it->second.get();
            for (size_t i = 0; i < pageBytes; ++i) {
                u8 mine = (*page)[i];
                u8 theirs = peer ? (*peer)[i] : 0;
                if (mine != theirs)
                    return false;
            }
        }
        return true;
    };
    return pages_match(*this, other) && pages_match(other, *this);
}

std::vector<SparseMemory::ByteDiff>
SparseMemory::diffBytes(const SparseMemory &other, size_t max_entries) const
{
    // Union of materialised page numbers, sorted so the report reads in
    // address order.
    std::vector<u64> page_nums;
    page_nums.reserve(pages.size() + other.pages.size());
    for (const auto &[num, page] : pages)
        page_nums.push_back(num);
    for (const auto &[num, page] : other.pages) {
        if (!pages.count(num))
            page_nums.push_back(num);
    }
    std::sort(page_nums.begin(), page_nums.end());

    std::vector<ByteDiff> diffs;
    for (u64 num : page_nums) {
        auto mine_it = pages.find(num);
        auto theirs_it = other.pages.find(num);
        const Page *mine = mine_it != pages.end()
                               ? mine_it->second.get() : nullptr;
        const Page *theirs = theirs_it != other.pages.end()
                                 ? theirs_it->second.get() : nullptr;
        for (size_t i = 0; i < pageBytes; ++i) {
            u8 a = mine ? (*mine)[i] : 0;
            u8 b = theirs ? (*theirs)[i] : 0;
            if (a == b)
                continue;
            diffs.push_back({(num << pageShift) + i, a, b});
            if (max_entries && diffs.size() >= max_entries)
                return diffs;
        }
    }
    return diffs;
}

} // namespace polypath
