#include "memory.hh"

#include "common/logging.hh"

namespace polypath
{

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = pages.find(addr >> pageShift);
    return it == pages.end() ? nullptr : it->second.get();
}

SparseMemory::Page &
SparseMemory::getPage(Addr addr)
{
    auto &slot = pages[addr >> pageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

u8
SparseMemory::readByte(Addr addr) const
{
    const Page *page = findPage(addr);
    if (!page)
        return 0;
    return (*page)[addr & (pageBytes - 1)];
}

void
SparseMemory::writeByte(Addr addr, u8 value)
{
    getPage(addr)[addr & (pageBytes - 1)] = value;
}

u64
SparseMemory::read(Addr addr, unsigned size) const
{
    panic_if(size == 0 || size > 8, "memory read of size %u", size);
    u64 value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= static_cast<u64>(readByte(addr + i)) << (8 * i);
    return value;
}

void
SparseMemory::write(Addr addr, u64 value, unsigned size)
{
    panic_if(size == 0 || size > 8, "memory write of size %u", size);
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<u8>(value >> (8 * i)));
}

bool
SparseMemory::contentsEqual(const SparseMemory &other) const
{
    auto pages_match = [](const SparseMemory &a, const SparseMemory &b) {
        for (const auto &[pageNum, page] : a.pages) {
            const Page *peer = nullptr;
            auto it = b.pages.find(pageNum);
            if (it != b.pages.end())
                peer = it->second.get();
            for (size_t i = 0; i < pageBytes; ++i) {
                u8 mine = (*page)[i];
                u8 theirs = peer ? (*peer)[i] : 0;
                if (mine != theirs)
                    return false;
            }
        }
        return true;
    };
    return pages_match(*this, other) && pages_match(other, *this);
}

} // namespace polypath
