#include "cache.hh"

#include "common/bitutils.hh"
#include "common/prof.hh"

namespace polypath
{

CacheModel::CacheModel(const CacheConfig &cache_cfg) : cfg(cache_cfg)
{
    if (cfg.perfect)
        return;
    fatal_if(!isPowerOf2(cfg.lineBytes) || cfg.lineBytes < 8,
             "cache line of %u bytes unsupported", cfg.lineBytes);
    fatal_if(cfg.ways == 0, "cache needs at least one way");
    fatal_if(cfg.sizeBytes % (cfg.lineBytes * cfg.ways) != 0,
             "cache size %u not divisible into %u-way sets of %u-byte "
             "lines",
             cfg.sizeBytes, cfg.ways, cfg.lineBytes);
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.ways);
    fatal_if(!isPowerOf2(numSets), "cache set count %u not a power of 2",
             numSets);
    ways.resize(static_cast<size_t>(numSets) * cfg.ways);
}

size_t
CacheModel::setIndex(Addr addr) const
{
    return (addr / cfg.lineBytes) & (numSets - 1);
}

u64
CacheModel::lineTag(Addr addr) const
{
    return addr / cfg.lineBytes;
}

unsigned
CacheModel::access(Addr addr)
{
    PP_PROF_SCOPE(DCache);
    if (cfg.perfect) {
        ++hitCount;
        return 0;
    }
    ++useClock;
    u64 tag = lineTag(addr);
    Way *set = &ways[setIndex(addr) * cfg.ways];
    Way *victim = &set[0];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = useClock;
            ++hitCount;
            return 0;
        }
        if (!set[w].valid ||
            (victim->valid && set[w].lastUse < victim->lastUse)) {
            victim = &set[w];
        }
    }
    victim->tag = tag;
    victim->valid = true;
    victim->lastUse = useClock;
    ++missCount;
    return cfg.missLatency;
}

bool
CacheModel::contains(Addr addr) const
{
    if (cfg.perfect)
        return true;
    u64 tag = lineTag(addr);
    const Way *set = &ways[setIndex(addr) * cfg.ways];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

} // namespace polypath
