/**
 * @file
 * Sparse byte-addressed main memory.
 *
 * Wrong-path instructions can compute wild effective addresses and fetch
 * can run past the end of the program, so the memory model must accept
 * *any* 64-bit address. Unwritten memory reads as zero; a zero
 * instruction word decodes to Opcode::INVALID.
 *
 * The paper's machine model assumes perfect caches (every access hits,
 * 1-cycle access), so there is no miss modelling here; the cache latency
 * lives in the instruction latency table (loads take 2 cycles total).
 */

#ifndef POLYPATH_MEMSYS_MEMORY_HH
#define POLYPATH_MEMSYS_MEMORY_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace polypath
{

/** Sparse paged memory; pages materialise on first write. */
class SparseMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr size_t pageBytes = size_t(1) << pageShift;

    /** Read one byte; untouched memory reads as zero. */
    u8 readByte(Addr addr) const;

    /** Write one byte, materialising the page if needed. */
    void writeByte(Addr addr, u8 value);

    /** Little-endian multi-byte read of @p size bytes (1..8). */
    u64 read(Addr addr, unsigned size) const;

    /** Little-endian multi-byte write of @p size bytes (1..8). */
    void write(Addr addr, u64 value, unsigned size);

    /** 32-bit instruction fetch. */
    u32 read32(Addr addr) const { return static_cast<u32>(read(addr, 4)); }

    /** 64-bit data read. */
    u64 read64(Addr addr) const { return read(addr, 8); }

    /** 64-bit data write. */
    void write64(Addr addr, u64 value) { write(addr, value, 8); }

    /** Number of materialised pages (for tests). */
    size_t numPages() const { return pages.size(); }

    /**
     * Compare the materialised contents of this memory against @p other.
     * Returns true iff every byte that is non-zero in either memory is
     * identical in both (zero-filled pages are equivalent to absent ones).
     */
    bool contentsEqual(const SparseMemory &other) const;

    /** One byte that differs between two memories. */
    struct ByteDiff
    {
        Addr addr;
        u8 mine;
        u8 theirs;
    };

    /**
     * The differing bytes between this memory and @p other, in
     * ascending address order, capped at @p max_entries (0 = no cap).
     * Same zero-fill convention as contentsEqual. Used by the
     * differential oracle to report *where* final memory diverged.
     */
    std::vector<ByteDiff> diffBytes(const SparseMemory &other,
                                    size_t max_entries = 0) const;

  private:
    using Page = std::array<u8, pageBytes>;

    const Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);

    /** Page lookup through a one-entry cache. Only present pages are
     *  cached: pages are never removed and their storage is stable
     *  under rehash, so the cache can never go stale. */
    const Page *lookupPage(u64 page_idx) const;

    std::unordered_map<u64, std::unique_ptr<Page>> pages;

    /** Last page hit (fetch and data streams are strongly local).
     *  Mutable cache: not safe for concurrent reads of the *same*
     *  memory, which the simulator never does (one memory per core,
     *  one core per thread). */
    mutable u64 cachedIdx = ~u64(0);
    mutable const Page *cachedPage = nullptr;
};

} // namespace polypath

#endif // POLYPATH_MEMSYS_MEMORY_HH
