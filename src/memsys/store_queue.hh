/**
 * @file
 * CTX-tagged store buffer (§3.2.4).
 *
 * Holds speculative store data from dispatch until commit. Forwarding to
 * loads is restricted to stores on the same path or an ancestor path of
 * the load, decided with the CTX hierarchy comparator. Data reaches main
 * memory only when the store commits, so wrong paths can never corrupt
 * architectural memory state.
 *
 * Disambiguation model (per §4.2 "perfect memory disambiguation"): the
 * core publishes a store's effective address into its queue entry as soon
 * as the address operand is data-ready (independent of FU scheduling), so
 * a load waits only on older same-path stores that genuinely conflict or
 * whose address is not yet computable from dataflow.
 *
 * Load resolution fast path: the reference semantics are a
 * youngest-first walk with per-byte overlap checks — O(queue) per load.
 * Because the overwhelmingly common query finds nothing to forward and
 * nothing to wait on, the queue incrementally maintains two summaries
 * that prove that outcome in O(1):
 *
 *   - `unknownAddrCount`: the number of entries whose address has not
 *     been published. When zero, no load can be blocked by perfect
 *     disambiguation (the walk's MustWait-on-unknown case is
 *     impossible for *any* seq/tag).
 *   - a direct-mapped chunk-count table: memory is viewed in aligned
 *     64-byte chunks, and `chunkCounts[hash(chunk)]` counts the
 *     known-address entries overlapping that chunk. A load whose
 *     spanned chunks all count zero provably overlaps no store.
 *
 * When both summaries clear the load, its bytes come straight from
 * committed memory — the exact result of the full walk. Any nonzero
 * summary (including direct-mapped aliasing and hits from younger or
 * sibling-path stores) simply falls back to the walk, so the fast path
 * is conservative: it can only ever skip work, never change an answer.
 * `tests/memsys/test_store_queue.cc` pins both paths to a brute-force
 * reference under randomized interleavings; `PP_NO_SQ_FASTPATH=1` (or
 * setFastPathEnabled(false)) forces every query down the walk.
 */

#ifndef POLYPATH_MEMSYS_STORE_QUEUE_HH
#define POLYPATH_MEMSYS_STORE_QUEUE_HH

#include <array>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "ctx/ctx_tag.hh"
#include "memsys/memory.hh"

namespace polypath
{

/** Outcome of a load's store-queue search. */
enum class LoadQueryStatus : u8
{
    Ready,      //!< value fully resolvable now (forwarded and/or memory)
    MustWait,   //!< an older same-path store blocks the load for now
};

/** Result of StoreQueue::queryLoad. */
struct LoadQueryResult
{
    LoadQueryStatus status;
    u64 value = 0;
    bool forwarded = false;     //!< true if any byte came from the queue
};

/** One in-flight store. */
struct StoreQueueEntry
{
    InstSeq seq;
    CtxTag tag;
    Addr addr = 0;
    u64 data = 0;
    u8 size = 0;
    bool addrKnown = false;
    bool dataKnown = false;
};

/** The speculative store buffer. */
class StoreQueue
{
  public:
    /** Fast path defaults on; PP_NO_SQ_FASTPATH=1 force-disables it. */
    StoreQueue();

    /** Insert a store at dispatch (entries arrive in fetch order). */
    void insert(InstSeq seq, const CtxTag &tag, u8 size);

    /** Publish the effective address once dataflow provides it. */
    void setAddress(InstSeq seq, Addr addr);

    /** Publish the store data once dataflow provides it. */
    void setData(InstSeq seq, u64 data);

    /**
     * Resolve a load of @p size bytes at @p addr issued by an instruction
     * with sequence number @p seq on path @p tag. Bytes covered by older
     * same-path (ancestor) stores are forwarded; the rest come from
     * @p mem.
     */
    LoadQueryResult queryLoad(InstSeq seq, const CtxTag &tag, Addr addr,
                              unsigned size,
                              const SparseMemory &mem) const;

    /**
     * Commit the store @p seq: write its data to @p mem and drop the
     * entry. Entries commit in order from the front.
     */
    void commit(InstSeq seq, SparseMemory &mem);

    /** Drop the entry for a killed store. */
    void kill(InstSeq seq);

    /**
     * Branch-resolution bus: drop every entry on the wrong side of
     * history position @p pos given the actual outcome. Returns the
     * number of entries killed.
     */
    unsigned killWrongPath(unsigned pos, bool actual_taken);

    /** Branch-commit bus: invalidate history position @p pos in all
     *  entry tags. */
    void commitPosition(unsigned pos);

    size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** Entry lookup for tests; returns nullptr if absent. */
    const StoreQueueEntry *find(InstSeq seq) const;

    /** Sequence numbers of all entries (invariant checking). */
    std::vector<InstSeq> seqs() const;

    // --- fast-path control / introspection (tests, benches) ----------

    /** Gate the O(1) no-conflict query path (index maintenance always
     *  runs; only the shortcut is switched). */
    void setFastPathEnabled(bool on) { fastPathEnabled = on; }
    bool fastPathIsEnabled() const { return fastPathEnabled; }

    /** Entries whose address is not yet published. */
    unsigned unknownAddresses() const { return unknownAddrCount; }

    /**
     * Validate the incremental summaries against the entries
     * (tests/self-checks): unknownAddrCount and every chunk count must
     * equal a from-scratch recount. Panics on violation.
     */
    void checkIndexInvariants() const;

  private:
    StoreQueueEntry *findMutable(InstSeq seq);

    // --- coarse address index -----------------------------------------
    // Aligned 2^chunkShift-byte chunks hashed direct-mapped into a
    // fixed count table. Aliasing between chunks only ever inflates a
    // count, which is conservative (spurious slow path), never unsafe.
    static constexpr unsigned chunkShift = 6;
    static constexpr size_t numChunkSlots = 1024;

    static size_t
    chunkSlot(u64 chunk)
    {
        return static_cast<size_t>(chunk & (numChunkSlots - 1));
    }

    void indexAdd(Addr addr, unsigned size);
    void indexRemove(Addr addr, unsigned size);

    /** Counter upkeep when @p entry leaves the queue for any reason. */
    void onEntryRemoved(const StoreQueueEntry &entry);

    /** Sorted by seq (insertion is in fetch order). */
    std::deque<StoreQueueEntry> entries;

    /** Known-address entries overlapping each (hashed) chunk. */
    std::array<u16, numChunkSlots> chunkCounts{};

    /** Entries with !addrKnown (MustWait is impossible when zero). */
    unsigned unknownAddrCount = 0;

    bool fastPathEnabled;
};

} // namespace polypath

#endif // POLYPATH_MEMSYS_STORE_QUEUE_HH
