/**
 * @file
 * A set-associative LRU data-cache timing model.
 *
 * The paper's machine model assumes perfect caches (§4.2), and that
 * remains the default. This model is the repository's optional
 * extension for studying SEE under realistic memory latency: loads that
 * miss pay a configurable penalty, and wrong-path accesses really do
 * probe and fill the cache — eager execution can pollute it *or*
 * prefetch for the correct path, which is exactly the tension the
 * `ablations` bench measures.
 *
 * Only timing is modelled here; data always comes from the store queue
 * and the backing SparseMemory.
 */

#ifndef POLYPATH_MEMSYS_CACHE_HH
#define POLYPATH_MEMSYS_CACHE_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace polypath
{

/** D-cache geometry and timing. */
struct CacheConfig
{
    bool perfect = true;            //!< paper default: every access hits
    unsigned sizeBytes = 32768;
    unsigned lineBytes = 32;
    unsigned ways = 2;
    unsigned missLatency = 20;      //!< extra cycles on a miss
};

/** Timing-only set-associative cache with true-LRU replacement. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &cache_cfg);

    /**
     * Probe (and on a miss, fill) the line containing @p addr.
     * @return extra latency in cycles (0 on hit or for a perfect cache)
     */
    unsigned access(Addr addr);

    u64 hits() const { return hitCount; }
    u64 misses() const { return missCount; }

    /** For tests: is the line containing @p addr currently resident? */
    bool contains(Addr addr) const;

  private:
    struct Way
    {
        u64 tag = 0;
        bool valid = false;
        u64 lastUse = 0;
    };

    size_t setIndex(Addr addr) const;
    u64 lineTag(Addr addr) const;

    CacheConfig cfg;
    unsigned numSets = 0;
    std::vector<Way> ways;          //!< numSets * cfg.ways entries
    u64 useClock = 0;
    u64 hitCount = 0;
    u64 missCount = 0;
};

} // namespace polypath

#endif // POLYPATH_MEMSYS_CACHE_HH
