#include "store_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace polypath
{

void
StoreQueue::insert(InstSeq seq, const CtxTag &tag, u8 size)
{
    panic_if(!entries.empty() && entries.back().seq >= seq,
             "store queue insertion out of fetch order");
    StoreQueueEntry entry;
    entry.seq = seq;
    entry.tag = tag;
    entry.size = size;
    entries.push_back(entry);
}

StoreQueueEntry *
StoreQueue::findMutable(InstSeq seq)
{
    auto it = std::lower_bound(
        entries.begin(), entries.end(), seq,
        [](const StoreQueueEntry &e, InstSeq s) { return e.seq < s; });
    if (it == entries.end() || it->seq != seq)
        return nullptr;
    return &*it;
}

const StoreQueueEntry *
StoreQueue::find(InstSeq seq) const
{
    return const_cast<StoreQueue *>(this)->findMutable(seq);
}

void
StoreQueue::setAddress(InstSeq seq, Addr addr)
{
    StoreQueueEntry *entry = findMutable(seq);
    panic_if(!entry, "setAddress: store %llu not in queue",
             static_cast<unsigned long long>(seq));
    entry->addr = addr;
    entry->addrKnown = true;
}

void
StoreQueue::setData(InstSeq seq, u64 data)
{
    StoreQueueEntry *entry = findMutable(seq);
    panic_if(!entry, "setData: store %llu not in queue",
             static_cast<unsigned long long>(seq));
    entry->data = data;
    entry->dataKnown = true;
}

LoadQueryResult
StoreQueue::queryLoad(InstSeq seq, const CtxTag &tag, Addr addr,
                      unsigned size, const SparseMemory &mem) const
{
    panic_if(size == 0 || size > 8, "load of size %u", size);

    // Per-byte resolution: needed[i] says byte i still lacks a source;
    // value accumulates forwarded bytes.
    unsigned needed_mask = (1u << size) - 1;
    u64 value = 0;
    bool forwarded = false;

    // Youngest-first walk over older same-path stores.
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        const StoreQueueEntry &store = *it;
        if (store.seq >= seq)
            continue;
        if (!store.tag.isAncestorOrSelf(tag))
            continue;
        if (!store.addrKnown) {
            // Perfect disambiguation cannot see through a store whose
            // address is not yet computable from dataflow.
            return {LoadQueryStatus::MustWait};
        }
        // Byte overlap between [addr, addr+size) and the store.
        bool overlaps = false;
        for (unsigned i = 0; i < size; ++i) {
            if (!((needed_mask >> i) & 1))
                continue;
            Addr byte_addr = addr + i;
            if (byte_addr >= store.addr &&
                byte_addr < store.addr + store.size) {
                overlaps = true;
                break;
            }
        }
        if (!overlaps)
            continue;
        if (!store.dataKnown)
            return {LoadQueryStatus::MustWait};
        for (unsigned i = 0; i < size; ++i) {
            if (!((needed_mask >> i) & 1))
                continue;
            Addr byte_addr = addr + i;
            if (byte_addr >= store.addr &&
                byte_addr < store.addr + store.size) {
                u64 byte = (store.data >> (8 * (byte_addr - store.addr)))
                           & 0xff;
                value |= byte << (8 * i);
                needed_mask &= ~(1u << i);
                forwarded = true;
            }
        }
        if (needed_mask == 0)
            break;
    }

    // Remaining bytes come from committed memory state. Program-order
    // older stores are either still in the queue (handled above) or have
    // already drained to memory, so this composition is exact.
    for (unsigned i = 0; i < size; ++i) {
        if ((needed_mask >> i) & 1)
            value |= static_cast<u64>(mem.readByte(addr + i)) << (8 * i);
    }

    return {LoadQueryStatus::Ready, value, forwarded};
}

void
StoreQueue::commit(InstSeq seq, SparseMemory &mem)
{
    panic_if(entries.empty(), "store commit with empty queue");
    StoreQueueEntry &front = entries.front();
    panic_if(front.seq != seq,
             "store commit out of order: head %llu, committing %llu",
             static_cast<unsigned long long>(front.seq),
             static_cast<unsigned long long>(seq));
    panic_if(!front.addrKnown || !front.dataKnown,
             "committing store %llu with unresolved operands",
             static_cast<unsigned long long>(seq));
    mem.write(front.addr, front.data, front.size);
    entries.pop_front();
}

void
StoreQueue::kill(InstSeq seq)
{
    auto it = std::lower_bound(
        entries.begin(), entries.end(), seq,
        [](const StoreQueueEntry &e, InstSeq s) { return e.seq < s; });
    if (it != entries.end() && it->seq == seq)
        entries.erase(it);
}

unsigned
StoreQueue::killWrongPath(unsigned pos, bool actual_taken)
{
    unsigned killed = 0;
    auto keep = [&](const StoreQueueEntry &entry) {
        if (entry.tag.onWrongSide(pos, actual_taken)) {
            ++killed;
            return false;
        }
        return true;
    };
    std::deque<StoreQueueEntry> kept;
    for (const StoreQueueEntry &entry : entries) {
        if (keep(entry))
            kept.push_back(entry);
    }
    entries.swap(kept);
    return killed;
}

std::vector<InstSeq>
StoreQueue::seqs() const
{
    std::vector<InstSeq> out;
    out.reserve(entries.size());
    for (const StoreQueueEntry &entry : entries)
        out.push_back(entry.seq);
    return out;
}

void
StoreQueue::commitPosition(unsigned pos)
{
    for (StoreQueueEntry &entry : entries)
        entry.tag.clearPosition(pos);
}

} // namespace polypath
