#include "store_queue.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "common/prof.hh"

namespace polypath
{

StoreQueue::StoreQueue()
{
    const char *env = std::getenv("PP_NO_SQ_FASTPATH");
    fastPathEnabled = !(env != nullptr && env[0] != '\0' &&
                        env[0] != '0');
}

void
StoreQueue::indexAdd(Addr addr, unsigned size)
{
    u64 first = addr >> chunkShift;
    u64 last = (addr + size - 1) >> chunkShift;
    for (u64 chunk = first;; ++chunk) {
        ++chunkCounts[chunkSlot(chunk)];
        if (chunk == last)
            break;
    }
}

void
StoreQueue::indexRemove(Addr addr, unsigned size)
{
    u64 first = addr >> chunkShift;
    u64 last = (addr + size - 1) >> chunkShift;
    for (u64 chunk = first;; ++chunk) {
        u16 &count = chunkCounts[chunkSlot(chunk)];
        panic_if(count == 0, "store-queue chunk count underflow");
        --count;
        if (chunk == last)
            break;
    }
}

void
StoreQueue::onEntryRemoved(const StoreQueueEntry &entry)
{
    if (entry.addrKnown) {
        indexRemove(entry.addr, entry.size);
    } else {
        panic_if(unknownAddrCount == 0,
                 "store-queue unknown-address count underflow");
        --unknownAddrCount;
    }
}

void
StoreQueue::insert(InstSeq seq, const CtxTag &tag, u8 size)
{
    panic_if(!entries.empty() && entries.back().seq >= seq,
             "store queue insertion out of fetch order");
    panic_if(size == 0, "store of size 0");
    StoreQueueEntry entry;
    entry.seq = seq;
    entry.tag = tag;
    entry.size = size;
    entries.push_back(entry);
    ++unknownAddrCount;
}

StoreQueueEntry *
StoreQueue::findMutable(InstSeq seq)
{
    auto it = std::lower_bound(
        entries.begin(), entries.end(), seq,
        [](const StoreQueueEntry &e, InstSeq s) { return e.seq < s; });
    if (it == entries.end() || it->seq != seq)
        return nullptr;
    return &*it;
}

const StoreQueueEntry *
StoreQueue::find(InstSeq seq) const
{
    return const_cast<StoreQueue *>(this)->findMutable(seq);
}

void
StoreQueue::setAddress(InstSeq seq, Addr addr)
{
    StoreQueueEntry *entry = findMutable(seq);
    panic_if(!entry, "setAddress: store %llu not in queue",
             static_cast<unsigned long long>(seq));
    if (entry->addrKnown) {
        // Re-publication (the core republishes at issue); the address
        // is a pure function of an already-written register, so it
        // cannot change — but keep the index exact regardless.
        if (entry->addr == addr)
            return;
        indexRemove(entry->addr, entry->size);
    } else {
        --unknownAddrCount;
    }
    entry->addr = addr;
    entry->addrKnown = true;
    indexAdd(addr, entry->size);
}

void
StoreQueue::setData(InstSeq seq, u64 data)
{
    StoreQueueEntry *entry = findMutable(seq);
    panic_if(!entry, "setData: store %llu not in queue",
             static_cast<unsigned long long>(seq));
    entry->data = data;
    entry->dataKnown = true;
}

LoadQueryResult
StoreQueue::queryLoad(InstSeq seq, const CtxTag &tag, Addr addr,
                      unsigned size, const SparseMemory &mem) const
{
    PP_PROF_SCOPE(SqQuery);
    panic_if(size == 0 || size > 8, "load of size %u", size);

    // O(1) common case: no entry has an unpublished address (so
    // MustWait is impossible) and no known-address entry overlaps any
    // chunk the load touches (so forwarding is impossible). The full
    // walk below would return exactly the committed-memory bytes.
    if (fastPathEnabled && unknownAddrCount == 0) {
        u64 first = addr >> chunkShift;
        u64 last = (addr + size - 1) >> chunkShift;
        u16 overlap = chunkCounts[chunkSlot(first)];
        if (first != last)
            overlap = static_cast<u16>(overlap +
                                       chunkCounts[chunkSlot(last)]);
        if (overlap == 0)
            return {LoadQueryStatus::Ready, mem.read(addr, size),
                    false};
    }

    // Per-byte resolution: needed[i] says byte i still lacks a source;
    // value accumulates forwarded bytes.
    unsigned needed_mask = (1u << size) - 1;
    u64 value = 0;
    bool forwarded = false;

    // Youngest-first walk over older same-path stores.
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        const StoreQueueEntry &store = *it;
        if (store.seq >= seq)
            continue;
        if (!store.tag.isAncestorOrSelf(tag))
            continue;
        if (!store.addrKnown) {
            // Perfect disambiguation cannot see through a store whose
            // address is not yet computable from dataflow.
            return {LoadQueryStatus::MustWait};
        }
        // Byte overlap between [addr, addr+size) and the store.
        bool overlaps = false;
        for (unsigned i = 0; i < size; ++i) {
            if (!((needed_mask >> i) & 1))
                continue;
            Addr byte_addr = addr + i;
            if (byte_addr >= store.addr &&
                byte_addr < store.addr + store.size) {
                overlaps = true;
                break;
            }
        }
        if (!overlaps)
            continue;
        if (!store.dataKnown)
            return {LoadQueryStatus::MustWait};
        for (unsigned i = 0; i < size; ++i) {
            if (!((needed_mask >> i) & 1))
                continue;
            Addr byte_addr = addr + i;
            if (byte_addr >= store.addr &&
                byte_addr < store.addr + store.size) {
                u64 byte = (store.data >> (8 * (byte_addr - store.addr)))
                           & 0xff;
                value |= byte << (8 * i);
                needed_mask &= ~(1u << i);
                forwarded = true;
            }
        }
        if (needed_mask == 0)
            break;
    }

    // Remaining bytes come from committed memory state. Program-order
    // older stores are either still in the queue (handled above) or have
    // already drained to memory, so this composition is exact.
    for (unsigned i = 0; i < size; ++i) {
        if ((needed_mask >> i) & 1)
            value |= static_cast<u64>(mem.readByte(addr + i)) << (8 * i);
    }

    return {LoadQueryStatus::Ready, value, forwarded};
}

void
StoreQueue::commit(InstSeq seq, SparseMemory &mem)
{
    panic_if(entries.empty(), "store commit with empty queue");
    StoreQueueEntry &front = entries.front();
    panic_if(front.seq != seq,
             "store commit out of order: head %llu, committing %llu",
             static_cast<unsigned long long>(front.seq),
             static_cast<unsigned long long>(seq));
    panic_if(!front.addrKnown || !front.dataKnown,
             "committing store %llu with unresolved operands",
             static_cast<unsigned long long>(seq));
    mem.write(front.addr, front.data, front.size);
    onEntryRemoved(front);
    entries.pop_front();
}

void
StoreQueue::kill(InstSeq seq)
{
    auto it = std::lower_bound(
        entries.begin(), entries.end(), seq,
        [](const StoreQueueEntry &e, InstSeq s) { return e.seq < s; });
    if (it != entries.end() && it->seq == seq) {
        onEntryRemoved(*it);
        entries.erase(it);
    }
}

unsigned
StoreQueue::killWrongPath(unsigned pos, bool actual_taken)
{
    PP_PROF_SCOPE(SqKill);
    unsigned killed = 0;
    // In-place removal (std::erase_if applies the predicate exactly
    // once per entry, so the summary upkeep runs exactly per victim).
    std::erase_if(entries, [&](const StoreQueueEntry &entry) {
        if (!entry.tag.onWrongSide(pos, actual_taken))
            return false;
        onEntryRemoved(entry);
        ++killed;
        return true;
    });
    return killed;
}

std::vector<InstSeq>
StoreQueue::seqs() const
{
    std::vector<InstSeq> out;
    out.reserve(entries.size());
    for (const StoreQueueEntry &entry : entries)
        out.push_back(entry.seq);
    return out;
}

void
StoreQueue::commitPosition(unsigned pos)
{
    for (StoreQueueEntry &entry : entries)
        entry.tag.clearPosition(pos);
}

void
StoreQueue::checkIndexInvariants() const
{
    unsigned unknown = 0;
    std::array<u16, numChunkSlots> counts{};
    for (const StoreQueueEntry &entry : entries) {
        if (!entry.addrKnown) {
            ++unknown;
            continue;
        }
        u64 first = entry.addr >> chunkShift;
        u64 last = (entry.addr + entry.size - 1) >> chunkShift;
        for (u64 chunk = first;; ++chunk) {
            ++counts[chunkSlot(chunk)];
            if (chunk == last)
                break;
        }
    }
    panic_if(unknown != unknownAddrCount,
             "store-queue unknown-address count drifted: %u cached, "
             "%u actual",
             unknownAddrCount, unknown);
    for (size_t slot = 0; slot < numChunkSlots; ++slot) {
        panic_if(counts[slot] != chunkCounts[slot],
                 "store-queue chunk count drifted at slot %zu: "
                 "%u cached, %u actual",
                 slot, chunkCounts[slot], counts[slot]);
    }
}

} // namespace polypath
