/**
 * @file
 * Bimodal and combining branch predictors (McFarling, DEC-WRL TN 36 —
 * the same report the paper takes gshare from).
 *
 * The combining predictor runs a PC-indexed bimodal table and a gshare
 * table side by side with a chooser table of 2-bit counters that learns,
 * per index, which component predicts the branch better. It is the
 * natural "larger predictor" data point for Fig. 9-style equal-area
 * comparisons against SEE.
 */

#ifndef POLYPATH_BPRED_COMBINING_HH
#define POLYPATH_BPRED_COMBINING_HH

#include <vector>

#include "bpred/gshare.hh"
#include "bpred/predictor.hh"
#include "common/sat_counter.hh"

namespace polypath
{

/** Classic bimodal predictor: PC-indexed 2-bit counters. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(unsigned index_bits);

    bool predict(const PredictionQuery &query) override;
    void update(Addr pc, u64 ghr, bool taken) override;
    size_t stateBytes() const override;

    u64 index(Addr pc) const;

  private:
    u64 indexMask;
    std::vector<SatCounter> table;
};

/** McFarling's combining predictor: bimodal + gshare + chooser. */
class CombiningPredictor : public BranchPredictor
{
  public:
    /**
     * @param index_bits log2 size of each of the three tables
     *        (bimodal, gshare, chooser), matching TN 36's equal-split
     */
    explicit CombiningPredictor(unsigned index_bits);

    bool predict(const PredictionQuery &query) override;
    void update(Addr pc, u64 ghr, bool taken) override;
    size_t stateBytes() const override;

  private:
    BimodalPredictor bimodal;
    GsharePredictor gshare;
    u64 chooserMask;
    /** Chooser: high half prefers gshare, low half bimodal. */
    std::vector<SatCounter> chooser;
};

} // namespace polypath

#endif // POLYPATH_BPRED_COMBINING_HH
