/**
 * @file
 * The gshare branch predictor (McFarling, DEC-WRL TN 36), as used for
 * the paper's baseline: global history XOR branch address indexing a
 * table of 2-bit saturating counters. The baseline uses 14 bits of
 * history / 16k counters; Fig. 9 sweeps 10..16 bits.
 */

#ifndef POLYPATH_BPRED_GSHARE_HH
#define POLYPATH_BPRED_GSHARE_HH

#include <vector>

#include "bpred/predictor.hh"
#include "common/sat_counter.hh"

namespace polypath
{

/** gshare: table of 2-bit counters indexed by (pc >> 2) ^ ghr. */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(unsigned history_bits);

    bool predict(const PredictionQuery &query) override;
    void update(Addr pc, u64 ghr, bool taken) override;
    size_t stateBytes() const override;

    /** Table index for a (pc, history) pair; shared with JRS indexing. */
    u64 index(Addr pc, u64 ghr) const;

    unsigned historyBits() const { return histBits; }

  private:
    unsigned histBits;
    u64 indexMask;
    std::vector<SatCounter> table;
};

/** Static always-taken predictor (sanity baseline for tests/ablation). */
class TakenPredictor : public BranchPredictor
{
  public:
    bool predict(const PredictionQuery &) override { return true; }
    void update(Addr, u64, bool) override {}
    size_t stateBytes() const override { return 0; }
};

/**
 * Oracle predictor: perfect knowledge of the committed-path outcome
 * (the paper's "oracle" calibration category). On a wrong path no oracle
 * is definable; it predicts taken there (wrong paths never commit, so
 * this only influences timing).
 */
class OraclePredictor : public BranchPredictor
{
  public:
    bool
    predict(const PredictionQuery &query) override
    {
        if (query.trace && query.cursor.outcomeKnown(*query.trace))
            return query.cursor.actualTaken(*query.trace);
        return true;
    }

    void update(Addr, u64, bool) override {}
    size_t stateBytes() const override { return 0; }
};

} // namespace polypath

#endif // POLYPATH_BPRED_GSHARE_HH
