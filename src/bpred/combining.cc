#include "combining.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace polypath
{

BimodalPredictor::BimodalPredictor(unsigned index_bits)
    : indexMask(lowMask(index_bits)),
      table(size_t(1) << index_bits, SatCounter(2, 1))
{
    fatal_if(index_bits == 0 || index_bits > 28,
             "bimodal table of 2^%u entries unsupported", index_bits);
}

u64
BimodalPredictor::index(Addr pc) const
{
    return (pc >> 2) & indexMask;
}

bool
BimodalPredictor::predict(const PredictionQuery &query)
{
    return table[index(query.pc)].msbSet();
}

void
BimodalPredictor::update(Addr pc, u64 /*ghr*/, bool taken)
{
    SatCounter &ctr = table[index(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

size_t
BimodalPredictor::stateBytes() const
{
    return (table.size() * 2) / 8;
}

CombiningPredictor::CombiningPredictor(unsigned index_bits)
    : bimodal(index_bits), gshare(index_bits),
      chooserMask(lowMask(index_bits)),
      chooser(size_t(1) << index_bits, SatCounter(2, 2))
{
}

bool
CombiningPredictor::predict(const PredictionQuery &query)
{
    bool use_gshare = chooser[(query.pc >> 2) & chooserMask].msbSet();
    return use_gshare ? gshare.predict(query) : bimodal.predict(query);
}

void
CombiningPredictor::update(Addr pc, u64 ghr, bool taken)
{
    // Reconstruct what each component would have said, then train the
    // chooser toward the component that was right (no change when they
    // agree), and both components toward the outcome — TN 36's scheme.
    PredictionQuery query;
    query.pc = pc;
    query.ghr = ghr;
    bool bimodal_guess = bimodal.predict(query);
    bool gshare_guess = gshare.predict(query);

    if (bimodal_guess != gshare_guess) {
        SatCounter &ctr = chooser[(pc >> 2) & chooserMask];
        if (gshare_guess == taken)
            ctr.increment();
        else
            ctr.decrement();
    }
    bimodal.update(pc, ghr, taken);
    gshare.update(pc, ghr, taken);
}

size_t
CombiningPredictor::stateBytes() const
{
    return bimodal.stateBytes() + gshare.stateBytes() +
           (chooser.size() * 2) / 8;
}

} // namespace polypath
