/**
 * @file
 * Branch-prediction and confidence-estimation interfaces.
 *
 * Both receive the fetching path's global history (PolyPath keeps a
 * speculatively-updated GHR copy per path, §4.2) and a TraceCursor so the
 * oracle variants can consult the committed-path ground truth.
 */

#ifndef POLYPATH_BPRED_PREDICTOR_HH
#define POLYPATH_BPRED_PREDICTOR_HH

#include <cstddef>

#include "arch/branch_trace.hh"
#include "common/types.hh"

namespace polypath
{

/** Everything a predictor/estimator may look at when queried at fetch. */
struct PredictionQuery
{
    Addr pc = 0;
    u64 ghr = 0;                        //!< fetching path's global history
    const BranchTrace *trace = nullptr; //!< committed-path ground truth
    TraceCursor cursor;                 //!< this path's trace position
};

/** Direction predictor for conditional branches. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the branch at fetch time. */
    virtual bool predict(const PredictionQuery &query) = 0;

    /**
     * Train with the resolved outcome. @p ghr is the history the
     * prediction was made with (restoring the paper's speculative-update
     * + recovery semantics exactly).
     */
    virtual void update(Addr pc, u64 ghr, bool taken) = 0;

    /** Predictor state size in bytes (equal-area comparisons, Fig. 9). */
    virtual size_t stateBytes() const = 0;
};

/** Branch confidence estimator (§3.2.7). */
class ConfidenceEstimator
{
  public:
    virtual ~ConfidenceEstimator() = default;

    /**
     * Assess the prediction @p pred_taken for the queried branch.
     * @return true for high confidence (follow the prediction);
     *         false for low confidence (SEE diverges)
     */
    virtual bool estimate(const PredictionQuery &query,
                          bool pred_taken) = 0;

    /** Train with the resolved prediction correctness. */
    virtual void update(Addr pc, u64 ghr, bool pred_taken,
                        bool correct) = 0;

    /** Estimator state size in bytes. */
    virtual size_t stateBytes() const = 0;
};

} // namespace polypath

#endif // POLYPATH_BPRED_PREDICTOR_HH
