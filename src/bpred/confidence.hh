/**
 * @file
 * Branch confidence estimators (§3.2.7 / §4.2).
 *
 * The paper uses a modified Jacobsen-Rotenberg-Smith (JRS) one-level
 * estimator with *resetting* counters: a table (same size as the branch
 * predictor) of n-bit counters counting correct predictions since the
 * last misprediction at that index. High confidence is signalled when
 * the counter reaches a threshold. Two paper-specific modifications:
 *   - 1-bit counters (instead of JRS's 4-bit) maximise PVN, the design
 *     parameter that matters for SEE;
 *   - the table index folds in the *speculative outcome of the current
 *     branch* on top of the gshare history ("enhanced indexing"), which
 *     the paper reports as a substantial improvement.
 */

#ifndef POLYPATH_BPRED_CONFIDENCE_HH
#define POLYPATH_BPRED_CONFIDENCE_HH

#include <vector>

#include "bpred/predictor.hh"
#include "common/sat_counter.hh"

namespace polypath
{

/** Always high confidence: never diverge — the monopath machine. */
class AlwaysHighConfidence : public ConfidenceEstimator
{
  public:
    bool estimate(const PredictionQuery &, bool) override { return true; }
    void update(Addr, u64, bool, bool) override {}
    size_t stateBytes() const override { return 0; }
};

/** Always low confidence: diverge on every branch (ablation). */
class AlwaysLowConfidence : public ConfidenceEstimator
{
  public:
    bool estimate(const PredictionQuery &, bool) override { return false; }
    void update(Addr, u64, bool, bool) override {}
    size_t stateBytes() const override { return 0; }
};

/**
 * Oracle confidence (the paper's "gshare/oracle" category): low
 * confidence exactly when the prediction is wrong. Unknowable on wrong
 * paths, where it signals high confidence.
 */
class OracleConfidence : public ConfidenceEstimator
{
  public:
    bool
    estimate(const PredictionQuery &query, bool pred_taken) override
    {
        if (query.trace && query.cursor.outcomeKnown(*query.trace))
            return pred_taken == query.cursor.actualTaken(*query.trace);
        return true;
    }

    void update(Addr, u64, bool, bool) override {}
    size_t stateBytes() const override { return 0; }
};

/** JRS one-level estimator with resetting counters. */
class JrsConfidence : public ConfidenceEstimator
{
    friend class AdaptiveJrsConfidence;

  public:
    /**
     * @param history_bits log2 of the counter-table size (matched to the
     *                     branch predictor, per §4.2)
     * @param counter_bits counter width; the paper advocates 1
     * @param threshold counter value at/above which confidence is high
     * @param enhanced_index fold the speculative outcome of the current
     *                       branch into the table index
     */
    JrsConfidence(unsigned history_bits, unsigned counter_bits = 1,
                  unsigned threshold = 1, bool enhanced_index = true);

    bool estimate(const PredictionQuery &query, bool pred_taken) override;
    void update(Addr pc, u64 ghr, bool pred_taken, bool correct) override;
    size_t stateBytes() const override;

    unsigned counterBits() const { return ctrBits; }

  private:
    u64 index(Addr pc, u64 ghr, bool pred_taken) const;

    /** Raw table consultation without the PredictionQuery wrapper. */
    bool highAt(Addr pc, u64 ghr, bool pred_taken) const;

    unsigned histBits;
    unsigned ctrBits;
    u8 thresholdValue;
    bool enhancedIndex;
    u64 indexMask;
    std::vector<SatCounter> table;
};

/**
 * The §5.1 "lesson learned", implemented: a JRS estimator that monitors
 * its own predictive value (PVN) over a sliding window of its
 * low-confidence calls and reverts to strict monopath execution
 * (signalling high confidence for everything) whenever the measured PVN
 * drops below a floor. The paper observed that m88ksim loses 8.5% under
 * SEE precisely because JRS's PVN collapses to 16% there; this wrapper
 * caps that downside while leaving high-PVN benchmarks untouched.
 *
 * The estimator keeps monitoring while reverted (the underlying JRS
 * tables continue to train on every branch), so it re-enables eager
 * execution when the program moves into a phase the estimator handles
 * well.
 */
class AdaptiveJrsConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param pvn_floor re-enable/disable threshold on the measured PVN
     * @param window_events low-confidence events per measurement window
     */
    AdaptiveJrsConfidence(unsigned history_bits, unsigned counter_bits = 1,
                          unsigned threshold = 1,
                          bool enhanced_index = true,
                          double pvn_floor = 0.25,
                          unsigned window_events = 512);

    bool estimate(const PredictionQuery &query, bool pred_taken) override;
    void update(Addr pc, u64 ghr, bool pred_taken, bool correct) override;
    size_t stateBytes() const override;

    /** Is eager execution currently enabled? */
    bool divergenceEnabled() const { return divergeEnabled; }

  private:
    JrsConfidence inner;
    double pvnFloor;
    unsigned windowEvents;
    unsigned lowSeen = 0;
    unsigned lowWrong = 0;
    bool divergeEnabled = true;
};

} // namespace polypath

#endif // POLYPATH_BPRED_CONFIDENCE_HH
