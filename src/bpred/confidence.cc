#include "confidence.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace polypath
{

namespace
{

// Parameter validation must run before the counter table is
// constructed (SatCounter would panic on a zero width, but a bad
// configuration is a user error, not a simulator bug).
unsigned
validatedJrsParams(unsigned history_bits, unsigned counter_bits,
                   unsigned threshold)
{
    fatal_if(history_bits == 0 || history_bits > 28,
             "JRS table of 2^%u entries unsupported", history_bits);
    fatal_if(counter_bits == 0 || counter_bits > 8,
             "JRS counter width %u unsupported", counter_bits);
    fatal_if(threshold == 0 || threshold > ((1u << counter_bits) - 1),
             "JRS threshold %u out of range for %u-bit counters",
             threshold, counter_bits);
    return history_bits;
}

} // anonymous namespace

JrsConfidence::JrsConfidence(unsigned history_bits, unsigned counter_bits,
                             unsigned threshold, bool enhanced_index)
    : histBits(validatedJrsParams(history_bits, counter_bits, threshold)),
      ctrBits(counter_bits),
      thresholdValue(static_cast<u8>(threshold)),
      enhancedIndex(enhanced_index),
      indexMask(lowMask(history_bits)),
      table(size_t(1) << history_bits, SatCounter(counter_bits, 0))
{
}

u64
JrsConfidence::index(Addr pc, u64 ghr, bool pred_taken) const
{
    // Enhanced indexing (§4.2): shift the speculative outcome of the
    // branch being estimated into the history before hashing.
    u64 history = enhancedIndex ? ((ghr << 1) | (pred_taken ? 1 : 0))
                                : ghr;
    return ((pc >> 2) ^ history) & indexMask;
}

bool
JrsConfidence::highAt(Addr pc, u64 ghr, bool pred_taken) const
{
    return table[index(pc, ghr, pred_taken)].raw() >= thresholdValue;
}

bool
JrsConfidence::estimate(const PredictionQuery &query, bool pred_taken)
{
    return highAt(query.pc, query.ghr, pred_taken);
}

void
JrsConfidence::update(Addr pc, u64 ghr, bool pred_taken, bool correct)
{
    SatCounter &ctr = table[index(pc, ghr, pred_taken)];
    if (correct)
        ctr.increment();
    else
        ctr.reset();
}

size_t
JrsConfidence::stateBytes() const
{
    return (table.size() * ctrBits + 7) / 8;
}

AdaptiveJrsConfidence::AdaptiveJrsConfidence(unsigned history_bits,
                                             unsigned counter_bits,
                                             unsigned threshold,
                                             bool enhanced_index,
                                             double pvn_floor,
                                             unsigned window_events)
    : inner(history_bits, counter_bits, threshold, enhanced_index),
      pvnFloor(pvn_floor), windowEvents(window_events)
{
    fatal_if(pvn_floor < 0.0 || pvn_floor >= 1.0,
             "adaptive PVN floor %.2f out of [0,1)", pvn_floor);
    fatal_if(window_events == 0, "adaptive window must be non-empty");
}

bool
AdaptiveJrsConfidence::estimate(const PredictionQuery &query,
                                bool pred_taken)
{
    bool high = inner.estimate(query, pred_taken);
    // While reverted, everything is reported as high confidence; the
    // inner estimate is still consulted at update() time so monitoring
    // continues.
    return divergeEnabled ? high : true;
}

void
AdaptiveJrsConfidence::update(Addr pc, u64 ghr, bool pred_taken,
                              bool correct)
{
    // Re-derive what the estimator would say for this branch right now
    // (the tables may have moved slightly since fetch; good enough for
    // a monitoring signal).
    bool low = !inner.highAt(pc, ghr, pred_taken);
    inner.update(pc, ghr, pred_taken, correct);
    if (!low)
        return;
    ++lowSeen;
    if (!correct)
        ++lowWrong;
    if (lowSeen >= windowEvents) {
        double pvn = static_cast<double>(lowWrong) /
                     static_cast<double>(lowSeen);
        divergeEnabled = pvn >= pvnFloor;
        lowSeen = 0;
        lowWrong = 0;
    }
}

size_t
AdaptiveJrsConfidence::stateBytes() const
{
    // Inner tables plus two window counters and the mode bit.
    return inner.stateBytes() + 2 * sizeof(u32) + 1;
}

} // namespace polypath
