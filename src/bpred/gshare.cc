#include "gshare.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace polypath
{

GsharePredictor::GsharePredictor(unsigned history_bits)
    : histBits(history_bits), indexMask(lowMask(history_bits)),
      table(size_t(1) << history_bits, SatCounter(2, 1))
{
    fatal_if(history_bits == 0 || history_bits > 28,
             "gshare history of %u bits unsupported", history_bits);
}

u64
GsharePredictor::index(Addr pc, u64 ghr) const
{
    return ((pc >> 2) ^ ghr) & indexMask;
}

bool
GsharePredictor::predict(const PredictionQuery &query)
{
    return table[index(query.pc, query.ghr)].msbSet();
}

void
GsharePredictor::update(Addr pc, u64 ghr, bool taken)
{
    SatCounter &ctr = table[index(pc, ghr)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

size_t
GsharePredictor::stateBytes() const
{
    // 2 bits per counter.
    return (table.size() * 2) / 8;
}

} // namespace polypath
