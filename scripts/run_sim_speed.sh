#!/bin/sh
# Build the simulator in Release mode, run the sim_speed throughput
# benchmark, and report the speedup against the previous run.
#
# The benchmark rewrites BENCH_sim_speed.json (repo root) and
# bench_results/sim_speed.txt; the previous JSON, if any, is used as the
# comparison baseline. To compare against an older commit, check it out,
# run this script once to produce its JSON, then return and run again.
#
# Compare-only mode (no build, no benchmark run):
#   scripts/run_sim_speed.sh --compare OLD.json NEW.json
# prints the per-workload KIPS delta table and exits non-zero when the
# harmonic mean regressed by more than 5% (the CI perf-smoke gate).
#
# Environment:
#   PP_BENCH_SCALE       workload scale (default 1)
#   PP_BENCH_REPS        repetitions per workload (default 2)
#   PP_SPEED_BUILD_DIR   build directory (default build-release)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

# compare_json OLD NEW GATE: per-workload KIPS delta table on stdout.
# With GATE=1, exit 1 when the harmonic mean dropped more than 5%.
compare_json() {
    awk -v gate="$3" '
        # One workload object per line: pull out the name and kips.
        function field(line, key,    s) {
            s = line
            sub(".*\"" key "\": *", "", s)
            sub("[,}].*", "", s)
            gsub("\"", "", s)
            return s
        }
        /"workload":/ {
            w = field($0, "workload"); k = field($0, "kips") + 0
            if (FILENAME == ARGV[1]) { old[w] = k }
            else { new[w] = k; if (!(w in seen)) { order[++n] = w; seen[w] = 1 } }
        }
        /"harmonic_mean_kips":/ {
            h = field($0, "harmonic_mean_kips") + 0
            if (FILENAME == ARGV[1]) old_h = h; else new_h = h
        }
        END {
            printf "%-10s %10s %10s %9s\n", "workload", "old KIPS", "new KIPS", "speedup"
            for (i = 1; i <= n; ++i) {
                w = order[i]
                if (w in old && old[w] > 0)
                    printf "%-10s %10.1f %10.1f %8.2fx\n", w, old[w], new[w], new[w] / old[w]
                else
                    printf "%-10s %10s %10.1f %9s\n", w, "-", new[w], "-"
            }
            if (old_h > 0)
                printf "%-10s %10.1f %10.1f %8.2fx\n", "hmean", old_h, new_h, new_h / old_h
            if (gate + 0 == 1 && old_h > 0 && new_h < old_h * 0.95) {
                printf "FAIL: harmonic mean regressed %.1f%% (> 5%% threshold)\n", \
                       100 * (1 - new_h / old_h)
                exit 1
            }
        }
    ' "$1" "$2"
}

if [ "${1:-}" = "--compare" ]; then
    if [ $# -ne 3 ] || [ ! -f "$2" ] || [ ! -f "$3" ]; then
        echo "usage: $0 --compare OLD.json NEW.json (both must exist)" >&2
        exit 2
    fi
    compare_json "$2" "$3" 1
    exit 0
fi

cd "$repo_root"

build_dir=${PP_SPEED_BUILD_DIR:-build-release}

cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target sim_speed -j "$(nproc 2>/dev/null || echo 2)" >/dev/null

prev_json=""
if [ -f BENCH_sim_speed.json ]; then
    prev_json=$(mktemp)
    cp BENCH_sim_speed.json "$prev_json"
fi

# Provenance for the JSON host block.
PP_GIT_COMMIT=$(git -C "$repo_root" rev-parse --short=12 HEAD 2>/dev/null \
                || echo unknown)
export PP_GIT_COMMIT

PP_BENCH_SCALE=${PP_BENCH_SCALE:-1} "$build_dir/bench/sim_speed"

if [ -n "$prev_json" ]; then
    echo ""
    echo "=== comparison vs previous BENCH_sim_speed.json ==="
    # Informational only (gate=0): refreshing the baseline after a slow
    # host run must not fail; the hard gate is the --compare mode.
    compare_json "$prev_json" BENCH_sim_speed.json 0 \
        | tee -a bench_results/sim_speed.txt
    rm -f "$prev_json"
else
    echo ""
    echo "no previous BENCH_sim_speed.json; baseline recorded"
fi
