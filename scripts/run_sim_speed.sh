#!/bin/sh
# Build the simulator in Release mode, run the sim_speed throughput
# benchmark, and report the speedup against the previous run.
#
# The benchmark rewrites BENCH_sim_speed.json (repo root) and
# bench_results/sim_speed.txt; the previous JSON, if any, is used as the
# comparison baseline. To compare against an older commit, check it out,
# run this script once to produce its JSON, then return and run again.
#
# Environment:
#   PP_BENCH_SCALE       workload scale (default 1)
#   PP_BENCH_REPS        repetitions per workload (default 2)
#   PP_SPEED_BUILD_DIR   build directory (default build-release)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

build_dir=${PP_SPEED_BUILD_DIR:-build-release}

cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target sim_speed -j "$(nproc 2>/dev/null || echo 2)" >/dev/null

prev_json=""
if [ -f BENCH_sim_speed.json ]; then
    prev_json=$(mktemp)
    cp BENCH_sim_speed.json "$prev_json"
fi

PP_BENCH_SCALE=${PP_BENCH_SCALE:-1} "$build_dir/bench/sim_speed"

if [ -n "$prev_json" ]; then
    echo ""
    echo "=== comparison vs previous BENCH_sim_speed.json ==="
    awk '
        # One workload object per line: pull out the name and kips.
        function field(line, key,    s) {
            s = line
            sub(".*\"" key "\": *", "", s)
            sub("[,}].*", "", s)
            gsub("\"", "", s)
            return s
        }
        /"workload":/ {
            w = field($0, "workload"); k = field($0, "kips") + 0
            if (FILENAME == ARGV[1]) { old[w] = k }
            else { new[w] = k; if (!(w in seen)) { order[++n] = w; seen[w] = 1 } }
        }
        /"harmonic_mean_kips":/ {
            h = field($0, "harmonic_mean_kips") + 0
            if (FILENAME == ARGV[1]) old_h = h; else new_h = h
        }
        END {
            printf "%-10s %10s %10s %9s\n", "workload", "old KIPS", "new KIPS", "speedup"
            for (i = 1; i <= n; ++i) {
                w = order[i]
                if (w in old && old[w] > 0)
                    printf "%-10s %10.1f %10.1f %8.2fx\n", w, old[w], new[w], new[w] / old[w]
                else
                    printf "%-10s %10s %10.1f %9s\n", w, "-", new[w], "-"
            }
            if (old_h > 0)
                printf "%-10s %10.1f %10.1f %8.2fx\n", "hmean", old_h, new_h, new_h / old_h
        }
    ' "$prev_json" BENCH_sim_speed.json | tee -a bench_results/sim_speed.txt
    rm -f "$prev_json"
else
    echo ""
    echo "no previous BENCH_sim_speed.json; baseline recorded"
fi
