#!/usr/bin/env bash
# Run clang-tidy (config in .clang-tidy) over the first-party sources
# using the compilation database from a CMake build tree.
#
#   scripts/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build directory defaults to ./build and must have been configured
# already (CMAKE_EXPORT_COMPILE_COMMANDS is on by default). Exits 0 and
# prints a notice when clang-tidy is not installed, so CI on minimal
# images degrades gracefully instead of failing.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
if [[ "${1:-}" == "--" ]]; then
    shift
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" > /dev/null 2>&1; then
    echo "run_clang_tidy: $tidy_bin not found in PATH; skipping" >&2
    exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "run_clang_tidy: no compile_commands.json in $build_dir" >&2
    echo "run_clang_tidy: configure first: cmake -B $build_dir -S $repo_root" >&2
    exit 1
fi

# First-party translation units only; third-party and generated code is
# not ours to lint.
mapfile -t sources < <(cd "$repo_root" &&
    find src tools examples bench -name '*.cc' -o -name '*.cpp' | sort)

echo "run_clang_tidy: checking ${#sources[@]} files"
status=0
for src in "${sources[@]}"; do
    if ! "$tidy_bin" -p "$build_dir" --quiet "$@" "$repo_root/$src"; then
        status=1
    fi
done
exit $status
