#!/bin/sh
# Regenerate every paper artifact into bench_results/.
#
# Usage: scripts/run_all_experiments.sh [build-dir] [scale]
#   build-dir  defaults to ./build
#   scale      PP_BENCH_SCALE (default 1.0; 0.1 for a quick pass)
set -eu

BUILD="${1:-build}"
export PP_BENCH_SCALE="${2:-1.0}"

mkdir -p bench_results
for bench in table1_benchmarks fig8_baseline sec51_confidence \
             sec52_dualpath fig9_predictor_size fig10_window_size \
             fig11_fu_config fig12_pipeline_depth ablations \
             fp_extension; do
    echo "=== $bench (scale $PP_BENCH_SCALE) ==="
    "$BUILD/bench/$bench" | tee "bench_results/$bench.txt"
    echo
done

echo "=== micro_components ==="
"$BUILD/bench/micro_components" --benchmark_min_time=0.05 \
    | tee bench_results/micro_components.txt
