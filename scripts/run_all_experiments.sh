#!/bin/sh
# Regenerate every paper artifact into bench_results/.
#
# Figures run through tools/ppbench against one shared result cache, so
# configuration points that several figures have in common (and repeat
# runs at the same scale) are simulated once and replayed from disk.
#
# Usage: scripts/run_all_experiments.sh [build-dir] [scale]
#   build-dir  defaults to ./build
#   scale      PP_BENCH_SCALE (default 1.0; 0.1 for a quick pass)
#
# Environment:
#   PP_CACHE_DIR   result cache location (default bench_results/.ppcache)
#   PP_NO_CACHE    set non-empty to bypass the result cache
set -eu

BUILD="${1:-build}"
export PP_BENCH_SCALE="${2:-1.0}"

cache_args="--cache-dir ${PP_CACHE_DIR:-bench_results/.ppcache}"
if [ -n "${PP_NO_CACHE:-}" ]; then
    cache_args="--no-cache"
fi

mkdir -p bench_results
for bench in table1_benchmarks fig8_baseline sec51_confidence \
             sec52_dualpath fig9_predictor_size fig10_window_size \
             fig11_fu_config fig12_pipeline_depth ablations \
             fp_extension; do
    echo "=== $bench (scale $PP_BENCH_SCALE) ==="
    # shellcheck disable=SC2086  # cache_args is intentionally a list
    "$BUILD/tools/ppbench" $cache_args "$bench" \
        | tee "bench_results/$bench.txt"
    echo
done

echo "=== micro_components ==="
"$BUILD/bench/micro_components" --benchmark_min_time=0.05 \
    | tee bench_results/micro_components.txt
