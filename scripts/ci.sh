#!/usr/bin/env bash
# The full local CI gauntlet:
#
#   1. Debug build with address+undefined sanitizers
#   2. the complete ctest suite under those sanitizers
#   3. clang-tidy over the first-party sources (skipped if absent)
#   4. pplint over the whole program corpus (workloads + examples/asm)
#   5. result-cache coherence: the same figure run twice against a
#      fresh cache must produce byte-identical tables, with the second
#      (all-hit) pass performing zero simulations
#   6. differential fuzz: ppfuzz sweeps a fixed seed budget across all
#      machine configurations against the lockstep oracle, then the
#      reducer is exercised end-to-end on a fault-injected failure,
#      which must shrink to at most 25 static instructions
#   7. perf smoke: a tiny-scale sim_speed run, then the --compare gate
#      of scripts/run_sim_speed.sh is validated both ways (identical
#      JSONs must pass; a doctored 50%-faster baseline must fail)
#
#   scripts/ci.sh [build-dir]
#
# The build directory defaults to build-ci (separate from the normal
# ./build tree so sanitizer flags do not pollute incremental builds).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"
jobs="$(nproc 2> /dev/null || echo 4)"

echo "=== [1/7] configure + build (Debug, asan+ubsan) ==="
cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPOLYPATH_SANITIZE=ON > /dev/null
cmake --build "$build_dir" -j "$jobs"

echo "=== [2/7] ctest ==="
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "=== [3/7] clang-tidy ==="
"$repo_root/scripts/run_clang_tidy.sh" "$build_dir"

echo "=== [4/7] pplint corpus ==="
"$build_dir/tools/pplint" --all-workloads --quiet --min-severity warning
for example in "$repo_root"/examples/asm/*.s; do
    "$build_dir/tools/pplint" --quiet --min-severity warning "$example"
done

echo "=== [5/7] result-cache coherence (fig8, scale 0.05, twice) ==="
cache_tmp="$(mktemp -d)"
trap 'rm -rf "$cache_tmp"' EXIT
PP_BENCH_SCALE=0.05 "$build_dir/tools/ppbench" fig8_baseline \
    --cache-dir "$cache_tmp/cache" > "$cache_tmp/cold.txt"
PP_BENCH_SCALE=0.05 "$build_dir/tools/ppbench" fig8_baseline \
    --cache-dir "$cache_tmp/cache" --json "$cache_tmp/warm.json" \
    > "$cache_tmp/warm.txt"
cmp "$cache_tmp/cold.txt" "$cache_tmp/warm.txt" || {
    echo "ci: FAIL: warm-cache fig8 tables differ from cold run" >&2
    exit 1
}
grep -Eq '"total": \{"cache_hits": [1-9][0-9]*, "simulations": 0,' \
    "$cache_tmp/warm.json" || {
    echo "ci: FAIL: warm-cache fig8 run still performed simulations" >&2
    cat "$cache_tmp/warm.json" >&2
    exit 1
}
echo "warm pass: byte-identical tables, zero simulations"

echo "=== [6/7] differential fuzz (ppfuzz, 500 seeds x all configs) ==="
"$build_dir/tools/ppfuzz" --seeds 0..500 --configs all --jobs "$jobs" \
    --quiet

# Reducer end-to-end: plant a divergence with the fault-injection knob
# and require the minimised repro to stay within 25 static instructions.
"$build_dir/tools/ppfuzz" --reduce 0 --preset mixed --config see \
    --bug-corrupt-output --quiet -o "$cache_tmp/reduced.s" \
    > "$cache_tmp/reduce.txt"
cat "$cache_tmp/reduce.txt"
reduced_instrs="$(sed -nE \
    's/.* from [0-9]+ to ([0-9]+) static instructions.*/\1/p' \
    "$cache_tmp/reduce.txt")"
if [ -z "$reduced_instrs" ] || [ "$reduced_instrs" -gt 25 ]; then
    echo "ci: FAIL: ppfuzz --reduce did not shrink to <= 25 static" \
         "instructions (got '${reduced_instrs:-none}')" >&2
    exit 1
fi
# The reduced artifact must still assemble (ppdis round-trips it).
"$build_dir/tools/ppdis" "$cache_tmp/reduced.s" > /dev/null

echo "=== [7/7] perf smoke (sim_speed scale 0.01 + compare gate) ==="
# Run the benchmark at a tiny scale out of the repo root so the real
# BENCH_sim_speed.json baseline is untouched, then validate the compare
# gate machinery itself: a self-comparison must pass, and a doctored
# baseline with inflated KIPS must trip the >5% hmean regression gate.
(cd "$cache_tmp" && \
    PP_BENCH_SCALE=0.01 PP_BENCH_REPS=1 "$build_dir/bench/sim_speed" \
    > sim_speed_smoke.txt)
smoke_json="$cache_tmp/BENCH_sim_speed.json"
[ -f "$smoke_json" ] || {
    echo "ci: FAIL: smoke sim_speed run produced no JSON" >&2
    exit 1
}
# (Distinct paths: the comparer tells OLD from NEW by filename.)
cp "$smoke_json" "$cache_tmp/self_baseline.json"
"$repo_root/scripts/run_sim_speed.sh" --compare \
    "$cache_tmp/self_baseline.json" "$smoke_json" || {
    echo "ci: FAIL: compare gate rejected identical results" >&2
    exit 1
}
awk '{
    if ($0 ~ /"kips":/)
        gsub(/"kips": /, "\"kips\": 9")
    if ($0 ~ /"harmonic_mean_kips":/)
        gsub(/"harmonic_mean_kips": /, "\"harmonic_mean_kips\": 9")
    print
}' "$smoke_json" > "$cache_tmp/doctored.json"
if "$repo_root/scripts/run_sim_speed.sh" --compare \
    "$cache_tmp/doctored.json" "$smoke_json" > /dev/null; then
    echo "ci: FAIL: compare gate passed a >5% hmean regression" >&2
    exit 1
fi
echo "perf smoke: compare gate passes identity, rejects regression"

echo "ci: all green"
