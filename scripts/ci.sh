#!/usr/bin/env bash
# The full local CI gauntlet:
#
#   1. Debug build with address+undefined sanitizers
#   2. the complete ctest suite under those sanitizers
#   3. clang-tidy over the first-party sources (skipped if absent)
#   4. pplint over the whole program corpus (workloads + examples/asm)
#   5. result-cache coherence: the same figure run twice against a
#      fresh cache must produce byte-identical tables, with the second
#      (all-hit) pass performing zero simulations
#
#   scripts/ci.sh [build-dir]
#
# The build directory defaults to build-ci (separate from the normal
# ./build tree so sanitizer flags do not pollute incremental builds).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"
jobs="$(nproc 2> /dev/null || echo 4)"

echo "=== [1/5] configure + build (Debug, asan+ubsan) ==="
cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPOLYPATH_SANITIZE=ON > /dev/null
cmake --build "$build_dir" -j "$jobs"

echo "=== [2/5] ctest ==="
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "=== [3/5] clang-tidy ==="
"$repo_root/scripts/run_clang_tidy.sh" "$build_dir"

echo "=== [4/5] pplint corpus ==="
"$build_dir/tools/pplint" --all-workloads --quiet --min-severity warning
for example in "$repo_root"/examples/asm/*.s; do
    "$build_dir/tools/pplint" --quiet --min-severity warning "$example"
done

echo "=== [5/5] result-cache coherence (fig8, scale 0.05, twice) ==="
cache_tmp="$(mktemp -d)"
trap 'rm -rf "$cache_tmp"' EXIT
PP_BENCH_SCALE=0.05 "$build_dir/tools/ppbench" fig8_baseline \
    --cache-dir "$cache_tmp/cache" > "$cache_tmp/cold.txt"
PP_BENCH_SCALE=0.05 "$build_dir/tools/ppbench" fig8_baseline \
    --cache-dir "$cache_tmp/cache" --json "$cache_tmp/warm.json" \
    > "$cache_tmp/warm.txt"
cmp "$cache_tmp/cold.txt" "$cache_tmp/warm.txt" || {
    echo "ci: FAIL: warm-cache fig8 tables differ from cold run" >&2
    exit 1
}
grep -Eq '"total": \{"cache_hits": [1-9][0-9]*, "simulations": 0,' \
    "$cache_tmp/warm.json" || {
    echo "ci: FAIL: warm-cache fig8 run still performed simulations" >&2
    cat "$cache_tmp/warm.json" >&2
    exit 1
}
echo "warm pass: byte-identical tables, zero simulations"

echo "ci: all green"
