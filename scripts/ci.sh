#!/usr/bin/env bash
# The full local CI gauntlet:
#
#   1. Debug build with address+undefined sanitizers
#   2. the complete ctest suite under those sanitizers
#   3. clang-tidy over the first-party sources (skipped if absent)
#   4. pplint over the whole program corpus (workloads + examples/asm)
#
#   scripts/ci.sh [build-dir]
#
# The build directory defaults to build-ci (separate from the normal
# ./build tree so sanitizer flags do not pollute incremental builds).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"
jobs="$(nproc 2> /dev/null || echo 4)"

echo "=== [1/4] configure + build (Debug, asan+ubsan) ==="
cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPOLYPATH_SANITIZE=ON > /dev/null
cmake --build "$build_dir" -j "$jobs"

echo "=== [2/4] ctest ==="
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "=== [3/4] clang-tidy ==="
"$repo_root/scripts/run_clang_tidy.sh" "$build_dir"

echo "=== [4/4] pplint corpus ==="
"$build_dir/tools/pplint" --all-workloads --quiet --min-severity warning
for example in "$repo_root"/examples/asm/*.s; do
    "$build_dir/tools/pplint" --quiet --min-severity warning "$example"
done

echo "ci: all green"
