#include <gtest/gtest.h>

#include "analysis/analyzer.hh"
#include "asmkit/assembler.hh"
#include "asmkit/parser.hh"
#include "asmkit/program.hh"
#include "isa/instr.hh"

namespace polypath
{
namespace
{

size_t
countCode(const AnalysisResult &result, DiagCode code)
{
    size_t n = 0;
    for (const Diagnostic &d : result.diags.diagnostics())
        n += d.code == code ? 1 : 0;
    return n;
}

bool
hasCode(const AnalysisResult &result, DiagCode code)
{
    return countCode(result, code) > 0;
}

const Diagnostic &
firstOf(const AnalysisResult &result, DiagCode code)
{
    for (const Diagnostic &d : result.diags.diagnostics())
        if (d.code == code)
            return d;
    static Diagnostic none;
    ADD_FAILURE() << "no diagnostic with code " << diagCodeName(code);
    return none;
}

// The deliberately-broken fixture from the acceptance criteria: a
// use-before-def register plus an out-of-range branch in one program.
AnalysisResult
analyzeBrokenFixture()
{
    Assembler a;
    a.addi(31, 5, 1);
    Instr far;
    far.op = Opcode::BNE;
    far.ra = 1;
    far.imm = 1000;             // target far outside the code image
    a.emit(far);
    a.add(3, 3, 4);             // r3 is never written anywhere
    a.halt();
    return analyzeProgram(a.assemble("broken"));
}

TEST(Checks, BrokenFixtureReportsBothErrors)
{
    AnalysisResult result = analyzeBrokenFixture();
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(hasCode(result, DiagCode::UseBeforeDef));
    EXPECT_TRUE(hasCode(result, DiagCode::BranchOutOfRange));

    const Diagnostic &ubd = firstOf(result, DiagCode::UseBeforeDef);
    EXPECT_EQ(ubd.severity, Severity::Error);
    EXPECT_NE(ubd.message.find("r3"), std::string::npos)
        << ubd.message;
    EXPECT_EQ(ubd.instrIndex, 2u);

    const Diagnostic &oor = firstOf(result, DiagCode::BranchOutOfRange);
    EXPECT_EQ(oor.instrIndex, 1u);
}

TEST(Checks, CleanProgramHasNoFindings)
{
    Assembler a;
    Label loop = a.newLabel();
    Label out = a.newLabel();
    a.addi(31, 10, 1);
    a.addi(31, 0, 2);
    a.bind(loop);
    a.add(2, 1, 2);
    a.addi(1, -1, 1);
    a.bgt(1, loop);
    a.stq(2, 0, 31);    // store the sum so it is not a dead write
    a.br(out);
    a.bind(out);
    a.halt();
    AnalysisResult result = analyzeProgram(a.assemble("clean"));
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.diags.diagnostics().empty())
        << result.diags.renderText();
    EXPECT_EQ(result.numRoutines, 1u);
}

TEST(Checks, UseBeforeDefOnlyOnSomePaths)
{
    // r2 is written on the taken arm only; the fallthrough arm reaches
    // the read with r2 undefined, so "not written on every path".
    Assembler a;
    Label skip = a.newLabel();
    a.addi(31, 1, 1);
    a.beq(1, skip);
    a.addi(31, 7, 2);
    a.bind(skip);
    a.stq(2, 0, 31);    // reads r2
    a.halt();
    AnalysisResult result = analyzeProgram(a.assemble("somepaths"));
    EXPECT_TRUE(hasCode(result, DiagCode::UseBeforeDef));
    EXPECT_NE(
        firstOf(result, DiagCode::UseBeforeDef).message.find("r2"),
        std::string::npos);
}

TEST(Checks, CallSiteChecksCalleeArguments)
{
    // The callee reads its argument register r16; the caller never
    // writes it, so the JSR site reports the missing argument.
    Assembler a;
    Label fn = a.newLabel();
    a.jsr(26, fn);
    a.stq(0, 0, 31);    // keep v0 from being a dead write
    a.halt();
    a.bind(fn);
    a.add(16, 16, 0);   // v0 = 2 * r16
    a.ret();
    AnalysisResult result = analyzeProgram(a.assemble("noarg"));
    EXPECT_FALSE(result.ok());
    const Diagnostic &d = firstOf(result, DiagCode::UseBeforeDef);
    EXPECT_EQ(d.instrIndex, 0u);    // anchored at the call site
    EXPECT_NE(d.message.find("r16"), std::string::npos) << d.message;
}

TEST(Checks, CallSiteSatisfiedBySetup)
{
    // Same callee, but the caller supplies r16: no finding, and the
    // callee's v0 definition flows back to the caller's read.
    Assembler a;
    Label fn = a.newLabel();
    a.addi(31, 21, 16);
    a.jsr(26, fn);
    a.stq(0, 0, 31);
    a.halt();
    a.bind(fn);
    a.add(16, 16, 0);
    a.ret();
    AnalysisResult result = analyzeProgram(a.assemble("witharg"));
    EXPECT_TRUE(result.ok()) << result.diags.renderText();
    EXPECT_EQ(countCode(result, DiagCode::UseBeforeDef), 0u);
    EXPECT_EQ(result.numRoutines, 2u);
}

TEST(Checks, RetAtEntryRoutine)
{
    Assembler a;
    a.addi(31, 1, 26);
    a.ret();
    AnalysisResult result = analyzeProgram(a.assemble("toplevel_ret"));
    EXPECT_TRUE(hasCode(result, DiagCode::RetAtEntry));
    EXPECT_FALSE(result.ok());
}

TEST(Checks, UnreachableCodeIsAWarning)
{
    Assembler a;
    Label end = a.newLabel();
    a.br(end);
    a.addi(31, 1, 1);   // dead
    a.bind(end);
    a.halt();
    AnalysisResult result = analyzeProgram(a.assemble("deadcode"));
    EXPECT_TRUE(result.ok());   // warnings do not fail verification
    EXPECT_EQ(result.diags.count(Severity::Warning), 1u);
    EXPECT_TRUE(hasCode(result, DiagCode::UnreachableCode));
}

TEST(Checks, FallOffEndAndMissingHalt)
{
    Assembler a;
    a.addi(31, 1, 1);
    a.addi(1, 1, 1);    // execution runs past the end
    AnalysisResult result = analyzeProgram(a.assemble("falloff"));
    EXPECT_TRUE(hasCode(result, DiagCode::FallOffEnd));
    EXPECT_TRUE(hasCode(result, DiagCode::MissingHalt));
    EXPECT_FALSE(result.ok());
}

TEST(Checks, InfiniteLoopReportsMissingHaltOnly)
{
    Assembler a;
    Label loop = a.newLabel();
    a.bind(loop);
    a.br(loop);
    AnalysisResult result = analyzeProgram(a.assemble("spin"));
    EXPECT_TRUE(hasCode(result, DiagCode::MissingHalt));
    EXPECT_FALSE(hasCode(result, DiagCode::FallOffEnd));
}

TEST(Checks, ReachableInvalidInstruction)
{
    // Word 0 decodes to INVALID (uninitialised instruction memory).
    Program p;
    p.name = "inv";
    p.codeBase = 0x1000;
    p.entry = 0x1000;
    Instr halt_instr;
    halt_instr.op = Opcode::HALT;
    p.code = {0u, encodeInstr(halt_instr)};
    AnalysisResult result = analyzeProgram(p);
    EXPECT_TRUE(hasCode(result, DiagCode::ReachableInvalid));
    EXPECT_FALSE(result.ok());
}

TEST(Checks, BadEntryOutsideCode)
{
    Assembler a;
    a.halt();
    Program p = a.assemble("badentry");
    p.entry = p.codeBase + 4 * p.code.size();   // one past the end
    AnalysisResult result = analyzeProgram(p);
    EXPECT_TRUE(hasCode(result, DiagCode::BadEntry));
    EXPECT_EQ(result.numBlocks, 0u);    // analysis stops at bad entry
}

TEST(Checks, BadEntryMisaligned)
{
    Assembler a;
    a.halt();
    Program p = a.assemble("badalign");
    p.entry = p.codeBase + 2;
    AnalysisResult result = analyzeProgram(p);
    const Diagnostic &d = firstOf(result, DiagCode::BadEntry);
    EXPECT_NE(d.message.find("aligned"), std::string::npos);
}

TEST(Checks, EmptyProgramIsBadEntry)
{
    Program p;
    p.name = "empty";
    AnalysisResult result = analyzeProgram(p);
    EXPECT_TRUE(hasCode(result, DiagCode::BadEntry));
    EXPECT_EQ(result.numInstrs, 0u);
}

TEST(Checks, MisalignedQuadAccess)
{
    Assembler a;
    a.li(1, 0x100004);
    a.ldq(2, 0, 1);     // address 0x100004: not 8-byte aligned
    a.stq(2, 4, 1);     // 0x100008: aligned, no finding
    a.halt();
    AnalysisResult result = analyzeProgram(a.assemble("misaligned"));
    EXPECT_EQ(countCode(result, DiagCode::MisalignedAccess), 1u);
    const Diagnostic &d = firstOf(result, DiagCode::MisalignedAccess);
    EXPECT_NE(d.message.find("0x100004"), std::string::npos)
        << d.message;
}

TEST(Checks, DeadWriteNoteAndOptOut)
{
    Assembler a;
    a.addi(31, 5, 1);   // overwritten before any read
    a.addi(31, 6, 1);   // never read at all
    a.halt();
    AnalysisResult noisy = analyzeProgram(a.assemble("deadwrites"));
    EXPECT_TRUE(noisy.ok());    // notes do not fail verification
    EXPECT_EQ(countCode(noisy, DiagCode::DeadWrite), 2u);

    AnalysisOptions options;
    options.deadWrites = false;
    AnalysisResult quiet =
        analyzeProgram(a.assemble("deadwrites"), options);
    EXPECT_EQ(countCode(quiet, DiagCode::DeadWrite), 0u);
}

TEST(Checks, SourceLinesFlowFromParser)
{
    Program p = assembleText("\n"
                             "        add     r1, r1, r2\n"
                             "        halt\n",
                             "lint_input.s");
    AnalysisResult result = analyzeProgram(p);
    const Diagnostic &d = firstOf(result, DiagCode::UseBeforeDef);
    EXPECT_EQ(d.srcLine, 2u);
    std::string text = result.diags.renderText();
    EXPECT_NE(text.find("lint_input.s:2:"), std::string::npos) << text;
}

TEST(Checks, RenderTextSeverityFilter)
{
    Assembler a;
    a.addi(31, 5, 1);   // dead write (note)
    a.halt();
    AnalysisResult result = analyzeProgram(a.assemble("filter"));
    EXPECT_NE(result.diags.renderText().find("dead-write"),
              std::string::npos);
    EXPECT_EQ(result.diags.renderText(Severity::Warning), "");
}

TEST(Checks, JsonRendering)
{
    AnalysisResult result = analyzeBrokenFixture();
    std::string json = result.diags.renderJson();
    EXPECT_NE(json.find("\"program\": \"broken\""), std::string::npos);
    EXPECT_NE(json.find("\"code\": \"use-before-def\""),
              std::string::npos);
    EXPECT_NE(json.find("\"code\": \"branch-out-of-range\""),
              std::string::npos);
    EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos)
        << json;
}

TEST(Checks, DiagnosticsAreSortedByPc)
{
    AnalysisResult result = analyzeBrokenFixture();
    const std::vector<Diagnostic> &diags = result.diags.diagnostics();
    for (size_t i = 1; i < diags.size(); ++i)
        EXPECT_LE(diags[i - 1].pc, diags[i].pc);
}

} // anonymous namespace
} // namespace polypath
