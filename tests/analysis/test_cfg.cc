#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "asmkit/assembler.hh"
#include "asmkit/program.hh"

namespace polypath
{
namespace
{

/** Count successors of @p blk with the given edge kind. */
size_t
countKind(const BasicBlock &blk, EdgeKind kind)
{
    size_t n = 0;
    for (const CfgEdge &edge : blk.succs)
        n += edge.kind == kind ? 1 : 0;
    return n;
}

TEST(CodeView, BasicGeometry)
{
    Assembler a;
    a.li(1, 5);
    a.halt();
    Program p = a.assemble("geom");

    CodeView view = CodeView::decode(p);
    ASSERT_GE(view.size(), 2u);
    EXPECT_EQ(view.pcOf(0), p.codeBase);
    EXPECT_EQ(view.pcOf(1), p.codeBase + 4);
    EXPECT_TRUE(view.contains(p.codeBase));
    EXPECT_FALSE(view.contains(p.codeBase - 4));
    EXPECT_FALSE(view.contains(p.codeBase + 4 * view.size()));
    EXPECT_FALSE(view.contains(p.codeBase + 2));   // misaligned
    EXPECT_EQ(view.indexOf(p.codeBase + 4), 1u);
}

TEST(Cfg, StraightLineIsOneBlock)
{
    Assembler a;
    a.addi(31, 1, 1);
    a.addi(1, 2, 2);
    a.halt();
    Program p = a.assemble("straight");

    CodeView view = CodeView::decode(p);
    DiagnosticEngine diags(p);
    Cfg cfg(view, diags);

    ASSERT_EQ(cfg.blocks().size(), 1u);
    const BasicBlock &blk = cfg.block(0);
    EXPECT_EQ(blk.first, 0u);
    EXPECT_EQ(blk.last, 2u);
    EXPECT_TRUE(blk.succs.empty());    // HALT has no static successor
    EXPECT_FALSE(blk.fallsOffEnd);
    EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(Cfg, DiamondBranch)
{
    Assembler a;
    Label else_ = a.newLabel();
    Label join = a.newLabel();
    a.addi(31, 10, 1);
    a.beq(1, else_);
    a.addi(1, 1, 2);
    a.br(join);
    a.bind(else_);
    a.addi(1, 2, 2);
    a.bind(join);
    a.add(2, 2, 3);
    a.halt();
    Program p = a.assemble("diamond");

    CodeView view = CodeView::decode(p);
    DiagnosticEngine diags(p);
    Cfg cfg(view, diags);

    ASSERT_EQ(cfg.blocks().size(), 4u);
    const BasicBlock &head = cfg.block(cfg.entryBlock());
    EXPECT_EQ(countKind(head, EdgeKind::Taken), 1u);
    EXPECT_EQ(countKind(head, EdgeKind::Fallthrough), 1u);

    // The BR block has a single taken edge, no fallthrough.
    const BasicBlock &then_blk =
        cfg.block(head.succs[0].kind == EdgeKind::Fallthrough
                      ? head.succs[0].to
                      : head.succs[1].to);
    EXPECT_EQ(then_blk.succs.size(), 1u);
    EXPECT_EQ(then_blk.succs[0].kind, EdgeKind::Taken);

    // The join block has two predecessors; everything is reachable.
    const BasicBlock &join_blk = cfg.block(then_blk.succs[0].to);
    EXPECT_EQ(join_blk.preds.size(), 2u);
    std::vector<bool> reach = cfg.reachableFromEntry();
    for (const BasicBlock &blk : cfg.blocks())
        EXPECT_TRUE(reach[blk.id]) << "block " << blk.id;
}

TEST(Cfg, CallHasCallAndReturnEdges)
{
    Assembler a;
    Label fn = a.newLabel();
    a.jsr(26, fn);
    a.halt();
    a.bind(fn);
    a.ret();
    Program p = a.assemble("call");

    CodeView view = CodeView::decode(p);
    DiagnosticEngine diags(p);
    Cfg cfg(view, diags);

    const BasicBlock &entry = cfg.block(cfg.entryBlock());
    EXPECT_EQ(countKind(entry, EdgeKind::Call), 1u);
    EXPECT_EQ(countKind(entry, EdgeKind::CallFallthrough), 1u);
    EXPECT_EQ(entry.succs.size(), 2u);

    // The RET block has no successors.
    const BasicBlock &callee = cfg.block(cfg.blockOf(2));
    EXPECT_TRUE(callee.succs.empty());
}

TEST(Cfg, UnreachableAfterBr)
{
    Assembler a;
    Label end = a.newLabel();
    a.br(end);
    a.addi(31, 1, 1);   // unreachable
    a.bind(end);
    a.halt();
    Program p = a.assemble("skip");

    CodeView view = CodeView::decode(p);
    DiagnosticEngine diags(p);
    Cfg cfg(view, diags);

    std::vector<bool> reach = cfg.reachableFromEntry();
    EXPECT_TRUE(reach[cfg.blockOf(0)]);
    EXPECT_FALSE(reach[cfg.blockOf(1)]);
    EXPECT_TRUE(reach[cfg.blockOf(2)]);
}

TEST(Cfg, OutOfRangeTargetDropsEdgeAndReports)
{
    Assembler a;
    a.addi(31, 1, 1);
    Instr far;
    far.op = Opcode::BNE;
    far.ra = 1;
    far.imm = 1000;     // points far beyond the code image
    a.emit(far);
    a.halt();
    Program p = a.assemble("far");

    CodeView view = CodeView::decode(p);
    DiagnosticEngine diags(p);
    Cfg cfg(view, diags);

    ASSERT_EQ(diags.diagnostics().size(), 1u);
    EXPECT_EQ(diags.diagnostics()[0].code, DiagCode::BranchOutOfRange);
    EXPECT_EQ(diags.diagnostics()[0].instrIndex, 1u);

    // The branch keeps only its fallthrough edge.
    const BasicBlock &blk = cfg.block(cfg.blockOf(1));
    ASSERT_EQ(blk.succs.size(), 1u);
    EXPECT_EQ(blk.succs[0].kind, EdgeKind::Fallthrough);
}

TEST(Cfg, FallsOffEndFlag)
{
    Assembler a;
    a.addi(31, 1, 1);   // no halt: execution runs off the image
    Program p = a.assemble("falloff");

    CodeView view = CodeView::decode(p);
    DiagnosticEngine diags(p);
    Cfg cfg(view, diags);

    ASSERT_EQ(cfg.blocks().size(), 1u);
    EXPECT_TRUE(cfg.block(0).fallsOffEnd);
}

} // anonymous namespace
} // namespace polypath
