/**
 * @file
 * The lint gate over the whole program corpus: every bundled workload
 * (integer and FP registries) and every assembly example under
 * examples/asm/ must analyze with zero errors and zero warnings.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analyzer.hh"
#include "asmkit/parser.hh"
#include "asmkit/program.hh"
#include "workloads/workloads.hh"

#ifndef PP_EXAMPLES_ASM_DIR
#error "PP_EXAMPLES_ASM_DIR must point at examples/asm"
#endif

namespace polypath
{
namespace
{

void
expectLintClean(const Program &program)
{
    AnalysisResult result = analyzeProgram(program);
    EXPECT_EQ(result.diags.count(Severity::Error), 0u)
        << result.diags.renderText(Severity::Warning);
    EXPECT_EQ(result.diags.count(Severity::Warning), 0u)
        << result.diags.renderText(Severity::Warning);
    EXPECT_GT(result.numInstrs, 0u);
    EXPECT_GT(result.numBlocks, 0u);
}

TEST(LintCorpus, AllIntegerWorkloadsAreClean)
{
    for (const WorkloadInfo &info : workloadRegistry()) {
        SCOPED_TRACE(info.name);
        expectLintClean(info.build(WorkloadParams{}));
    }
}

TEST(LintCorpus, AllFpWorkloadsAreClean)
{
    for (const WorkloadInfo &info : fpWorkloadRegistry()) {
        SCOPED_TRACE(info.name);
        expectLintClean(info.build(WorkloadParams{}));
    }
}

TEST(LintCorpus, WorkloadsStayCleanWhenScaled)
{
    WorkloadParams params;
    params.scale = 0.25;
    for (const WorkloadInfo &info : workloadRegistry()) {
        SCOPED_TRACE(info.name);
        expectLintClean(info.build(params));
    }
}

TEST(LintCorpus, ExampleAssemblyProgramsAreClean)
{
    namespace fs = std::filesystem;
    size_t found = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(PP_EXAMPLES_ASM_DIR)) {
        if (entry.path().extension() != ".s")
            continue;
        ++found;
        SCOPED_TRACE(entry.path().string());
        std::ifstream in(entry.path());
        ASSERT_TRUE(in) << "cannot open " << entry.path();
        std::stringstream buffer;
        buffer << in.rdbuf();
        Program p =
            assembleText(buffer.str(), entry.path().filename().string());
        expectLintClean(p);
    }
    EXPECT_GE(found, 3u) << "examples/asm corpus went missing";
}

} // anonymous namespace
} // namespace polypath
