/**
 * @file
 * Unit tests for the content-addressed result cache: round-trip hits,
 * key sensitivity, version-mismatch and corruption handling (always a
 * recompute, never a crash or a stale result), and the --no-cache
 * bypass (empty cache directory).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "sim/machine.hh"
#include "sim/result_cache.hh"
#include "workloads/workloads.hh"

namespace polypath
{
namespace
{

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (fs::temp_directory_path() /
               ("ppcache_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name()))
                  .string();
        fs::remove_all(dir);

        WorkloadParams params;
        params.scale = 0.01;
        program = buildWorkload("compress", params);
        golden = runGolden(program);
        cfg = SimConfig::seeJrs();
        result = simulate(program, cfg, golden);
        ASSERT_TRUE(result.verified);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string entryFile()
    {
        std::string key = ResultCache::keyFor(program, cfg);
        return dir + "/" + key + ".ppresult";
    }

    std::string dir;
    Program program;
    InterpResult golden;
    SimConfig cfg;
    SimResult result;
};

TEST_F(ResultCacheTest, SerializeRoundTripIsExact)
{
    std::string text = serializeSimResult(result);
    auto parsed = parseSimResult(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(serializeSimResult(*parsed), text);
    EXPECT_EQ(parsed->category, result.category);
    EXPECT_EQ(parsed->workload, result.workload);
    EXPECT_EQ(parsed->verified, result.verified);
    EXPECT_EQ(parsed->stats.cycles, result.stats.cycles);
    EXPECT_EQ(parsed->stats.livePathsHistogram,
              result.stats.livePathsHistogram);
    EXPECT_EQ(parsed->stats.fuIssued, result.stats.fuIssued);
}

TEST_F(ResultCacheTest, StoreThenLookupHits)
{
    ResultCache cache(dir);
    std::string key = ResultCache::keyFor(program, cfg);
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.misses(), 1u);

    cache.store(key, result);
    EXPECT_EQ(cache.stores(), 1u);
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(serializeSimResult(*hit), serializeSimResult(result));
}

TEST_F(ResultCacheTest, KeyIsSensitiveToConfigAndProgram)
{
    std::string base = ResultCache::keyFor(program, cfg);

    SimConfig other = cfg;
    other.windowSize *= 2;
    EXPECT_NE(ResultCache::keyFor(program, other), base);

    SimConfig no_predecode = cfg;
    no_predecode.predecode = false;
    // predecode is observationally invisible but still part of the
    // serialized config, so the key changes (conservative by design).
    EXPECT_NE(ResultCache::keyFor(program, no_predecode), base);

    WorkloadParams params;
    params.scale = 0.02;
    Program bigger = buildWorkload("compress", params);
    EXPECT_NE(ResultCache::keyFor(bigger, cfg), base);

    EXPECT_NE(ResultCache::keyFor(program, cfg, "other-version"), base);
}

TEST_F(ResultCacheTest, VersionMismatchIsAMiss)
{
    std::string key = ResultCache::keyFor(program, cfg);
    {
        ResultCache old_cache(dir, "polypath-sim-v0-test");
        old_cache.store(key, result);
    }
    ResultCache cache(dir, "polypath-sim-v1-test");
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.misses(), 1u);

    // Recompute-and-store under the new version works and hits.
    cache.store(key, result);
    EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST_F(ResultCacheTest, TruncatedEntryIsAMissNotACrash)
{
    ResultCache cache(dir);
    std::string key = ResultCache::keyFor(program, cfg);
    cache.store(key, result);

    std::string text;
    {
        std::ifstream in(entryFile());
        std::getline(in, text, '\0');
    }
    {
        std::ofstream out(entryFile(), std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    EXPECT_FALSE(cache.lookup(key).has_value());

    // Storing again repairs the entry.
    cache.store(key, result);
    EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST_F(ResultCacheTest, CorruptPayloadIsAMissNotACrash)
{
    ResultCache cache(dir);
    std::string key = ResultCache::keyFor(program, cfg);
    cache.store(key, result);

    // Flip one digit in the payload: the checksum must catch it.
    std::string text;
    {
        std::ifstream in(entryFile());
        std::getline(in, text, '\0');
    }
    size_t pos = text.find("cycles ");
    ASSERT_NE(pos, std::string::npos);
    char &digit = text[pos + 7];
    digit = digit == '9' ? '8' : digit + 1;
    {
        std::ofstream out(entryFile(), std::ios::trunc);
        out << text;
    }
    EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST_F(ResultCacheTest, GarbageFileIsAMissNotACrash)
{
    ResultCache cache(dir);
    std::string key = ResultCache::keyFor(program, cfg);
    fs::create_directories(dir);
    {
        std::ofstream out(entryFile(), std::ios::trunc);
        out << "not a cache entry at all\n\x01\x02\x03";
    }
    EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST_F(ResultCacheTest, EmptyDirDisablesTheCache)
{
    ResultCache cache{std::string()};
    EXPECT_FALSE(cache.enabled());
    std::string key = ResultCache::keyFor(program, cfg);
    cache.store(key, result);
    EXPECT_EQ(cache.stores(), 0u);
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.misses(), 1u);
}

} // anonymous namespace
} // namespace polypath
