/**
 * @file
 * Tests of the simulation-driver layer: golden-run reuse, verification
 * controls, cycle caps, result metadata, and per-branch profiling.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "asmkit/assembler.hh"
#include "sim/machine.hh"
#include "workloads/workload_util.hh"

namespace polypath
{
namespace
{

Program
countdown(unsigned n)
{
    Assembler a;
    a.li(1, static_cast<u64>(n));
    Label loop = a.here();
    a.addi(1, -1, 1);
    a.bgt(1, loop);
    a.halt();
    return a.assemble("countdown");
}

TEST(Machine, GoldenRunIsReusableAcrossConfigs)
{
    Program p = countdown(200);
    InterpResult golden = runGolden(p);
    SimResult a = simulate(p, SimConfig::monopath(), golden);
    SimResult b = simulate(p, SimConfig::seeJrs(), golden);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_EQ(a.stats.committedInstrs, golden.instructions);
    EXPECT_EQ(b.stats.committedInstrs, golden.instructions);
}

TEST(Machine, ResultCarriesMetadata)
{
    SimResult r = simulate(countdown(50), SimConfig::seeJrs());
    EXPECT_EQ(r.workload, "countdown");
    EXPECT_EQ(r.category, "gshare/JRS");
    EXPECT_TRUE(r.stats.halted);
    EXPECT_GT(r.ipc(), 0.0);
}

TEST(Machine, VerificationCanBeDisabled)
{
    SimConfig cfg = SimConfig::monopath();
    cfg.verify = false;
    SimResult r = simulate(countdown(50), cfg);
    EXPECT_FALSE(r.verified);       // not checked, reported as such
    EXPECT_TRUE(r.stats.halted);
}

TEST(Machine, DeterministicCycleCounts)
{
    Program p = countdown(500);
    InterpResult golden = runGolden(p);
    SimResult a = simulate(p, SimConfig::seeJrs(), golden);
    SimResult b = simulate(p, SimConfig::seeJrs(), golden);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.fetchedInstrs, b.stats.fetchedInstrs);
    EXPECT_EQ(a.stats.divergences, b.stats.divergences);
}

TEST(MachineDeath, CycleCapIsFatal)
{
    EXPECT_EXIT(
        {
            SimConfig cfg = SimConfig::monopath();
            cfg.maxCycles = 10;     // absurdly tight
            simulate(countdown(100000), cfg);
        },
        ::testing::ExitedWithCode(1), "exceeded");
}

TEST(MachineDeath, CycleCapMessageNamesGuardAndLastCommit)
{
    // Two guards can stop a run (the whole-run cycle cap and the core's
    // no-commit deadlock detector); the fatal message must say which
    // fired and carry the last-commit diagnosis.
    EXPECT_EXIT(
        {
            SimConfig cfg = SimConfig::monopath();
            cfg.maxCycles = 10;
            simulate(countdown(100000), cfg);
        },
        ::testing::ExitedWithCode(1),
        "simulation cycle cap:.*last commit at cycle.*deadlock guard");
}

TEST(Machine, RunParallelRethrowsJobException)
{
    std::vector<std::function<SimResult()>> jobs;
    jobs.emplace_back([] { return simulate(countdown(50),
                                           SimConfig::monopath()); });
    jobs.emplace_back([]() -> SimResult {
        throw std::runtime_error("job exploded");
    });
    jobs.emplace_back([] { return simulate(countdown(50),
                                           SimConfig::monopath()); });
    // Without capture/rethrow this would std::terminate from a worker
    // thread; the exception must surface on the calling thread instead.
    EXPECT_THROW(runParallel(jobs, 2), std::runtime_error);
}

TEST(Machine, RunParallelHonoursWorkerEnvOverride)
{
    ASSERT_EQ(setenv("PP_BENCH_WORKERS", "1", 1), 0);
    std::mutex mutex;
    std::set<std::thread::id> seen;
    std::vector<std::function<SimResult()>> jobs;
    for (int i = 0; i < 4; ++i) {
        jobs.emplace_back([&] {
            {
                std::lock_guard<std::mutex> lock(mutex);
                seen.insert(std::this_thread::get_id());
            }
            return simulate(countdown(20), SimConfig::monopath());
        });
    }
    std::vector<SimResult> results = runParallel(jobs, /*num_workers=*/4);
    ASSERT_EQ(unsetenv("PP_BENCH_WORKERS"), 0);
    // The env override forced a single worker despite num_workers = 4.
    EXPECT_EQ(seen.size(), 1u);
    ASSERT_EQ(results.size(), 4u);
    for (const SimResult &r : results)
        EXPECT_TRUE(r.verified);
}

TEST(Machine, BranchProfilesMatchAggregateStats)
{
    using namespace wreg;
    Assembler a;
    emitWorkloadInit(a);
    a.li(s0, 300);
    a.li(s1, 0x777);
    Label loop = a.newLabel();
    Label skip = a.newLabel();
    Label done = a.newLabel();
    a.bind(loop);
    a.beq(s0, done);
    a.addi(s0, -1, s0);
    emitXorshift(a, s1, t0);
    a.andi(s1, 1, t1);
    a.beq(t1, skip);
    a.addi(s2, 1, s2);
    a.bind(skip);
    a.br(loop);
    a.bind(done);
    a.halt();
    Program p = a.assemble("profiled");

    SimConfig cfg = SimConfig::seeJrs();
    cfg.profileBranches = true;
    InterpResult golden = runGolden(p);
    PolyPathCore core(cfg, p, golden);
    while (!core.halted())
        core.tick();

    u64 execs = 0, mispred = 0, low = 0, diverged = 0;
    for (const auto &[pc, prof] : core.branchProfiles()) {
        execs += prof.execs;
        mispred += prof.mispredicts;
        low += prof.lowConfidence;
        diverged += prof.divergences;
    }
    const SimStats &stats = core.stats();
    EXPECT_EQ(execs, stats.committedBranches);
    EXPECT_EQ(mispred, stats.mispredictedBranches);
    EXPECT_EQ(low, stats.lowConfidenceBranches);
    EXPECT_GT(diverged, 0u);
    // Exactly two static conditional branches in this program.
    EXPECT_EQ(core.branchProfiles().size(), 2u);
}

TEST(Machine, ProfilingOffByDefault)
{
    Program p = countdown(50);
    InterpResult golden = runGolden(p);
    PolyPathCore core(SimConfig::seeJrs(), p, golden);
    while (!core.halted())
        core.tick();
    EXPECT_TRUE(core.branchProfiles().empty());
}

} // anonymous namespace
} // namespace polypath
