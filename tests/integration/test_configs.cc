/**
 * @file
 * Integration: architectural-variation sweeps (the Fig. 9-12 axes plus
 * ablation knobs) all verify against the golden reference. This is the
 * broad correctness net for the experiment harness.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "workloads/workloads.hh"

namespace polypath
{
namespace
{

const Program &
testProgram()
{
    static Program p = [] {
        WorkloadParams params;
        params.scale = 0.04;
        return buildWorkload("gcc", params);
    }();
    return p;
}

const InterpResult &
golden()
{
    static InterpResult g = runGolden(testProgram());
    return g;
}

class WindowSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(WindowSweep, SeeVerifiesAtEveryWindowSize)
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.windowSize = GetParam();
    SimResult r = simulate(testProgram(), cfg, golden());
    EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(Fig10Sizes, WindowSweep,
                         ::testing::Values(64u, 128u, 256u, 512u, 1024u));

class FuSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuSweep, SeeVerifiesAtEveryFuCount)
{
    unsigned n = GetParam();
    SimConfig cfg = SimConfig::seeJrs();
    cfg.numIntAlu0 = n;
    cfg.numIntAlu1 = n;
    cfg.numFpAdd = n;
    cfg.numFpMul = n;
    cfg.numMemPorts = n;
    SimResult r = simulate(testProgram(), cfg, golden());
    EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(Fig11Counts, FuSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

class DepthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DepthSweep, SeeVerifiesAtEveryPipelineDepth)
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.frontendStages = GetParam();
    SimResult r = simulate(testProgram(), cfg, golden());
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(cfg.totalPipelineStages(), GetParam() + 3);
}

INSTANTIATE_TEST_SUITE_P(Fig12Depths, DepthSweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u));

class PredictorSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PredictorSweep, SeeVerifiesAtEveryPredictorSize)
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.historyBits = GetParam();
    SimResult r = simulate(testProgram(), cfg, golden());
    EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(Fig9Sizes, PredictorSweep,
                         ::testing::Values(10u, 12u, 14u, 16u));

class TagWidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TagWidthSweep, SeeVerifiesAtEveryTagWidth)
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.tagWidth = GetParam();
    cfg.maxActivePaths = 0;     // auto
    SimResult r = simulate(testProgram(), cfg, golden());
    EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(Widths, TagWidthSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u));

class FetchPolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(FetchPolicySweep, SeeVerifiesUnderEveryPolicy)
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.fetchPolicy = static_cast<FetchPolicy>(GetParam());
    SimResult r = simulate(testProgram(), cfg, golden());
    EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(Policies, FetchPolicySweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(ConfigIntegration, AllSixFig8CategoriesVerifyOnGo)
{
    WorkloadParams params;
    params.scale = 0.04;
    Program p = buildWorkload("go", params);
    InterpResult g = runGolden(p);
    for (const SimConfig &cfg :
         {SimConfig::monopath(), SimConfig::seeJrs(),
          SimConfig::seeOracleConfidence(), SimConfig::oraclePrediction(),
          SimConfig::dualPathJrs(),
          SimConfig::dualPathOracleConfidence()}) {
        SimResult r = simulate(p, cfg, g);
        EXPECT_TRUE(r.verified) << cfg.categoryName();
    }
}

TEST(ConfigIntegration, AdaptiveJrsVerifies)
{
    SimResult r =
        simulate(testProgram(), SimConfig::seeAdaptiveJrs(), golden());
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(SimConfig::seeAdaptiveJrs().categoryName(),
              "gshare/JRS-adaptive");
}

TEST(ConfigIntegration, ImperfectDcacheVerifies)
{
    // The cache model is timing-only; correctness must be unaffected,
    // and misses must actually occur and slow the machine down.
    SimConfig cfg = SimConfig::seeJrs();
    cfg.dcache.perfect = false;
    cfg.dcache.sizeBytes = 512;         // tiny: force misses
    cfg.dcache.lineBytes = 32;
    cfg.dcache.ways = 2;
    cfg.dcache.missLatency = 24;
    cfg.selfCheckInterval = 64;
    SimResult slow = simulate(testProgram(), cfg, golden());
    EXPECT_TRUE(slow.verified);
    EXPECT_GT(slow.stats.dcacheMisses, 50u);

    SimResult fast =
        simulate(testProgram(), SimConfig::seeJrs(), golden());
    EXPECT_GT(slow.stats.cycles, fast.stats.cycles);
    EXPECT_EQ(fast.stats.dcacheMisses, 0u);
}

TEST(ConfigIntegration, JrsCounterWidthVariantsVerify)
{
    for (unsigned bits : {1u, 2u, 4u}) {
        SimConfig cfg = SimConfig::seeJrs();
        cfg.jrsCounterBits = bits;
        cfg.jrsThreshold = (1u << bits) - 1;
        SimResult r = simulate(testProgram(), cfg, golden());
        EXPECT_TRUE(r.verified) << bits;
    }
}

TEST(ConfigIntegration, CategoryNamesMatchPaperLegends)
{
    EXPECT_EQ(SimConfig::monopath().categoryName(), "gshare/monopath");
    EXPECT_EQ(SimConfig::seeJrs().categoryName(), "gshare/JRS");
    EXPECT_EQ(SimConfig::seeOracleConfidence().categoryName(),
              "gshare/oracle");
    EXPECT_EQ(SimConfig::oraclePrediction().categoryName(), "oracle");
    EXPECT_EQ(SimConfig::dualPathJrs().categoryName(),
              "gshare/JRS/dual-path");
    EXPECT_EQ(SimConfig::dualPathOracleConfidence().categoryName(),
              "gshare/oracle/dual-path");
}

TEST(ConfigIntegration, RunParallelPreservesJobOrder)
{
    std::vector<std::function<SimResult()>> jobs;
    for (unsigned w : {64u, 256u}) {
        jobs.push_back([w] {
            SimConfig cfg = SimConfig::monopath();
            cfg.windowSize = w;
            return simulate(testProgram(), cfg, golden());
        });
    }
    std::vector<SimResult> results = runParallel(jobs, 2);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].verified);
    EXPECT_TRUE(results[1].verified);
    // Larger window cannot be slower in cycles.
    EXPECT_GE(results[0].stats.cycles, results[1].stats.cycles);
}

} // anonymous namespace
} // namespace polypath
