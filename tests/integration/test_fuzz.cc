/**
 * @file
 * Property-based stress test: randomly generated (but terminating by
 * construction) programs must verify against the golden interpreter
 * under every machine configuration. This is the broadest net for
 * subtle timing-model bugs — wrong-path containment, store forwarding,
 * out-of-order resolution, recovery — because the programs have no
 * structure the implementation could accidentally depend on.
 *
 * Program shape: an outer counted loop whose body is a random DAG of
 * straight-line ALU ops, data-dependent forward branches, loads and
 * stores into a private arena, and occasional calls to a small leaf
 * function. Only forward branches appear inside the body, so
 * termination is structural.
 */

#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "common/prng.hh"
#include "sim/machine.hh"
#include "workloads/workload_util.hh"

namespace polypath
{
namespace
{

Program
randomProgram(u64 seed)
{
    using namespace wreg;
    Prng prng(seed);
    Assembler a;

    Addr arena = a.dZero(2048);
    // Pre-seed the arena with random data.
    for (int i = 0; i < 64; ++i)
        a.d64(prng.next());

    emitWorkloadInit(a);
    Label leaf_fn = a.newLabel();

    a.li(s0, 150 + prng.nextBelow(100));    // outer trip count
    a.li(s1, arena);
    a.li(s2, prng.next() | 1);              // xorshift state
    a.li(s3, 0);                            // checksum

    Label outer = a.newLabel();
    Label done = a.newLabel();
    a.bind(outer);
    a.beq(s0, done);
    a.addi(s0, -1, s0);
    emitXorshift(a, s2, t0);

    // Random body: 20-40 operations.
    unsigned body_len = 20 + prng.nextBelow(21);
    std::vector<Label> pending;             // forward-branch joins
    std::vector<unsigned> pending_dist;
    auto bind_due = [&]() {
        for (size_t i = 0; i < pending.size();) {
            if (pending_dist[i] == 0) {
                a.bind(pending[i]);
                pending.erase(pending.begin() + i);
                pending_dist.erase(pending_dist.begin() + i);
            } else {
                --pending_dist[i];
                ++i;
            }
        }
    };

    for (unsigned i = 0; i < body_len; ++i) {
        bind_due();
        u8 r1 = static_cast<u8>(1 + prng.nextBelow(8));     // t regs
        u8 r2 = static_cast<u8>(1 + prng.nextBelow(8));
        u8 rd = static_cast<u8>(1 + prng.nextBelow(8));
        switch (prng.nextBelow(12)) {
          case 0: a.add(r1, r2, rd); break;
          case 1: a.sub(r1, r2, rd); break;
          case 2: a.xor_(r1, r2, rd); break;
          case 3: a.mul(r1, r2, rd); break;
          case 4: a.srli(r1, static_cast<s32>(prng.nextBelow(8)), rd);
                  break;
          case 5: a.cmplt(r1, r2, rd); break;
          case 6: {
            // Load from a random arena slot (register-indexed).
            a.andi(r1, 2040 & ~7, rd);
            a.add(s1, rd, rd);
            a.ldq(rd, 0, rd);
            break;
          }
          case 7: {
            // Store to a random arena slot.
            a.andi(r1, 2040 & ~7, rd);
            a.add(s1, rd, rd);
            a.stq(r2, 0, rd);
            break;
          }
          case 8: {
            // Data-dependent forward branch over the next few ops.
            Label skip = a.newLabel();
            switch (prng.nextBelow(3)) {
              case 0: a.beq(r1, skip); break;
              case 1: a.blt(r1, skip); break;
              default: a.bgt(r1, skip); break;
            }
            pending.push_back(skip);
            pending_dist.push_back(1 + prng.nextBelow(5));
            break;
          }
          case 9: {
            // Mix in fresh randomness so branches stay unpredictable.
            a.xor_(r1, s2, rd);
            break;
          }
          case 10: a.jsr(ra, leaf_fn); break;
          default: a.add(s3, r1, s3); break;
        }
    }
    // Bind any branches still pending past the body.
    for (Label &label : pending)
        a.bind(label);
    a.add(s3, t0, s3);
    a.br(outer);

    a.bind(done);
    a.stq(s3, 0, s1);
    a.halt();

    // Leaf function: a little work, no stack use.
    a.bind(leaf_fn);
    a.addi(v0, 3, v0);
    a.xor_(v0, a0, v0);
    a.ret(ra);

    return a.assemble("fuzz_" + std::to_string(seed));
}

class FuzzPrograms : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPrograms, AllConfigurationsVerify)
{
    Program program = randomProgram(0xf00d + 977 * GetParam());
    InterpResult golden = runGolden(program, 100'000'000);
    ASSERT_TRUE(golden.halted);

    const SimConfig configs[] = {
        SimConfig::monopath(),
        SimConfig::seeJrs(),
        SimConfig::seeOracleConfidence(),
        SimConfig::oraclePrediction(),
        SimConfig::dualPathJrs(),
        SimConfig::seeAdaptiveJrs(),
        [] {
            SimConfig cfg = SimConfig::seeJrs();
            cfg.confidence = ConfidenceKind::AlwaysLow;  // max divergence
            return cfg;
        }(),
        [] {
            SimConfig cfg = SimConfig::seeJrs();
            cfg.windowSize = 32;        // tight resources
            cfg.tagWidth = 4;
            cfg.numIntAlu0 = 1;
            cfg.numIntAlu1 = 1;
            cfg.numFpAdd = 1;
            cfg.numFpMul = 1;
            cfg.numMemPorts = 1;
            return cfg;
        }(),
    };
    for (const SimConfig &cfg : configs) {
        SimResult r = simulate(program, cfg, golden);
        EXPECT_TRUE(r.verified) << cfg.categoryName();
        EXPECT_EQ(r.stats.committedInstrs, golden.instructions)
            << cfg.categoryName();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPrograms, ::testing::Range(0, 12));

} // anonymous namespace
} // namespace polypath
