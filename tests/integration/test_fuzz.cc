/**
 * @file
 * Property-based stress test: randomly generated (but terminating by
 * construction) programs must verify against the golden interpreter
 * under every machine configuration. This is the broadest net for
 * subtle timing-model bugs — wrong-path containment, store forwarding,
 * out-of-order resolution, recovery — because the programs have no
 * structure the implementation could accidentally depend on.
 *
 * The programs come from testkit::progen's "legacy" preset — the exact
 * shape this test generated inline before the testkit existed — and
 * each configuration is checked with the lockstep oracle, so a failure
 * reports the first diverging commit rather than a bare digest
 * mismatch. Every assertion prints the failing seed and the exact
 * `ppfuzz --repro <seed>` command line that reproduces it standalone.
 *
 * Iteration count: 12 seeds by default. The PP_FUZZ_ITERS CMake cache
 * entry changes the compiled-in default (keeping ctest discovery and
 * execution in agreement); the PP_FUZZ_ITERS environment variable
 * overrides it when running the binary by hand.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/config.hh"
#include "testkit/oracle.hh"
#include "testkit/progen.hh"

namespace polypath
{
namespace
{

#ifndef PP_FUZZ_ITERS_DEFAULT
#define PP_FUZZ_ITERS_DEFAULT 12
#endif

int
fuzzIters()
{
    if (const char *env = std::getenv("PP_FUZZ_ITERS")) {
        int iters = std::atoi(env);
        if (iters > 0)
            return iters;
    }
    return PP_FUZZ_ITERS_DEFAULT;
}

std::string
reproCommand(u64 seed)
{
    return "ppfuzz --repro " + std::to_string(seed) + " --preset legacy";
}

class FuzzPrograms : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPrograms, AllConfigurationsVerify)
{
    using namespace testkit;

    u64 seed = 0xf00d + 977 * static_cast<u64>(GetParam());
    Program program = generate(presetLegacy(), seed);
    InterpResult golden = interpret(program, 100'000'000);
    ASSERT_TRUE(golden.halted) << "seed " << seed;

    const SimConfig configs[] = {
        SimConfig::monopath(),
        SimConfig::seeJrs(),
        SimConfig::seeOracleConfidence(),
        SimConfig::oraclePrediction(),
        SimConfig::dualPathJrs(),
        SimConfig::seeAdaptiveJrs(),
        [] {
            SimConfig cfg = SimConfig::seeJrs();
            cfg.confidence = ConfidenceKind::AlwaysLow;  // max divergence
            return cfg;
        }(),
        [] {
            SimConfig cfg = SimConfig::seeJrs();
            cfg.windowSize = 32;        // tight resources
            cfg.tagWidth = 4;
            cfg.numIntAlu0 = 1;
            cfg.numIntAlu1 = 1;
            cfg.numFpAdd = 1;
            cfg.numFpMul = 1;
            cfg.numMemPorts = 1;
            return cfg;
        }(),
    };
    for (const SimConfig &cfg : configs) {
        OracleResult result = runOracle(program, cfg, golden);
        EXPECT_TRUE(result.ok())
            << "seed " << seed << " config " << cfg.categoryName() << "\n"
            << result.divergence.report()
            << "repro: " << reproCommand(seed);
        EXPECT_EQ(result.stats.committedInstrs, golden.instructions)
            << "seed " << seed << " config " << cfg.categoryName()
            << "\nrepro: " << reproCommand(seed);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPrograms,
                         ::testing::Range(0, fuzzIters()));

} // anonymous namespace
} // namespace polypath
