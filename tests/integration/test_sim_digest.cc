/**
 * @file
 * Cycle-exact regression pins: the full SimStats digest (committed
 * instructions, cycles, kills, divergences, recoveries) of
 * representative workload/configuration pairs, recorded from the
 * original eager-bookkeeping implementation.
 *
 * The pooled-DynInst / lazy-squash machinery is required to be
 * observationally invisible — not just "still verifies", but the exact
 * same timing behaviour, kill counts and path population on every
 * cycle. Any change to these numbers is a semantic change to the
 * simulated machine and must be deliberate (re-record the digests in
 * that case, and say why in the commit).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/prof.hh"
#include "sim/machine.hh"
#include "sim/result_cache.hh"
#include "workloads/workloads.hh"

namespace polypath
{
namespace
{

struct StatsDigest
{
    const char *workload;
    const char *config;
    u64 committedInstrs;
    u64 cycles;
    u64 fetchedInstrs;
    u64 killedInstrs;
    u64 killedFrontend;
    u64 divergences;
    u64 recoveries;
    u64 retRecoveries;
};

// Recorded at scale 0.02 (see) / 0.05 (monopath, dualpath) from the
// pre-pool implementation; see file comment.
constexpr StatsDigest goldenDigests[] = {
    {"compress", "see", 9193ull, 4469ull, 20678ull, 9661ull, 1824ull, 544ull, 43ull, 0ull},
    {"gcc", "see", 13102ull, 5996ull, 35487ull, 9135ull, 13250ull, 2209ull, 259ull, 0ull},
    {"perl", "see", 10504ull, 4002ull, 27152ull, 5187ull, 11461ull, 2036ull, 105ull, 0ull},
    {"go", "see", 16785ull, 13620ull, 89468ull, 34832ull, 37851ull, 17609ull, 249ull, 0ull},
    {"m88ksim", "see", 16437ull, 4989ull, 28742ull, 8338ull, 3967ull, 749ull, 42ull, 0ull},
    {"xlisp", "see", 7123ull, 2931ull, 22694ull, 7764ull, 7807ull, 1801ull, 6ull, 0ull},
    {"vortex", "see", 46834ull, 6939ull, 49729ull, 1756ull, 1139ull, 360ull, 7ull, 0ull},
    {"jpeg", "see", 10412ull, 2863ull, 21550ull, 5419ull, 5719ull, 1010ull, 66ull, 0ull},
    {"compress", "monopath", 23025ull, 12378ull, 46238ull, 21000ull, 2213ull, 0ull, 262ull, 0ull},
    {"go", "dualpath", 42296ull, 45079ull, 243871ull, 107947ull, 93628ull, 5448ull, 3677ull, 0ull},
};

SimConfig
configFor(const std::string &name)
{
    if (name == "see")
        return SimConfig::seeJrs();
    if (name == "monopath")
        return SimConfig::monopath();
    return SimConfig::dualPathJrs();
}

class SimDigest : public ::testing::TestWithParam<StatsDigest> {};

TEST_P(SimDigest, MatchesRecordedStats)
{
    const StatsDigest &want = GetParam();
    WorkloadParams params;
    params.scale = std::string(want.config) == "see" ? 0.02 : 0.05;
    Program program = buildWorkload(want.workload, params);
    InterpResult golden = runGolden(program);
    SimResult r = simulate(program, configFor(want.config), golden);
    ASSERT_TRUE(r.verified);

    const SimStats &s = r.stats;
    EXPECT_EQ(s.committedInstrs, want.committedInstrs);
    EXPECT_EQ(s.cycles, want.cycles);
    EXPECT_EQ(s.fetchedInstrs, want.fetchedInstrs);
    EXPECT_EQ(s.killedInstrs, want.killedInstrs);
    EXPECT_EQ(s.killedFrontend, want.killedFrontend);
    EXPECT_EQ(s.divergences, want.divergences);
    EXPECT_EQ(s.recoveries, want.recoveries);
    EXPECT_EQ(s.retRecoveries, want.retRecoveries);
}

INSTANTIATE_TEST_SUITE_P(
    Pins, SimDigest, ::testing::ValuesIn(goldenDigests),
    [](const ::testing::TestParamInfo<StatsDigest> &info) {
        return std::string(info.param.workload) + "_" +
               info.param.config;
    });

// The predecode fast path (DecodedProgram tables in fetch and the
// interpreter) must be observationally invisible: identical committed
// counts, stats digest and final architectural state with the tables
// on (default), off via SimConfig, and off via PP_NO_PREDECODE.
// serializeSimResult covers every SimStats field; r.verified covers
// the architectural end state (registers + memory vs the golden run).
TEST(PredecodeEquivalence, ConfigKnobIsInvisible)
{
    WorkloadParams params;
    params.scale = 0.02;
    Program program = buildWorkload("gcc", params);
    InterpResult golden = runGolden(program);

    SimConfig on = SimConfig::seeJrs();
    ASSERT_TRUE(on.predecode);
    SimConfig off = on;
    off.predecode = false;

    SimResult with_tables = simulate(program, on, golden);
    SimResult without = simulate(program, off, golden);
    ASSERT_TRUE(with_tables.verified);
    ASSERT_TRUE(without.verified);
    EXPECT_EQ(serializeSimResult(with_tables),
              serializeSimResult(without));

    // Both must also still match the pinned gcc/see digest row above.
    EXPECT_EQ(with_tables.stats.committedInstrs, 13102ull);
    EXPECT_EQ(with_tables.stats.cycles, 5996ull);
    EXPECT_EQ(with_tables.stats.fetchedInstrs, 35487ull);
}

TEST(PredecodeEquivalence, EnvKnobIsInvisible)
{
    WorkloadParams params;
    params.scale = 0.02;
    Program program = buildWorkload("compress", params);
    InterpResult golden = runGolden(program);
    SimConfig cfg = SimConfig::seeJrs();

    SimResult with_tables = simulate(program, cfg, golden);

    ::setenv("PP_NO_PREDECODE", "1", 1);
    SimResult without = simulate(program, cfg, golden);
    ::unsetenv("PP_NO_PREDECODE");

    ASSERT_TRUE(with_tables.verified);
    ASSERT_TRUE(without.verified);
    EXPECT_EQ(serializeSimResult(with_tables),
              serializeSimResult(without));
    EXPECT_EQ(with_tables.stats.committedInstrs, 9193ull);
    EXPECT_EQ(with_tables.stats.cycles, 4469ull);
}

// The pp_prof stage profiler reads clocks and bumps thread-local
// counters but must never feed back into simulation state: the full
// stats digest with collection on must be byte-identical to collection
// off, and both must match the pinned compress/see row.
TEST(ProfilerEquivalence, CollectionIsInvisible)
{
    WorkloadParams params;
    params.scale = 0.02;
    Program program = buildWorkload("compress", params);
    InterpResult golden = runGolden(program);
    SimConfig cfg = SimConfig::seeJrs();

    ASSERT_FALSE(prof::enabled());
    SimResult off = simulate(program, cfg, golden);

    prof::setEnabled(true);
    prof::reset();
    SimResult on = simulate(program, cfg, golden);
    auto costs = prof::snapshot();
    prof::setEnabled(false);

    ASSERT_TRUE(off.verified);
    ASSERT_TRUE(on.verified);
    EXPECT_EQ(serializeSimResult(off), serializeSimResult(on));
    EXPECT_EQ(off.stats.committedInstrs, 9193ull);
    EXPECT_EQ(off.stats.cycles, 4469ull);

    // Collection did actually happen: every pipeline phase ran once per
    // cycle (commit every cycle; the rest stop once HALT commits).
    for (size_t i = 0; i < prof::numPipelineStages; ++i) {
        EXPECT_GE(costs[i].calls, on.stats.cycles - 1)
            << prof::stageName(static_cast<prof::Stage>(i));
    }
}

// The store-queue fast-path knob switches only the query shortcut, not
// the answers: PP_NO_SQ_FASTPATH=1 must reproduce the pinned digest
// byte for byte.
TEST(StoreQueueFastPathEquivalence, EnvKnobIsInvisible)
{
    WorkloadParams params;
    params.scale = 0.02;
    Program program = buildWorkload("compress", params);
    InterpResult golden = runGolden(program);
    SimConfig cfg = SimConfig::seeJrs();

    SimResult with_index = simulate(program, cfg, golden);

    ::setenv("PP_NO_SQ_FASTPATH", "1", 1);
    SimResult without = simulate(program, cfg, golden);
    ::unsetenv("PP_NO_SQ_FASTPATH");

    ASSERT_TRUE(with_index.verified);
    ASSERT_TRUE(without.verified);
    EXPECT_EQ(serializeSimResult(with_index),
              serializeSimResult(without));
    EXPECT_EQ(with_index.stats.committedInstrs, 9193ull);
    EXPECT_EQ(with_index.stats.cycles, 4469ull);
}

} // anonymous namespace
} // namespace polypath
