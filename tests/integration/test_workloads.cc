/**
 * @file
 * Integration: every workload runs on the timing core and self-verifies
 * (committed control flow against the golden trace, final registers and
 * memory against the reference interpreter).
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "workloads/workloads.hh"

namespace polypath
{
namespace
{

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.scale = 0.05;     // keep unit-test runtime low
    return p;
}

class WorkloadRun : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadRun, InterpreterCompletes)
{
    Program p = buildWorkload(GetParam(), smallParams());
    InterpResult r = runGolden(p);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.instructions, 1000u);
    EXPECT_GT(r.condBranches, 50u);
}

TEST_P(WorkloadRun, MonopathVerifies)
{
    Program p = buildWorkload(GetParam(), smallParams());
    SimResult r = simulate(p, SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.ipc(), 0.2);
}

TEST_P(WorkloadRun, SeeJrsVerifies)
{
    Program p = buildWorkload(GetParam(), smallParams());
    SimResult r = simulate(p, SimConfig::seeJrs());
    EXPECT_TRUE(r.verified);
}

TEST_P(WorkloadRun, SeeOracleConfidenceVerifies)
{
    Program p = buildWorkload(GetParam(), smallParams());
    InterpResult golden = runGolden(p);
    SimResult r = simulate(p, SimConfig::seeOracleConfidence(), golden);
    EXPECT_TRUE(r.verified);
    // Perfect confidence only diverges on real mispredictions, which
    // always beats paying the full recovery penalty: SEE(oracle) must
    // never lose to monopath on any benchmark (Fig. 8's ordering).
    SimResult mono = simulate(p, SimConfig::monopath(), golden);
    EXPECT_GE(r.ipc(), mono.ipc() * 0.99) << GetParam();
}

TEST_P(WorkloadRun, DeterministicAcrossBuilds)
{
    WorkloadParams params = smallParams();
    Program p1 = buildWorkload(GetParam(), params);
    Program p2 = buildWorkload(GetParam(), params);
    EXPECT_EQ(p1.code, p2.code);
    ASSERT_EQ(p1.dataSegments.size(), p2.dataSegments.size());
    for (size_t i = 0; i < p1.dataSegments.size(); ++i) {
        EXPECT_EQ(p1.dataSegments[i].first, p2.dataSegments[i].first);
        EXPECT_EQ(p1.dataSegments[i].second, p2.dataSegments[i].second);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadRun,
                         ::testing::Values("compress", "gcc", "perl",
                                           "go", "m88ksim", "xlisp",
                                           "vortex", "jpeg"));

class FpWorkloadRun : public ::testing::TestWithParam<const char *> {};

TEST_P(FpWorkloadRun, VerifiesUnderMonopathAndSee)
{
    WorkloadParams params;
    params.scale = 0.1;
    Program p = buildWorkload(GetParam(), params);
    InterpResult golden = runGolden(p);
    EXPECT_TRUE(golden.halted);
    SimResult mono = simulate(p, SimConfig::monopath(), golden);
    SimResult see = simulate(p, SimConfig::seeJrs(), golden);
    SimResult see_orc =
        simulate(p, SimConfig::seeOracleConfidence(), golden);
    SimResult adaptive =
        simulate(p, SimConfig::seeAdaptiveJrs(), golden);
    EXPECT_TRUE(mono.verified);
    EXPECT_TRUE(see.verified);
    EXPECT_TRUE(see_orc.verified);
    EXPECT_TRUE(adaptive.verified);
    // The §5.1 conjecture in its pure form: with perfect confidence,
    // SEE never hurts predictable FP code.
    EXPECT_GE(see_orc.ipc(), mono.ipc() * 0.99);
    // The real JRS estimator may lose a little (low PVN); the adaptive
    // wrapper must cap that loss.
    EXPECT_GE(see.ipc(), mono.ipc() * 0.88);
    EXPECT_GE(adaptive.ipc(), mono.ipc() * 0.96);
}

INSTANTIATE_TEST_SUITE_P(FpKernels, FpWorkloadRun,
                         ::testing::Values("wave", "nbody"));

TEST(FpWorkloads, ExerciseFpUnits)
{
    WorkloadParams params;
    params.scale = 0.1;
    SimResult r =
        simulate(buildWorkload("wave", params), SimConfig::monopath());
    EXPECT_GT(r.stats.fuIssued[static_cast<size_t>(ExecClass::FpAdd)],
              1000u);
    EXPECT_GT(r.stats.fuIssued[static_cast<size_t>(ExecClass::FpMul)],
              500u);
}

TEST(WorkloadRegistry, HasAllEightInTableOrder)
{
    const auto &reg = workloadRegistry();
    ASSERT_EQ(reg.size(), 8u);
    EXPECT_EQ(reg[0].name, "compress");
    EXPECT_EQ(reg[3].name, "go");
    EXPECT_EQ(reg[7].name, "jpeg");
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_EXIT(buildWorkload("doom"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(WorkloadRegistry, ScaleGrowsInstructionCount)
{
    WorkloadParams small, large;
    small.scale = 0.05;
    large.scale = 0.10;
    u64 n_small =
        runGolden(buildWorkload("compress", small)).instructions;
    u64 n_large =
        runGolden(buildWorkload("compress", large)).instructions;
    EXPECT_GT(n_large, n_small * 3 / 2);
}

TEST(WorkloadCharacter, GoIsHardestVortexIsEasiest)
{
    // The Table 1 spectrum: go must mispredict far more than vortex.
    WorkloadParams params;
    params.scale = 0.1;
    SimResult go =
        simulate(buildWorkload("go", params), SimConfig::monopath());
    SimResult vortex =
        simulate(buildWorkload("vortex", params), SimConfig::monopath());
    EXPECT_GT(go.stats.mispredictRate(),
              3 * vortex.stats.mispredictRate());
    EXPECT_GT(go.stats.mispredictRate(), 0.10);
    EXPECT_LT(vortex.stats.mispredictRate(), 0.06);
}

} // anonymous namespace
} // namespace polypath
