#include <gtest/gtest.h>

#include "rename/phys_regfile.hh"
#include "rename/regmap.hh"

namespace polypath
{
namespace
{

TEST(PhysRegFile, ZeroRegisterProperties)
{
    PhysRegFile prf(16);
    EXPECT_TRUE(prf.ready(zeroPhysReg));
    EXPECT_EQ(prf.value(zeroPhysReg), 0u);
    // Releasing the zero register is a no-op, never corrupts the pool.
    unsigned before = prf.numFree();
    prf.release(zeroPhysReg);
    EXPECT_EQ(prf.numFree(), before);
}

TEST(PhysRegFile, AllocStartsNotReady)
{
    PhysRegFile prf(16);
    PhysReg r = prf.alloc();
    EXPECT_NE(r, zeroPhysReg);
    EXPECT_FALSE(prf.ready(r));
    prf.setValue(r, 99);
    EXPECT_TRUE(prf.ready(r));
    EXPECT_EQ(prf.value(r), 99u);
}

TEST(PhysRegFile, AllocReleaseRoundTrip)
{
    PhysRegFile prf(4);     // regs 1..3 allocatable
    EXPECT_EQ(prf.numFree(), 3u);
    PhysReg a = prf.alloc();
    PhysReg b = prf.alloc();
    PhysReg c = prf.alloc();
    EXPECT_FALSE(prf.hasFree());
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    prf.release(b);
    EXPECT_EQ(prf.alloc(), b);
}

TEST(PhysRegFile, ReallocResetsReadiness)
{
    PhysRegFile prf(4);
    PhysReg r = prf.alloc();
    prf.setValue(r, 7);
    prf.release(r);
    // Cycle through to get the same register back.
    PhysReg x = prf.alloc();
    PhysReg y = prf.alloc();
    PhysReg z = prf.alloc();
    EXPECT_TRUE(x == r || y == r || z == r);
    for (PhysReg reg : {x, y, z}) {
        if (reg == r) {
            EXPECT_FALSE(prf.ready(reg));
        }
    }
}

TEST(PhysRegFileDeath, ExhaustionPanics)
{
    PhysRegFile prf(2);
    prf.alloc();
    EXPECT_DEATH(prf.alloc(), "exhausted");
}

TEST(PhysRegFileDeath, WritingZeroRegPanics)
{
    PhysRegFile prf(4);
    EXPECT_DEATH(prf.setValue(zeroPhysReg, 1), "constant-zero");
}

TEST(RegMap, FreshMapReadsZeroPhys)
{
    RegMap map;
    for (LogReg r = 0; r < numLogRegs; ++r)
        EXPECT_EQ(map.lookup(r), zeroPhysReg);
    EXPECT_EQ(map.lookup(noReg), invalidPhysReg);
}

TEST(RegMap, RenameReturnsOldMapping)
{
    RegMap map;
    EXPECT_EQ(map.rename(5, 10), zeroPhysReg);
    EXPECT_EQ(map.lookup(5), 10);
    EXPECT_EQ(map.rename(5, 11), 10);
    EXPECT_EQ(map.lookup(5), 11);
}

TEST(RegMap, CheckpointIsIndependentCopy)
{
    RegMap map;
    map.rename(3, 7);
    RegMap checkpoint = map;        // branch checkpoint (§3.1)
    map.rename(3, 9);
    map.rename(4, 12);
    EXPECT_EQ(map.lookup(3), 9);
    EXPECT_EQ(checkpoint.lookup(3), 7);
    EXPECT_EQ(checkpoint.lookup(4), zeroPhysReg);

    // Misprediction recovery: restore from the checkpoint.
    map = checkpoint;
    EXPECT_EQ(map.lookup(3), 7);
    EXPECT_EQ(map.lookup(4), zeroPhysReg);
}

TEST(RegMap, DivergenceClonesStayIndependent)
{
    // §3.2.5: one RegMap copy per successor path of a divergent branch.
    RegMap parent;
    parent.rename(1, 5);
    RegMap taken_path = parent;
    RegMap nt_path = parent;
    taken_path.rename(1, 6);
    nt_path.rename(1, 7);
    EXPECT_EQ(taken_path.lookup(1), 6);
    EXPECT_EQ(nt_path.lookup(1), 7);
    EXPECT_EQ(parent.lookup(1), 5);
}

TEST(RegMapDeath, ZeroRegisterRenamePanics)
{
    RegMap map;
    EXPECT_DEATH(map.rename(intZeroReg, 3), "bad logical reg");
    EXPECT_DEATH(map.rename(fpZeroReg, 3), "bad logical reg");
    EXPECT_DEATH(map.rename(noReg, 3), "bad logical reg");
}

} // anonymous namespace
} // namespace polypath
