#include <bit>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "isa/semantics.hh"

namespace polypath
{
namespace
{

Instr
rop(Opcode op)
{
    Instr i;
    i.op = op;
    return i;
}

Instr
iop(Opcode op, s32 imm)
{
    Instr i;
    i.op = op;
    i.imm = imm;
    return i;
}

u64
fbits(double d)
{
    return std::bit_cast<u64>(d);
}

double
fval(u64 b)
{
    return std::bit_cast<double>(b);
}

TEST(Semantics, IntegerArithmetic)
{
    EXPECT_EQ(computeResult(rop(Opcode::ADD), 5, 7, 0), 12u);
    EXPECT_EQ(computeResult(rop(Opcode::SUB), 5, 7, 0),
              static_cast<u64>(-2));
    EXPECT_EQ(computeResult(rop(Opcode::MUL), 1000000, 1000000, 0),
              1000000000000ull);
}

TEST(Semantics, WrapAroundIsTwosComplement)
{
    EXPECT_EQ(computeResult(rop(Opcode::ADD), ~u64(0), 1, 0), 0u);
    EXPECT_EQ(computeResult(rop(Opcode::MUL), u64(1) << 63, 2, 0), 0u);
}

TEST(Semantics, Logic)
{
    EXPECT_EQ(computeResult(rop(Opcode::AND), 0b1100, 0b1010, 0), 0b1000u);
    EXPECT_EQ(computeResult(rop(Opcode::OR), 0b1100, 0b1010, 0), 0b1110u);
    EXPECT_EQ(computeResult(rop(Opcode::XOR), 0b1100, 0b1010, 0), 0b0110u);
}

TEST(Semantics, ShiftsMaskAmountTo6Bits)
{
    EXPECT_EQ(computeResult(rop(Opcode::SLL), 1, 64, 0), 1u);
    EXPECT_EQ(computeResult(rop(Opcode::SLL), 1, 65, 0), 2u);
    EXPECT_EQ(computeResult(rop(Opcode::SRL), 0x8000000000000000ull, 63, 0),
              1u);
}

TEST(Semantics, ArithmeticShiftKeepsSign)
{
    u64 minus8 = static_cast<u64>(-8);
    EXPECT_EQ(computeResult(rop(Opcode::SRA), minus8, 1, 0),
              static_cast<u64>(-4));
    EXPECT_EQ(computeResult(rop(Opcode::SRL), minus8, 1, 0),
              0x7ffffffffffffffcull);
}

TEST(Semantics, Compares)
{
    EXPECT_EQ(computeResult(rop(Opcode::CMPEQ), 3, 3, 0), 1u);
    EXPECT_EQ(computeResult(rop(Opcode::CMPEQ), 3, 4, 0), 0u);
    // Signed vs unsigned comparison of -1 and 1.
    u64 minus1 = static_cast<u64>(-1);
    EXPECT_EQ(computeResult(rop(Opcode::CMPLT), minus1, 1, 0), 1u);
    EXPECT_EQ(computeResult(rop(Opcode::CMPULT), minus1, 1, 0), 0u);
    EXPECT_EQ(computeResult(rop(Opcode::CMPLE), 4, 4, 0), 1u);
}

TEST(Semantics, Immediates)
{
    EXPECT_EQ(computeResult(iop(Opcode::ADDI, -5), 3, 0, 0),
              static_cast<u64>(-2));
    EXPECT_EQ(computeResult(iop(Opcode::ANDI, 0xff), 0x1234, 0, 0), 0x34u);
    EXPECT_EQ(computeResult(iop(Opcode::CMPLTI, 0), static_cast<u64>(-1),
                            0, 0),
              1u);
    EXPECT_EQ(computeResult(iop(Opcode::LDAH, 1), 0x10, 0, 0), 0x10010u);
    EXPECT_EQ(computeResult(iop(Opcode::LDAH, -1), 0, 0, 0),
              static_cast<u64>(-65536));
}

TEST(Semantics, JsrLinksReturnAddress)
{
    EXPECT_EQ(computeResult(rop(Opcode::JSR), 0, 0, 0x2000), 0x2004u);
}

TEST(Semantics, FloatingPoint)
{
    u64 r = computeResult(rop(Opcode::FADD), fbits(1.5), fbits(2.25), 0);
    EXPECT_DOUBLE_EQ(fval(r), 3.75);
    r = computeResult(rop(Opcode::FMUL), fbits(3.0), fbits(-2.0), 0);
    EXPECT_DOUBLE_EQ(fval(r), -6.0);
    r = computeResult(rop(Opcode::FDIV), fbits(1.0), fbits(4.0), 0);
    EXPECT_DOUBLE_EQ(fval(r), 0.25);
}

TEST(Semantics, FpDivideByZeroIsTotal)
{
    u64 r = computeResult(rop(Opcode::FDIV), fbits(1.0), fbits(0.0), 0);
    EXPECT_TRUE(std::isinf(fval(r)));
    r = computeResult(rop(Opcode::FDIV), fbits(0.0), fbits(0.0), 0);
    EXPECT_TRUE(std::isnan(fval(r)));
}

TEST(Semantics, FpCompares)
{
    EXPECT_EQ(computeResult(rop(Opcode::FCMPLT), fbits(1.0), fbits(2.0), 0),
              1u);
    EXPECT_EQ(computeResult(rop(Opcode::FCMPEQ), fbits(2.0), fbits(2.0), 0),
              1u);
    EXPECT_EQ(computeResult(rop(Opcode::FCMPEQ), fbits(2.0), fbits(3.0), 0),
              0u);
}

TEST(Semantics, Conversions)
{
    EXPECT_DOUBLE_EQ(fval(computeResult(rop(Opcode::CVTIF),
                                        static_cast<u64>(-7), 0, 0)),
                     -7.0);
    EXPECT_EQ(computeResult(rop(Opcode::CVTFI), fbits(-3.7), 0, 0),
              static_cast<u64>(-3));
}

TEST(Semantics, CvtfiSaturatesOnNonFinite)
{
    double inf = std::numeric_limits<double>::infinity();
    double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(static_cast<s64>(computeResult(rop(Opcode::CVTFI),
                                             fbits(inf), 0, 0)),
              std::numeric_limits<s64>::max());
    EXPECT_EQ(static_cast<s64>(computeResult(rop(Opcode::CVTFI),
                                             fbits(-inf), 0, 0)),
              std::numeric_limits<s64>::min());
    EXPECT_EQ(computeResult(rop(Opcode::CVTFI), fbits(nan), 0, 0), 0u);
}

struct BranchCase
{
    Opcode op;
    s64 value;
    bool taken;
};

class BranchEval : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchEval, MatchesSignedComparisonWithZero)
{
    const BranchCase &c = GetParam();
    Instr br;
    br.op = c.op;
    EXPECT_EQ(evalCondBranch(br, static_cast<u64>(c.value)), c.taken);
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, BranchEval,
    ::testing::Values(
        BranchCase{Opcode::BEQ, 0, true}, BranchCase{Opcode::BEQ, 1, false},
        BranchCase{Opcode::BEQ, -1, false},
        BranchCase{Opcode::BNE, 0, false}, BranchCase{Opcode::BNE, 5, true},
        BranchCase{Opcode::BLT, -1, true}, BranchCase{Opcode::BLT, 0, false},
        BranchCase{Opcode::BGE, 0, true}, BranchCase{Opcode::BGE, -1, false},
        BranchCase{Opcode::BLE, 0, true}, BranchCase{Opcode::BLE, 1, false},
        BranchCase{Opcode::BGT, 1, true}, BranchCase{Opcode::BGT, 0, false},
        BranchCase{Opcode::BGT, -1, false}));

TEST(Semantics, EffectiveAddr)
{
    Instr ld = iop(Opcode::LDQ, -16);
    EXPECT_EQ(effectiveAddr(ld, 0x1000), 0xff0u);
    Instr st = iop(Opcode::STQ, 32);
    EXPECT_EQ(effectiveAddr(st, 0x1000), 0x1020u);
}

} // anonymous namespace
} // namespace polypath
