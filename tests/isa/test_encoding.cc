#include <gtest/gtest.h>

#include "isa/instr.hh"

namespace polypath
{
namespace
{

Instr
makeR(Opcode op, u8 ra, u8 rb, u8 rc)
{
    Instr i;
    i.op = op;
    i.ra = ra;
    i.rb = rb;
    i.rc = rc;
    return i;
}

Instr
makeImm(Opcode op, u8 ra, s32 imm, u8 rc)
{
    Instr i;
    i.op = op;
    i.ra = ra;
    i.rc = rc;
    i.imm = imm;
    return i;
}

TEST(Encoding, RTypeRoundTrip)
{
    Instr in = makeR(Opcode::ADD, 3, 7, 12);
    Instr out = decodeInstr(encodeInstr(in));
    EXPECT_EQ(out.op, Opcode::ADD);
    EXPECT_EQ(out.ra, 3);
    EXPECT_EQ(out.rb, 7);
    EXPECT_EQ(out.rc, 12);
}

TEST(Encoding, ITypeRoundTripNegativeImm)
{
    Instr in = makeImm(Opcode::ADDI, 5, -32768, 9);
    Instr out = decodeInstr(encodeInstr(in));
    EXPECT_EQ(out.op, Opcode::ADDI);
    EXPECT_EQ(out.ra, 5);
    EXPECT_EQ(out.rc, 9);
    EXPECT_EQ(out.imm, -32768);
}

TEST(Encoding, BranchDisplacementRoundTrip)
{
    for (s32 disp : {-(1 << 20), -1, 0, 1, (1 << 20) - 1}) {
        Instr in;
        in.op = Opcode::BEQ;
        in.ra = 4;
        in.imm = disp;
        Instr out = decodeInstr(encodeInstr(in));
        EXPECT_EQ(out.imm, disp) << "disp=" << disp;
        EXPECT_EQ(out.ra, 4);
    }
}

TEST(Encoding, JumpDisplacementRoundTrip)
{
    for (s32 disp : {-(1 << 25), -123456, 0, 99999, (1 << 25) - 1}) {
        Instr in;
        in.op = Opcode::BR;
        in.imm = disp;
        Instr out = decodeInstr(encodeInstr(in));
        EXPECT_EQ(out.op, Opcode::BR);
        EXPECT_EQ(out.imm, disp) << "disp=" << disp;
    }
}

TEST(Encoding, ZeroWordDecodesInvalid)
{
    Instr out = decodeInstr(0);
    EXPECT_EQ(out.op, Opcode::INVALID);
    EXPECT_TRUE(out.info().isInvalid);
}

TEST(Encoding, OutOfRangeOpcodeDecodesInvalid)
{
    u32 word = 0x3fu << 26;     // opcode field 63
    EXPECT_EQ(decodeInstr(word).op, Opcode::INVALID);
}

TEST(Encoding, TargetFromComputesWordRelative)
{
    Instr br;
    br.op = Opcode::BEQ;
    br.imm = 3;
    EXPECT_EQ(br.targetFrom(0x1000), 0x1000u + 4 + 12);
    br.imm = -1;
    EXPECT_EQ(br.targetFrom(0x1000), 0x1000u);
}

// Exhaustive encode/decode round-trip across every opcode.
class OpcodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeRoundTrip, AllFieldsSurvive)
{
    Opcode op = static_cast<Opcode>(GetParam());
    const OpInfo &info = opInfo(op);
    Instr in;
    in.op = op;
    switch (info.format) {
      case Format::R:
        in.ra = 31;
        in.rb = 17;
        in.rc = 1;
        break;
      case Format::I:
      case Format::M:
        in.ra = 30;
        in.rc = 2;
        // Logical immediates are zero-extended; use a value that decodes
        // identically under both conventions when positive.
        if (op == Opcode::ANDI || op == Opcode::ORI ||
            op == Opcode::XORI) {
            in.imm = 0xbeef;    // exercises the unsigned range
        } else {
            in.imm = -1234;
        }
        break;
      case Format::B:
        in.ra = 26;
        in.imm = -4096;
        break;
      case Format::J:
        in.imm = 1 << 20;
        break;
      case Format::N:
        break;
    }
    Instr out = decodeInstr(encodeInstr(in));
    EXPECT_EQ(out.op, in.op);
    switch (info.format) {
      case Format::R:
        EXPECT_EQ(out.ra, in.ra);
        EXPECT_EQ(out.rb, in.rb);
        EXPECT_EQ(out.rc, in.rc);
        break;
      case Format::I:
      case Format::M:
        EXPECT_EQ(out.ra, in.ra);
        EXPECT_EQ(out.rc, in.rc);
        EXPECT_EQ(out.imm, in.imm);
        break;
      case Format::B:
        EXPECT_EQ(out.ra, in.ra);
        EXPECT_EQ(out.imm, in.imm);
        break;
      case Format::J:
        EXPECT_EQ(out.imm, in.imm);
        break;
      case Format::N:
        break;
    }
    // Disassembly never crashes and never returns empty.
    EXPECT_FALSE(out.toString().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range(0, static_cast<int>(Opcode::NumOpcodes)));

TEST(OperandMapping, StoreDataIsSecondSource)
{
    Instr st = makeImm(Opcode::STQ, 4, 16, 7);  // stq r7, 16(r4)
    EXPECT_EQ(st.src1(), intReg(4));
    EXPECT_EQ(st.src2(), intReg(7));
    EXPECT_EQ(st.dst(), noReg);
}

TEST(OperandMapping, LoadWritesDest)
{
    Instr ld = makeImm(Opcode::LDQ, 4, 16, 7);
    EXPECT_EQ(ld.src1(), intReg(4));
    EXPECT_EQ(ld.src2(), noReg);
    EXPECT_EQ(ld.dst(), intReg(7));
}

TEST(OperandMapping, WritesToZeroRegisterDiscarded)
{
    Instr add = makeR(Opcode::ADD, 1, 2, 31);
    EXPECT_EQ(add.dst(), noReg);
    Instr fadd = makeR(Opcode::FADD, 1, 2, 31);
    EXPECT_EQ(fadd.dst(), noReg);
}

TEST(OperandMapping, FpOpsUseFpNamespace)
{
    Instr fadd = makeR(Opcode::FADD, 1, 2, 3);
    EXPECT_EQ(fadd.src1(), fpReg(1));
    EXPECT_EQ(fadd.src2(), fpReg(2));
    EXPECT_EQ(fadd.dst(), fpReg(3));
}

TEST(OperandMapping, FpCompareWritesIntReg)
{
    Instr fcmp = makeR(Opcode::FCMPLT, 1, 2, 3);
    EXPECT_EQ(fcmp.src1(), fpReg(1));
    EXPECT_EQ(fcmp.src2(), fpReg(2));
    EXPECT_EQ(fcmp.dst(), intReg(3));
}

TEST(OperandMapping, JsrWritesLinkReadsNothing)
{
    Instr jsr;
    jsr.op = Opcode::JSR;
    jsr.ra = 26;
    jsr.imm = 10;
    EXPECT_EQ(jsr.src1(), noReg);
    EXPECT_EQ(jsr.dst(), intReg(26));
}

TEST(OperandMapping, RetReadsTarget)
{
    Instr ret;
    ret.op = Opcode::RET;
    ret.ra = 26;
    EXPECT_EQ(ret.src1(), intReg(26));
    EXPECT_EQ(ret.dst(), noReg);
    EXPECT_TRUE(ret.info().isReturn);
}

TEST(OperandMapping, AccessSizes)
{
    Instr ldq = makeImm(Opcode::LDQ, 1, 0, 2);
    Instr ldbu = makeImm(Opcode::LDBU, 1, 0, 2);
    EXPECT_EQ(ldq.accessSize(), 8u);
    EXPECT_EQ(ldbu.accessSize(), 1u);
}

} // anonymous namespace
} // namespace polypath
