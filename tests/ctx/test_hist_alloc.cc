#include <gtest/gtest.h>

#include "ctx/hist_alloc.hh"

namespace polypath
{
namespace
{

TEST(HistAlloc, AllocatesLeftToRight)
{
    HistAlloc alloc(4);
    EXPECT_EQ(alloc.width(), 4u);
    EXPECT_EQ(alloc.alloc(), 0);
    EXPECT_EQ(alloc.alloc(), 1);
    EXPECT_EQ(alloc.alloc(), 2);
    EXPECT_EQ(alloc.alloc(), 3);
    EXPECT_FALSE(alloc.available());
}

TEST(HistAlloc, WrapAroundReuseInVacationOrder)
{
    HistAlloc alloc(3);
    alloc.alloc();              // 0
    alloc.alloc();              // 1
    alloc.alloc();              // 2
    alloc.release(1);
    alloc.release(0);
    // Reuse follows the order positions were vacated.
    EXPECT_EQ(alloc.alloc(), 1);
    EXPECT_EQ(alloc.alloc(), 0);
    EXPECT_FALSE(alloc.available());
}

TEST(HistAlloc, CountsFreePositions)
{
    HistAlloc alloc(8);
    EXPECT_EQ(alloc.numFree(), 8u);
    alloc.alloc();
    alloc.alloc();
    EXPECT_EQ(alloc.numFree(), 6u);
    alloc.release(0);
    EXPECT_EQ(alloc.numFree(), 7u);
}

TEST(HistAllocDeath, DoubleReleasePanics)
{
    HistAlloc alloc(4);
    u8 pos = alloc.alloc();
    alloc.release(pos);
    EXPECT_DEATH(alloc.release(pos), "double release");
}

TEST(HistAllocDeath, ExhaustionPanics)
{
    HistAlloc alloc(2);
    alloc.alloc();
    alloc.alloc();
    EXPECT_DEATH(alloc.alloc(), "none free");
}

TEST(HistAllocDeath, BadPositionPanics)
{
    HistAlloc alloc(4);
    EXPECT_DEATH(alloc.release(4), "bad position");
}

// Long alloc/release churn never produces duplicates in flight.
TEST(HistAlloc, ChurnProperty)
{
    HistAlloc alloc(8);
    std::vector<u8> held;
    u64 lcg = 12345;
    for (int step = 0; step < 10000; ++step) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        bool do_alloc = (lcg >> 33) % 2 == 0;
        if (do_alloc && alloc.available()) {
            u8 pos = alloc.alloc();
            for (u8 h : held)
                ASSERT_NE(h, pos);
            held.push_back(pos);
        } else if (!held.empty()) {
            size_t idx = (lcg >> 40) % held.size();
            alloc.release(held[idx]);
            held.erase(held.begin() + idx);
        }
        ASSERT_EQ(alloc.numFree() + held.size(), 8u);
    }
}

} // anonymous namespace
} // namespace polypath
