/**
 * @file
 * Unit tests for the deferred branch-commit broadcast log
 * (ctx/clear_log.hh): watermark bookkeeping, the O(1) staleness query
 * (pendingSince), suffix application to a tag, position reuse after
 * wrap-around, and the rebase that bounds log growth.
 */

#include <gtest/gtest.h>

#include "ctx/clear_log.hh"
#include "ctx/ctx_tag.hh"

namespace polypath
{
namespace
{

TEST(CommitClearLog, WatermarkCountsRecords)
{
    CommitClearLog log;
    EXPECT_EQ(log.watermark(), 0u);
    log.record(3);
    EXPECT_EQ(log.watermark(), 1u);
    log.record(3);              // same position again (reuse) still counts
    log.record(7);
    EXPECT_EQ(log.watermark(), 3u);
}

TEST(CommitClearLog, PendingSinceSeesOnlyNewerClears)
{
    CommitClearLog log;
    log.record(2);
    u32 seen = log.watermark();     // instruction fetched here

    // Nothing cleared after the watermark yet.
    EXPECT_FALSE(log.pendingSince(seen, 2));
    EXPECT_FALSE(log.pendingSince(seen, 5));

    log.record(5);
    EXPECT_TRUE(log.pendingSince(seen, 5));     // cleared after fetch
    EXPECT_FALSE(log.pendingSince(seen, 2));    // cleared before fetch

    // An older instruction (watermark 0) sees both clears as pending.
    EXPECT_TRUE(log.pendingSince(0, 2));
    EXPECT_TRUE(log.pendingSince(0, 5));
}

TEST(CommitClearLog, PendingSinceTracksMostRecentClear)
{
    CommitClearLog log;
    log.record(4);
    u32 seen = log.watermark();
    EXPECT_FALSE(log.pendingSince(seen, 4));

    // Position 4 is recycled by a younger branch and cleared again:
    // the newer clear must dominate.
    log.record(4);
    EXPECT_TRUE(log.pendingSince(seen, 4));
}

TEST(CommitClearLog, ApplyClearsSuffixAndAdvancesWatermark)
{
    CommitClearLog log;
    CtxTag tag;
    tag.setPosition(1, true);
    tag.setPosition(3, false);
    tag.setPosition(6, true);

    log.record(1);
    u32 seen = 0;
    log.apply(tag, seen);
    EXPECT_EQ(seen, 1u);
    EXPECT_FALSE(tag.valid(1));
    EXPECT_TRUE(tag.valid(3));
    EXPECT_TRUE(tag.valid(6));

    // Clears already absorbed are not re-applied: position 3 set anew
    // (recycled to a younger branch this tag follows) must survive an
    // apply() that only covers the suffix.
    log.record(6);
    log.apply(tag, seen);
    EXPECT_EQ(seen, 2u);
    EXPECT_FALSE(tag.valid(6));
    EXPECT_TRUE(tag.valid(3));

    tag.setPosition(1, false);  // position 1 recycled, tag extends on it
    log.apply(tag, seen);       // nothing new in the log: no-op
    EXPECT_TRUE(tag.valid(1));
    EXPECT_FALSE(tag.taken(1));
}

TEST(CommitClearLog, ApplyOnEmptyLogIsNoop)
{
    CommitClearLog log;
    CtxTag tag;
    tag.setPosition(0, true);
    u32 seen = 0;
    log.apply(tag, seen);
    EXPECT_EQ(seen, 0u);
    EXPECT_TRUE(tag.valid(0));
}

TEST(CommitClearLog, RebaseForgetsHistory)
{
    CommitClearLog log;
    log.record(2);
    log.record(9);
    ASSERT_TRUE(log.pendingSince(0, 2));
    ASSERT_TRUE(log.pendingSince(0, 9));

    // Precondition for rebase: every live tag absorbed the full log and
    // had its watermark rebased to zero by the core.
    log.rebase();
    EXPECT_EQ(log.watermark(), 0u);
    EXPECT_FALSE(log.pendingSince(0, 2));
    EXPECT_FALSE(log.pendingSince(0, 9));

    // The log keeps working after a rebase.
    log.record(9);
    EXPECT_EQ(log.watermark(), 1u);
    EXPECT_TRUE(log.pendingSince(0, 9));

    CtxTag tag;
    tag.setPosition(9, true);
    u32 seen = 0;
    log.apply(tag, seen);
    EXPECT_FALSE(tag.valid(9));
    EXPECT_EQ(seen, 1u);
}

} // anonymous namespace
} // namespace polypath
