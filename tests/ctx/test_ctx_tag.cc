#include <gtest/gtest.h>

#include "ctx/ctx_tag.hh"

namespace polypath
{
namespace
{

TEST(CtxTag, RootIsAllInvalid)
{
    CtxTag root;
    EXPECT_EQ(root.depth(), 0u);
    EXPECT_EQ(root.toString(4), "XXXX");
}

TEST(CtxTag, SetAndClearPositions)
{
    CtxTag tag;
    tag.setPosition(0, true);
    tag.setPosition(2, false);
    EXPECT_TRUE(tag.valid(0));
    EXPECT_TRUE(tag.taken(0));
    EXPECT_FALSE(tag.valid(1));
    EXPECT_TRUE(tag.valid(2));
    EXPECT_FALSE(tag.taken(2));
    EXPECT_EQ(tag.toString(4), "TXNX");
    EXPECT_EQ(tag.depth(), 2u);

    tag.clearPosition(0);
    EXPECT_EQ(tag.toString(4), "XXNX");
    EXPECT_EQ(tag.depth(), 1u);
}

TEST(CtxTag, PaperExampleDescendants)
{
    // §3.2.1: T(XXX) vs TNT(X): second-level descendant.
    CtxTag t;
    t.setPosition(0, true);
    CtxTag tnt = t.child(1, false).child(2, true);
    EXPECT_TRUE(t.isAncestorOrSelf(tnt));
    EXPECT_FALSE(tnt.isAncestorOrSelf(t));
    EXPECT_TRUE(t.isRelated(tnt));

    // TT(XX) vs TNT(X): unrelated.
    CtxTag tt = t.child(1, true);
    EXPECT_FALSE(tt.isAncestorOrSelf(tnt));
    EXPECT_FALSE(tnt.isAncestorOrSelf(tt));
    EXPECT_FALSE(tt.isRelated(tnt));
}

TEST(CtxTag, PaperExampleRotatedPositions)
{
    // §3.2.1: "(XX)T(X) and T(X)TN are still considered related" — the
    // comparison is independent of history-position order.
    CtxTag a;
    a.setPosition(2, true);
    CtxTag b;
    b.setPosition(0, true);
    b.setPosition(2, true);
    b.setPosition(3, false);
    EXPECT_TRUE(a.isAncestorOrSelf(b));
    EXPECT_TRUE(a.isRelated(b));
}

TEST(CtxTag, SelfIsAncestorOfSelf)
{
    CtxTag tag;
    tag.setPosition(3, true);
    tag.setPosition(5, false);
    EXPECT_TRUE(tag.isAncestorOrSelf(tag));
}

TEST(CtxTag, SiblingsUnrelated)
{
    CtxTag parent;
    parent.setPosition(1, true);
    CtxTag taken = parent.child(4, true);
    CtxTag not_taken = parent.child(4, false);
    EXPECT_FALSE(taken.isRelated(not_taken));
    EXPECT_TRUE(parent.isAncestorOrSelf(taken));
    EXPECT_TRUE(parent.isAncestorOrSelf(not_taken));
}

TEST(CtxTag, DirectionMismatchBreaksAncestry)
{
    CtxTag a;
    a.setPosition(0, true);
    CtxTag b;
    b.setPosition(0, false);
    b.setPosition(1, true);
    EXPECT_FALSE(a.isAncestorOrSelf(b));
}

TEST(CtxTag, OnWrongSideKillPredicate)
{
    CtxTag taken_side;
    taken_side.setPosition(2, true);
    CtxTag nt_side;
    nt_side.setPosition(2, false);
    CtxTag unrelated;
    unrelated.setPosition(3, true);

    // Branch at position 2 resolves not-taken: the taken side dies.
    EXPECT_TRUE(taken_side.onWrongSide(2, false));
    EXPECT_FALSE(nt_side.onWrongSide(2, false));
    EXPECT_FALSE(unrelated.onWrongSide(2, false));

    // ... and vice versa.
    EXPECT_FALSE(taken_side.onWrongSide(2, true));
    EXPECT_TRUE(nt_side.onWrongSide(2, true));
}

TEST(CtxTag, ClearPositionKeepsEqualityCanonical)
{
    CtxTag a;
    a.setPosition(1, true);
    a.clearPosition(1);
    CtxTag b;
    EXPECT_TRUE(a == b);
}

TEST(CtxTag, CommitInvalidationPreservesDescendance)
{
    // After the oldest branch commits and its position is cleared
    // everywhere, remaining relationships must be unchanged.
    CtxTag parent;
    parent.setPosition(0, true);
    CtxTag child = parent.child(1, false);
    CtxTag grandchild = child.child(2, true);

    parent.clearPosition(0);
    child.clearPosition(0);
    grandchild.clearPosition(0);

    EXPECT_TRUE(parent.isAncestorOrSelf(child));
    EXPECT_TRUE(child.isAncestorOrSelf(grandchild));
    EXPECT_TRUE(parent.isAncestorOrSelf(grandchild));
}

TEST(CtxTagDeath, DoubleAssignPanics)
{
    CtxTag tag;
    tag.setPosition(0, true);
    EXPECT_DEATH(tag.setPosition(0, false), "assigned twice");
}

// Property sweep: for every (ancestor-pos, dir, descendant extension)
// combination the comparator and kill predicate behave consistently.
class CtxTagProperty
    : public ::testing::TestWithParam<std::tuple<int, bool, int, bool>>
{};

TEST_P(CtxTagProperty, ChildIsAlwaysDescendantNeverAncestor)
{
    auto [pos1, dir1, pos2, dir2] = GetParam();
    if (pos1 == pos2)
        return;     // positions are unique to in-flight branches
    CtxTag base;
    base.setPosition(pos1, dir1);
    CtxTag child = base.child(pos2, dir2);

    EXPECT_TRUE(base.isAncestorOrSelf(child));
    EXPECT_FALSE(child.isAncestorOrSelf(base));
    EXPECT_EQ(child.depth(), 2u);

    // The kill predicate targets exactly the wrong direction.
    EXPECT_TRUE(child.onWrongSide(pos2, !dir2));
    EXPECT_FALSE(child.onWrongSide(pos2, dir2));
    // The parent never matches a kill on the child's position.
    EXPECT_FALSE(base.onWrongSide(pos2, true));
    EXPECT_FALSE(base.onWrongSide(pos2, false));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CtxTagProperty,
    ::testing::Combine(::testing::Values(0, 3, 15, 31, 63),
                       ::testing::Bool(),
                       ::testing::Values(1, 7, 16, 62),
                       ::testing::Bool()));

} // anonymous namespace
} // namespace polypath
