#include <gtest/gtest.h>

#include "memsys/memory.hh"

namespace polypath
{
namespace
{

TEST(SparseMemory, UntouchedReadsZero)
{
    SparseMemory mem;
    EXPECT_EQ(mem.readByte(0), 0u);
    EXPECT_EQ(mem.read64(0xdeadbeef000ull), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
}

TEST(SparseMemory, ByteRoundTrip)
{
    SparseMemory mem;
    mem.writeByte(0x1234, 0xab);
    EXPECT_EQ(mem.readByte(0x1234), 0xabu);
    EXPECT_EQ(mem.readByte(0x1235), 0u);
    EXPECT_EQ(mem.numPages(), 1u);
}

TEST(SparseMemory, LittleEndianMultiByte)
{
    SparseMemory mem;
    mem.write(0x100, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.readByte(0x100), 0x88u);
    EXPECT_EQ(mem.readByte(0x107), 0x11u);
    EXPECT_EQ(mem.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(mem.read64(0x100), 0x1122334455667788ull);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    Addr boundary = SparseMemory::pageBytes - 4;
    mem.write64(boundary, 0x0102030405060708ull);
    EXPECT_EQ(mem.read64(boundary), 0x0102030405060708ull);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(SparseMemory, HighAddressesWork)
{
    SparseMemory mem;
    Addr wild = 0xfedcba9876543210ull;   // wrong-path style address
    mem.write64(wild, 42);
    EXPECT_EQ(mem.read64(wild), 42u);
}

TEST(SparseMemory, ContentsEqualIgnoresZeroPages)
{
    SparseMemory a, b;
    a.write64(0x1000, 7);
    b.write64(0x1000, 7);
    // Materialise an extra all-zero page in a only.
    a.writeByte(0x99000, 1);
    a.writeByte(0x99000, 0);
    EXPECT_TRUE(a.contentsEqual(b));
    EXPECT_TRUE(b.contentsEqual(a));
}

TEST(SparseMemory, ContentsEqualDetectsDifferences)
{
    SparseMemory a, b;
    a.write64(0x1000, 7);
    b.write64(0x1000, 8);
    EXPECT_FALSE(a.contentsEqual(b));

    SparseMemory c, d;
    c.write64(0x2000, 1);
    // d untouched.
    EXPECT_FALSE(c.contentsEqual(d));
    EXPECT_FALSE(d.contentsEqual(c));
}

TEST(SparseMemoryDeath, OversizedAccessPanics)
{
    SparseMemory mem;
    EXPECT_DEATH(mem.read(0, 9), "size");
    EXPECT_DEATH(mem.write(0, 0, 0), "size");
}

} // anonymous namespace
} // namespace polypath
