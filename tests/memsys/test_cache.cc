#include <gtest/gtest.h>

#include "memsys/cache.hh"

namespace polypath
{
namespace
{

CacheConfig
smallCache(unsigned ways = 2)
{
    CacheConfig cfg;
    cfg.perfect = false;
    cfg.sizeBytes = 1024;
    cfg.lineBytes = 32;
    cfg.ways = ways;
    cfg.missLatency = 20;
    return cfg;
}

TEST(Cache, PerfectAlwaysHits)
{
    CacheModel cache{CacheConfig{}};
    u64 accesses = 0;
    for (Addr addr = 0; addr < 100 * 4096; addr += 4093) {
        EXPECT_EQ(cache.access(addr), 0u);
        ++accesses;
    }
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.hits(), accesses);
}

TEST(Cache, ColdMissThenHit)
{
    CacheModel cache(smallCache());
    EXPECT_EQ(cache.access(0x1000), 20u);       // cold miss
    EXPECT_EQ(cache.access(0x1000), 0u);        // hit
    EXPECT_EQ(cache.access(0x101f), 0u);        // same 32-byte line
    EXPECT_EQ(cache.access(0x1020), 20u);       // next line
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, SetConflictEviction)
{
    // 1024 B / 32 B / 2 ways = 16 sets; addresses 16*32 = 512 bytes
    // apart with the same line offset map to the same set.
    CacheModel cache(smallCache());
    Addr a = 0x0000, b = 0x0200, c = 0x0400;    // same set, 3 lines
    cache.access(a);
    cache.access(b);
    EXPECT_TRUE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
    cache.access(c);                            // evicts LRU = a
    EXPECT_FALSE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, LruReplacement)
{
    CacheModel cache(smallCache());
    Addr a = 0x0000, b = 0x0200, c = 0x0400;
    cache.access(a);
    cache.access(b);
    cache.access(a);        // a is now most recently used
    cache.access(c);        // evicts b, not a
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, DirectMappedWorks)
{
    CacheModel cache(smallCache(1));
    Addr a = 0x0000, b = 0x0400;    // 1024 apart: same set in 32 sets
    cache.access(a);
    cache.access(b);
    EXPECT_FALSE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
}

TEST(Cache, WorkingSetFitsAfterWarmup)
{
    CacheModel cache(smallCache());
    // 1 KiB working set touched twice: second pass all hits.
    for (Addr addr = 0; addr < 1024; addr += 8)
        cache.access(addr);
    u64 misses_after_warmup = cache.misses();
    for (Addr addr = 0; addr < 1024; addr += 8)
        cache.access(addr);
    EXPECT_EQ(cache.misses(), misses_after_warmup);
}

TEST(CacheDeath, BadGeometryIsFatal)
{
    CacheConfig cfg = smallCache();
    cfg.lineBytes = 24;             // not a power of two
    EXPECT_EXIT(CacheModel cache(cfg), ::testing::ExitedWithCode(1),
                "line");
}

} // anonymous namespace
} // namespace polypath
