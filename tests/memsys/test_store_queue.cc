#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <vector>

#include "common/prng.hh"
#include "ctx/ctx_tag.hh"
#include "memsys/store_queue.hh"

namespace polypath
{
namespace
{

class StoreQueueTest : public ::testing::Test
{
  protected:
    StoreQueue sq;
    SparseMemory mem;
    CtxTag root;

    void
    addStore(InstSeq seq, const CtxTag &tag, Addr addr, u64 data,
             u8 size = 8)
    {
        sq.insert(seq, tag, size);
        sq.setAddress(seq, addr);
        sq.setData(seq, data);
    }
};

TEST_F(StoreQueueTest, ForwardsFullOverlap)
{
    addStore(10, root, 0x100, 0xdeadbeef);
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(r.value, 0xdeadbeefull);
}

TEST_F(StoreQueueTest, LoadOlderThanStoreIgnoresIt)
{
    addStore(10, root, 0x100, 0xdeadbeef);
    LoadQueryResult r = sq.queryLoad(5, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
    EXPECT_FALSE(r.forwarded);
    EXPECT_EQ(r.value, 0u);
}

TEST_F(StoreQueueTest, YoungestMatchingStoreWins)
{
    addStore(10, root, 0x100, 1);
    addStore(11, root, 0x100, 2);
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.value, 2u);
}

TEST_F(StoreQueueTest, UnknownAddressBlocks)
{
    sq.insert(10, root, 8);     // address not yet published
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::MustWait);
    sq.setAddress(10, 0x900);   // disjoint: load may now proceed
    r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
}

TEST_F(StoreQueueTest, KnownAddressUnknownDataBlocksOnlyOverlap)
{
    sq.insert(10, root, 8);
    sq.setAddress(10, 0x100);
    // Overlapping load must wait for the data.
    EXPECT_EQ(sq.queryLoad(20, root, 0x100, 8, mem).status,
              LoadQueryStatus::MustWait);
    // Disjoint load sails past.
    EXPECT_EQ(sq.queryLoad(20, root, 0x200, 8, mem).status,
              LoadQueryStatus::Ready);
}

TEST_F(StoreQueueTest, PartialOverlapComposesBytes)
{
    mem.write64(0x100, 0x1111111111111111ull);
    addStore(10, root, 0x100, 0xab, 1);     // one byte at 0x100
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(r.value, 0x11111111111111abull);
}

TEST_F(StoreQueueTest, TwoPartialStoresCompose)
{
    addStore(10, root, 0x100, 0xaa, 1);
    addStore(11, root, 0x101, 0xbb, 1);
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.value, 0xbbaaull);
}

TEST_F(StoreQueueTest, ByteLoadInsideQuadStore)
{
    addStore(10, root, 0x100, 0x8877665544332211ull, 8);
    LoadQueryResult r = sq.queryLoad(20, root, 0x103, 1, mem);
    EXPECT_EQ(r.value, 0x44u);
}

// --- CTX path filtering (§3.2.4) -----------------------------------

TEST_F(StoreQueueTest, ForwardsFromAncestorPath)
{
    CtxTag parent;
    parent.setPosition(0, true);
    CtxTag child = parent.child(1, false);
    addStore(10, parent, 0x100, 77);
    LoadQueryResult r = sq.queryLoad(20, child, 0x100, 8, mem);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(r.value, 77u);
}

TEST_F(StoreQueueTest, NeverForwardsFromSiblingPath)
{
    CtxTag parent;
    CtxTag taken = parent.child(0, true);
    CtxTag not_taken = parent.child(0, false);
    addStore(10, taken, 0x100, 77);
    LoadQueryResult r = sq.queryLoad(20, not_taken, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
    EXPECT_FALSE(r.forwarded);
    EXPECT_EQ(r.value, 0u);     // memory, not the sibling's store
}

TEST_F(StoreQueueTest, SiblingUnknownAddressDoesNotBlock)
{
    CtxTag parent;
    CtxTag taken = parent.child(0, true);
    CtxTag not_taken = parent.child(0, false);
    sq.insert(10, taken, 8);    // unknown address on the other path
    EXPECT_EQ(sq.queryLoad(20, not_taken, 0x100, 8, mem).status,
              LoadQueryStatus::Ready);
}

TEST_F(StoreQueueTest, DescendantStoreInvisibleToAncestorLoad)
{
    CtxTag parent;
    CtxTag child = parent.child(0, true);
    addStore(10, child, 0x100, 77);
    // An (older... younger seq but ancestor path) load on the parent
    // path must not see the child's store even with a younger seq.
    LoadQueryResult r = sq.queryLoad(20, parent, 0x100, 8, mem);
    EXPECT_FALSE(r.forwarded);
}

// --- lifecycle ------------------------------------------------------

TEST_F(StoreQueueTest, CommitWritesMemoryInOrder)
{
    addStore(10, root, 0x100, 1);
    addStore(11, root, 0x108, 2);
    sq.commit(10, mem);
    EXPECT_EQ(mem.read64(0x100), 1u);
    EXPECT_EQ(mem.read64(0x108), 0u);
    sq.commit(11, mem);
    EXPECT_EQ(mem.read64(0x108), 2u);
    EXPECT_TRUE(sq.empty());
}

TEST_F(StoreQueueTest, KillRemovesEntry)
{
    addStore(10, root, 0x100, 1);
    sq.kill(10);
    EXPECT_TRUE(sq.empty());
    EXPECT_FALSE(sq.queryLoad(20, root, 0x100, 8, mem).forwarded);
}

TEST_F(StoreQueueTest, KillWrongPathDropsOnlyWrongSide)
{
    CtxTag parent;
    CtxTag taken = parent.child(3, true);
    CtxTag not_taken = parent.child(3, false);
    addStore(10, parent, 0x100, 1);
    addStore(11, taken, 0x108, 2);
    addStore(12, not_taken, 0x110, 3);
    unsigned killed = sq.killWrongPath(3, /*actual_taken=*/false);
    EXPECT_EQ(killed, 1u);
    EXPECT_EQ(sq.size(), 2u);
    EXPECT_NE(sq.find(10), nullptr);
    EXPECT_EQ(sq.find(11), nullptr);
    EXPECT_NE(sq.find(12), nullptr);
}

TEST_F(StoreQueueTest, CommitPositionClearsTags)
{
    CtxTag parent;
    CtxTag child = parent.child(2, true);
    addStore(10, child, 0x100, 1);
    sq.commitPosition(2);
    // After invalidation the entry's tag no longer matches kills on
    // position 2.
    EXPECT_EQ(sq.killWrongPath(2, false), 0u);
    EXPECT_EQ(sq.size(), 1u);
}

TEST_F(StoreQueueTest, DeathOnOutOfOrderCommit)
{
    addStore(10, root, 0x100, 1);
    addStore(11, root, 0x108, 2);
    EXPECT_DEATH(sq.commit(11, mem), "out of order");
}

// --- fast-path knobs -------------------------------------------------

TEST(StoreQueueFastPath, EnvKnobDisablesFastPath)
{
    {
        StoreQueue q;
        EXPECT_TRUE(q.fastPathIsEnabled());
    }
    setenv("PP_NO_SQ_FASTPATH", "1", 1);
    {
        StoreQueue q;
        EXPECT_FALSE(q.fastPathIsEnabled());
    }
    unsetenv("PP_NO_SQ_FASTPATH");
    StoreQueue q;
    EXPECT_TRUE(q.fastPathIsEnabled());
    q.setFastPathEnabled(false);
    EXPECT_FALSE(q.fastPathIsEnabled());
}

TEST(StoreQueueFastPath, SummariesTrackLifecycle)
{
    StoreQueue q;
    SparseMemory mem;
    CtxTag root;
    q.insert(1, root, 8);
    EXPECT_EQ(q.unknownAddresses(), 1u);
    q.insert(2, root, 4);
    EXPECT_EQ(q.unknownAddresses(), 2u);
    q.setAddress(1, 0x100);
    EXPECT_EQ(q.unknownAddresses(), 1u);
    q.setAddress(1, 0x100);     // republication must not drift counts
    EXPECT_EQ(q.unknownAddresses(), 1u);
    q.setAddress(2, 0x200);
    EXPECT_EQ(q.unknownAddresses(), 0u);
    q.checkIndexInvariants();
    q.setData(1, 7);
    q.commit(1, mem);
    q.kill(2);
    EXPECT_EQ(q.unknownAddresses(), 0u);
    q.checkIndexInvariants();
}

// --- randomized differential property test ---------------------------
//
// Drives a StoreQueue and a deliberately naive reference model through
// the same random interleaving of inserts, address/data publications,
// loads, commits, kills and wrong-path sweeps, over a small CTX path
// tree and an address pattern chosen to hit partial overlaps, multi-
// store byte composition, direct-mapped chunk aliasing and unknown-
// address stalls. Every load answer and the post-drain memory image
// must match; run with the indexed fast path both on and off.

/** Brute-force mirror of the documented queryLoad walk semantics. */
struct RefStoreQueue
{
    struct Entry
    {
        InstSeq seq;
        CtxTag tag;
        Addr addr = 0;
        u64 data = 0;
        u8 size = 0;
        bool addrKnown = false;
        bool dataKnown = false;
    };

    std::deque<Entry> entries;      // fetch (= seq) order

    Entry *
    find(InstSeq seq)
    {
        for (Entry &e : entries) {
            if (e.seq == seq)
                return &e;
        }
        return nullptr;
    }

    LoadQueryResult
    queryLoad(InstSeq seq, const CtxTag &tag, Addr addr, unsigned size,
              const SparseMemory &mem) const
    {
        unsigned needed_mask = (1u << size) - 1;
        u64 value = 0;
        bool forwarded = false;
        for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
            const Entry &store = *it;
            if (store.seq >= seq || !store.tag.isAncestorOrSelf(tag))
                continue;
            if (!store.addrKnown)
                return {LoadQueryStatus::MustWait};
            bool overlaps = false;
            for (unsigned i = 0; i < size; ++i) {
                if (((needed_mask >> i) & 1) && addr + i >= store.addr &&
                    addr + i < store.addr + store.size) {
                    overlaps = true;
                }
            }
            if (!overlaps)
                continue;
            if (!store.dataKnown)
                return {LoadQueryStatus::MustWait};
            for (unsigned i = 0; i < size; ++i) {
                Addr byte_addr = addr + i;
                if (((needed_mask >> i) & 1) && byte_addr >= store.addr &&
                    byte_addr < store.addr + store.size) {
                    value |= ((store.data >>
                               (8 * (byte_addr - store.addr))) &
                              0xff)
                             << (8 * i);
                    needed_mask &= ~(1u << i);
                    forwarded = true;
                }
            }
            if (needed_mask == 0)
                break;
        }
        for (unsigned i = 0; i < size; ++i) {
            if ((needed_mask >> i) & 1)
                value |= static_cast<u64>(mem.readByte(addr + i))
                         << (8 * i);
        }
        return {LoadQueryStatus::Ready, value, forwarded};
    }

    void
    commitFront(SparseMemory &mem)
    {
        Entry &e = entries.front();
        mem.write(e.addr, e.data, e.size);
        entries.pop_front();
    }

    unsigned
    killWrongPath(unsigned pos, bool actual_taken)
    {
        unsigned killed = 0;
        std::erase_if(entries, [&](const Entry &e) {
            if (!e.tag.onWrongSide(pos, actual_taken))
                return false;
            ++killed;
            return true;
        });
        return killed;
    }
};

void
runRandomScenario(u64 seed, bool fast_path)
{
    Prng rng(seed);
    StoreQueue sq;
    sq.setFastPathEnabled(fast_path);
    RefStoreQueue ref;
    SparseMemory mem_impl;
    SparseMemory mem_ref;

    // A small path tree over positions 0..3: root plus both sides of a
    // few divergences, so loads see ancestor, self, sibling and
    // descendant stores.
    std::vector<CtxTag> tags;
    CtxTag root;
    tags.push_back(root);
    tags.push_back(root.child(0, true));
    tags.push_back(root.child(0, false));
    tags.push_back(tags[1].child(1, true));
    tags.push_back(tags[1].child(1, false));
    tags.push_back(tags[3].child(2, true));

    auto random_tag = [&]() { return tags[rng.nextBelow(tags.size())]; };

    // Address pattern: a dense 256-byte region (overlaps, partial
    // forwarding) plus sparse strides of 64 KiB (distinct chunks that
    // alias in the 1024-slot direct-mapped index: 0x10000 >> 6 = 1024).
    auto random_addr = [&]() -> Addr {
        Addr base = 0x1000 + rng.nextBelow(256);
        if (rng.chance(1, 4))
            base += (1 + rng.nextBelow(4)) * 0x10000;
        return base;
    };
    auto random_size = [&]() -> u8 {
        static const u8 sizes[4] = {1, 2, 4, 8};
        return sizes[rng.nextBelow(4)];
    };

    // Pre-fill committed memory identically on both sides.
    for (unsigned i = 0; i < 64; ++i) {
        Addr a = random_addr();
        u64 v = rng.next();
        mem_impl.write(a, v, 8);
        mem_ref.write(a, v, 8);
    }

    InstSeq next_seq = 1;
    std::vector<InstSeq> pending_addr;      // inserted, address unknown
    std::vector<InstSeq> pending_data;      // inserted, data unknown

    auto take_random = [&](std::vector<InstSeq> &v) -> InstSeq {
        size_t i = rng.nextBelow(v.size());
        InstSeq seq = v[i];
        v[i] = v.back();
        v.pop_back();
        return seq;
    };
    // Entries can disappear under a pending publication (kill /
    // wrong-path sweep): drop the stale seqs.
    auto prune = [&](std::vector<InstSeq> &v) {
        std::erase_if(v, [&](InstSeq s) { return sq.find(s) == nullptr; });
    };

    for (unsigned step = 0; step < 2000; ++step) {
        unsigned op = static_cast<unsigned>(rng.nextBelow(100));
        if (op < 30) {                              // insert a store
            if (sq.size() >= 48)
                continue;
            InstSeq seq = next_seq++;
            CtxTag tag = random_tag();
            u8 size = random_size();
            sq.insert(seq, tag, size);
            ref.entries.push_back({seq, tag, 0, 0, size, false, false});
            pending_addr.push_back(seq);
            pending_data.push_back(seq);
        } else if (op < 45) {                       // publish an address
            prune(pending_addr);
            if (pending_addr.empty())
                continue;
            InstSeq seq = take_random(pending_addr);
            Addr addr = random_addr();
            sq.setAddress(seq, addr);
            RefStoreQueue::Entry *e = ref.find(seq);
            ASSERT_NE(e, nullptr);
            e->addr = addr;
            e->addrKnown = true;
        } else if (op < 60) {                       // publish data
            prune(pending_data);
            if (pending_data.empty())
                continue;
            InstSeq seq = take_random(pending_data);
            u64 data = rng.next();
            sq.setData(seq, data);
            RefStoreQueue::Entry *e = ref.find(seq);
            ASSERT_NE(e, nullptr);
            e->data = data;
            e->dataKnown = true;
        } else if (op < 85) {                       // load query
            InstSeq seq = 1 + rng.nextBelow(next_seq + 4);
            CtxTag tag = random_tag();
            Addr addr = random_addr();
            u8 size = random_size();
            LoadQueryResult got =
                sq.queryLoad(seq, tag, addr, size, mem_impl);
            LoadQueryResult want =
                ref.queryLoad(seq, tag, addr, size, mem_ref);
            ASSERT_EQ(got.status, want.status)
                << "seed " << seed << " step " << step;
            if (got.status == LoadQueryStatus::Ready) {
                ASSERT_EQ(got.value, want.value)
                    << "seed " << seed << " step " << step;
                ASSERT_EQ(got.forwarded, want.forwarded)
                    << "seed " << seed << " step " << step;
            }
        } else if (op < 90) {                       // commit the front
            if (ref.entries.empty())
                continue;
            const RefStoreQueue::Entry &front = ref.entries.front();
            if (!front.addrKnown || !front.dataKnown)
                continue;
            sq.commit(front.seq, mem_impl);
            ref.commitFront(mem_ref);
        } else if (op < 95) {                       // kill one entry
            if (ref.entries.empty())
                continue;
            InstSeq seq =
                ref.entries[rng.nextBelow(ref.entries.size())].seq;
            sq.kill(seq);
            RefStoreQueue::Entry *e = ref.find(seq);
            ASSERT_NE(e, nullptr);
            std::erase_if(ref.entries, [seq](const auto &entry) {
                return entry.seq == seq;
            });
        } else if (op < 98) {                       // wrong-path sweep
            unsigned pos = static_cast<unsigned>(rng.nextBelow(4));
            bool taken = rng.chance(1, 2);
            unsigned got = sq.killWrongPath(pos, taken);
            unsigned want = ref.killWrongPath(pos, taken);
            ASSERT_EQ(got, want) << "seed " << seed << " step " << step;
        } else {                                    // commit broadcast
            unsigned pos = static_cast<unsigned>(rng.nextBelow(4));
            sq.commitPosition(pos);
            for (RefStoreQueue::Entry &e : ref.entries)
                e.tag.clearPosition(pos);
        }

        ASSERT_EQ(sq.size(), ref.entries.size())
            << "seed " << seed << " step " << step;
        if (step % 64 == 0)
            sq.checkIndexInvariants();
    }

    // Post-run drain: publish everything outstanding, commit in order,
    // and require identical committed memory images.
    prune(pending_addr);
    prune(pending_data);
    for (InstSeq seq : pending_addr) {
        Addr addr = random_addr();
        sq.setAddress(seq, addr);
        RefStoreQueue::Entry *e = ref.find(seq);
        ASSERT_NE(e, nullptr);
        e->addr = addr;
        e->addrKnown = true;
    }
    for (InstSeq seq : pending_data) {
        u64 data = rng.next();
        sq.setData(seq, data);
        RefStoreQueue::Entry *e = ref.find(seq);
        ASSERT_NE(e, nullptr);
        e->data = data;
        e->dataKnown = true;
    }
    sq.checkIndexInvariants();
    while (!ref.entries.empty()) {
        sq.commit(ref.entries.front().seq, mem_impl);
        ref.commitFront(mem_ref);
    }
    EXPECT_TRUE(sq.empty());
    EXPECT_EQ(sq.unknownAddresses(), 0u);
    sq.checkIndexInvariants();
    EXPECT_TRUE(mem_impl.contentsEqual(mem_ref))
        << "post-drain memory mismatch, seed " << seed;
}

TEST(StoreQueueProperty, RandomInterleavingsMatchReferenceFastPath)
{
    for (u64 seed = 1; seed <= 8; ++seed)
        runRandomScenario(seed, /*fast_path=*/true);
}

TEST(StoreQueueProperty, RandomInterleavingsMatchReferenceLegacyWalk)
{
    for (u64 seed = 1; seed <= 8; ++seed)
        runRandomScenario(seed, /*fast_path=*/false);
}

} // anonymous namespace
} // namespace polypath
