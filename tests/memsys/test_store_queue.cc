#include <gtest/gtest.h>

#include "ctx/ctx_tag.hh"
#include "memsys/store_queue.hh"

namespace polypath
{
namespace
{

class StoreQueueTest : public ::testing::Test
{
  protected:
    StoreQueue sq;
    SparseMemory mem;
    CtxTag root;

    void
    addStore(InstSeq seq, const CtxTag &tag, Addr addr, u64 data,
             u8 size = 8)
    {
        sq.insert(seq, tag, size);
        sq.setAddress(seq, addr);
        sq.setData(seq, data);
    }
};

TEST_F(StoreQueueTest, ForwardsFullOverlap)
{
    addStore(10, root, 0x100, 0xdeadbeef);
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(r.value, 0xdeadbeefull);
}

TEST_F(StoreQueueTest, LoadOlderThanStoreIgnoresIt)
{
    addStore(10, root, 0x100, 0xdeadbeef);
    LoadQueryResult r = sq.queryLoad(5, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
    EXPECT_FALSE(r.forwarded);
    EXPECT_EQ(r.value, 0u);
}

TEST_F(StoreQueueTest, YoungestMatchingStoreWins)
{
    addStore(10, root, 0x100, 1);
    addStore(11, root, 0x100, 2);
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.value, 2u);
}

TEST_F(StoreQueueTest, UnknownAddressBlocks)
{
    sq.insert(10, root, 8);     // address not yet published
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::MustWait);
    sq.setAddress(10, 0x900);   // disjoint: load may now proceed
    r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
}

TEST_F(StoreQueueTest, KnownAddressUnknownDataBlocksOnlyOverlap)
{
    sq.insert(10, root, 8);
    sq.setAddress(10, 0x100);
    // Overlapping load must wait for the data.
    EXPECT_EQ(sq.queryLoad(20, root, 0x100, 8, mem).status,
              LoadQueryStatus::MustWait);
    // Disjoint load sails past.
    EXPECT_EQ(sq.queryLoad(20, root, 0x200, 8, mem).status,
              LoadQueryStatus::Ready);
}

TEST_F(StoreQueueTest, PartialOverlapComposesBytes)
{
    mem.write64(0x100, 0x1111111111111111ull);
    addStore(10, root, 0x100, 0xab, 1);     // one byte at 0x100
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(r.value, 0x11111111111111abull);
}

TEST_F(StoreQueueTest, TwoPartialStoresCompose)
{
    addStore(10, root, 0x100, 0xaa, 1);
    addStore(11, root, 0x101, 0xbb, 1);
    LoadQueryResult r = sq.queryLoad(20, root, 0x100, 8, mem);
    EXPECT_EQ(r.value, 0xbbaaull);
}

TEST_F(StoreQueueTest, ByteLoadInsideQuadStore)
{
    addStore(10, root, 0x100, 0x8877665544332211ull, 8);
    LoadQueryResult r = sq.queryLoad(20, root, 0x103, 1, mem);
    EXPECT_EQ(r.value, 0x44u);
}

// --- CTX path filtering (§3.2.4) -----------------------------------

TEST_F(StoreQueueTest, ForwardsFromAncestorPath)
{
    CtxTag parent;
    parent.setPosition(0, true);
    CtxTag child = parent.child(1, false);
    addStore(10, parent, 0x100, 77);
    LoadQueryResult r = sq.queryLoad(20, child, 0x100, 8, mem);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(r.value, 77u);
}

TEST_F(StoreQueueTest, NeverForwardsFromSiblingPath)
{
    CtxTag parent;
    CtxTag taken = parent.child(0, true);
    CtxTag not_taken = parent.child(0, false);
    addStore(10, taken, 0x100, 77);
    LoadQueryResult r = sq.queryLoad(20, not_taken, 0x100, 8, mem);
    EXPECT_EQ(r.status, LoadQueryStatus::Ready);
    EXPECT_FALSE(r.forwarded);
    EXPECT_EQ(r.value, 0u);     // memory, not the sibling's store
}

TEST_F(StoreQueueTest, SiblingUnknownAddressDoesNotBlock)
{
    CtxTag parent;
    CtxTag taken = parent.child(0, true);
    CtxTag not_taken = parent.child(0, false);
    sq.insert(10, taken, 8);    // unknown address on the other path
    EXPECT_EQ(sq.queryLoad(20, not_taken, 0x100, 8, mem).status,
              LoadQueryStatus::Ready);
}

TEST_F(StoreQueueTest, DescendantStoreInvisibleToAncestorLoad)
{
    CtxTag parent;
    CtxTag child = parent.child(0, true);
    addStore(10, child, 0x100, 77);
    // An (older... younger seq but ancestor path) load on the parent
    // path must not see the child's store even with a younger seq.
    LoadQueryResult r = sq.queryLoad(20, parent, 0x100, 8, mem);
    EXPECT_FALSE(r.forwarded);
}

// --- lifecycle ------------------------------------------------------

TEST_F(StoreQueueTest, CommitWritesMemoryInOrder)
{
    addStore(10, root, 0x100, 1);
    addStore(11, root, 0x108, 2);
    sq.commit(10, mem);
    EXPECT_EQ(mem.read64(0x100), 1u);
    EXPECT_EQ(mem.read64(0x108), 0u);
    sq.commit(11, mem);
    EXPECT_EQ(mem.read64(0x108), 2u);
    EXPECT_TRUE(sq.empty());
}

TEST_F(StoreQueueTest, KillRemovesEntry)
{
    addStore(10, root, 0x100, 1);
    sq.kill(10);
    EXPECT_TRUE(sq.empty());
    EXPECT_FALSE(sq.queryLoad(20, root, 0x100, 8, mem).forwarded);
}

TEST_F(StoreQueueTest, KillWrongPathDropsOnlyWrongSide)
{
    CtxTag parent;
    CtxTag taken = parent.child(3, true);
    CtxTag not_taken = parent.child(3, false);
    addStore(10, parent, 0x100, 1);
    addStore(11, taken, 0x108, 2);
    addStore(12, not_taken, 0x110, 3);
    unsigned killed = sq.killWrongPath(3, /*actual_taken=*/false);
    EXPECT_EQ(killed, 1u);
    EXPECT_EQ(sq.size(), 2u);
    EXPECT_NE(sq.find(10), nullptr);
    EXPECT_EQ(sq.find(11), nullptr);
    EXPECT_NE(sq.find(12), nullptr);
}

TEST_F(StoreQueueTest, CommitPositionClearsTags)
{
    CtxTag parent;
    CtxTag child = parent.child(2, true);
    addStore(10, child, 0x100, 1);
    sq.commitPosition(2);
    // After invalidation the entry's tag no longer matches kills on
    // position 2.
    EXPECT_EQ(sq.killWrongPath(2, false), 0u);
    EXPECT_EQ(sq.size(), 1u);
}

TEST_F(StoreQueueTest, DeathOnOutOfOrderCommit)
{
    addStore(10, root, 0x100, 1);
    addStore(11, root, 0x108, 2);
    EXPECT_DEATH(sq.commit(11, mem), "out of order");
}

} // anonymous namespace
} // namespace polypath
