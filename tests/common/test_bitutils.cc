#include <gtest/gtest.h>

#include "common/bitutils.hh"

namespace polypath
{
namespace
{

TEST(BitUtils, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(~u64(0), 63, 0), ~u64(0));
}

TEST(BitUtils, BitsSingleBit)
{
    EXPECT_EQ(bits(0b1000, 3, 3), 1u);
    EXPECT_EQ(bits(0b1000, 2, 2), 0u);
}

TEST(BitUtils, InsertBitsPositionsField)
{
    EXPECT_EQ(insertBits(0xef, 7, 0), 0xefull);
    EXPECT_EQ(insertBits(0xde, 15, 8), 0xde00ull);
    EXPECT_EQ(insertBits(0x3f, 31, 26), u64(0x3f) << 26);
}

TEST(BitUtils, InsertBitsMasksOversizedField)
{
    // A field wider than the slot must be truncated.
    EXPECT_EQ(insertBits(0x1ff, 7, 0), 0xffull);
}

TEST(BitUtils, SextPositive)
{
    EXPECT_EQ(sext(0x7fff, 16), 0x7fff);
    EXPECT_EQ(sext(0x0001, 16), 1);
}

TEST(BitUtils, SextNegative)
{
    EXPECT_EQ(sext(0xffff, 16), -1);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x1fffff, 21), -1);
    EXPECT_EQ(sext(0x100000, 21), -(s64(1) << 20));
}

TEST(BitUtils, LowMask)
{
    EXPECT_EQ(lowMask(0), 0ull);
    EXPECT_EQ(lowMask(1), 1ull);
    EXPECT_EQ(lowMask(16), 0xffffull);
    EXPECT_EQ(lowMask(64), ~u64(0));
}

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(u64(1) << 63));
    EXPECT_FALSE(isPowerOf2((u64(1) << 63) + 1));
}

TEST(BitUtils, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(u64(1) << 63), 63u);
}

// Round-trip property: sext(x & mask, n) recovers any signed n-bit value.
class SextRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SextRoundTrip, RecoversSignedValues)
{
    int nbits = GetParam();
    s64 lo = -(s64(1) << (nbits - 1));
    s64 hi = (s64(1) << (nbits - 1)) - 1;
    for (s64 v : {lo, lo + 1, s64(-1), s64(0), s64(1), hi - 1, hi}) {
        u64 packed = static_cast<u64>(v) & lowMask(nbits);
        EXPECT_EQ(sext(packed, nbits), v) << "nbits=" << nbits;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SextRoundTrip,
                         ::testing::Values(8, 13, 16, 21, 26, 32, 48));

} // anonymous namespace
} // namespace polypath
