#include <gtest/gtest.h>

#include "common/stats_util.hh"

namespace polypath
{
namespace
{

TEST(StatsUtil, ArithmeticMean)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(StatsUtil, HarmonicMean)
{
    // Classic: harmonic mean of 2 and 6 is 3.
    EXPECT_DOUBLE_EQ(harmonicMean({2, 6}), 3.0);
    EXPECT_DOUBLE_EQ(harmonicMean({5, 5, 5}), 5.0);
}

TEST(StatsUtil, HarmonicMeanDominatedBySmallValues)
{
    double hm = harmonicMean({1, 100});
    EXPECT_LT(hm, 2.0);
    EXPECT_GT(hm, 1.0);
}

TEST(StatsUtil, HarmonicMeanRejectsNonPositive)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
}

TEST(StatsUtil, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({4, 9}), 6.0);
    EXPECT_NEAR(geometricMean({2, 2, 2}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geometricMean({1.0, -1.0}), 0.0);
}

TEST(StatsUtil, MeanOrderingInequality)
{
    // HM <= GM <= AM for positive values.
    std::vector<double> values{1.3, 2.9, 4.1, 0.7, 8.8};
    double hm = harmonicMean(values);
    double gm = geometricMean(values);
    double am = arithmeticMean(values);
    EXPECT_LE(hm, gm + 1e-12);
    EXPECT_LE(gm, am + 1e-12);
}

TEST(StatsUtil, PercentChange)
{
    EXPECT_DOUBLE_EQ(percentChange(2.0, 3.0), 50.0);
    EXPECT_DOUBLE_EQ(percentChange(4.0, 3.0), -25.0);
    EXPECT_DOUBLE_EQ(percentChange(0.0, 3.0), 0.0);
}

} // anonymous namespace
} // namespace polypath
