#include <gtest/gtest.h>

#include "common/sat_counter.hh"

namespace polypath
{
namespace
{

TEST(SatCounter, SaturatesHigh)
{
    SatCounter ctr(2, 0);
    for (int i = 0; i < 10; ++i)
        ctr.increment();
    EXPECT_EQ(ctr.raw(), 3);
    EXPECT_TRUE(ctr.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter ctr(2, 3);
    for (int i = 0; i < 10; ++i)
        ctr.decrement();
    EXPECT_EQ(ctr.raw(), 0);
}

TEST(SatCounter, MsbThreshold2Bit)
{
    SatCounter ctr(2, 0);
    EXPECT_FALSE(ctr.msbSet());        // 0
    ctr.increment();
    EXPECT_FALSE(ctr.msbSet());        // 1
    ctr.increment();
    EXPECT_TRUE(ctr.msbSet());         // 2
    ctr.increment();
    EXPECT_TRUE(ctr.msbSet());         // 3
}

TEST(SatCounter, OneBitBehavesLikeLastOutcome)
{
    SatCounter ctr(1, 0);
    EXPECT_EQ(ctr.max(), 1);
    ctr.increment();
    EXPECT_EQ(ctr.raw(), 1);
    ctr.increment();
    EXPECT_EQ(ctr.raw(), 1);
    ctr.reset();
    EXPECT_EQ(ctr.raw(), 0);
}

TEST(SatCounter, ResetZeroes)
{
    SatCounter ctr(4, 9);
    ctr.reset();
    EXPECT_EQ(ctr.raw(), 0);
}

class SatCounterWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatCounterWidths, MaxMatchesWidth)
{
    unsigned width = GetParam();
    SatCounter ctr(width, 0);
    EXPECT_EQ(ctr.max(), (1u << width) - 1);
    for (unsigned i = 0; i < (1u << width) + 5; ++i)
        ctr.increment();
    EXPECT_EQ(ctr.raw(), ctr.max());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SatCounterWidths,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

} // anonymous namespace
} // namespace polypath
