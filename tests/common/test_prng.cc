#include <gtest/gtest.h>

#include "common/prng.hh"

namespace polypath
{
namespace
{

TEST(Prng, DeterministicForSameSeed)
{
    Prng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Prng, ZeroSeedIsRemapped)
{
    Prng a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(Prng, NextBelowStaysInRange)
{
    Prng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(Prng, ChanceApproximatesProbability)
{
    Prng rng(99);
    int hits = 0;
    constexpr int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(30, 100);
    double rate = static_cast<double>(hits) / trials;
    EXPECT_NEAR(rate, 0.30, 0.02);
}

TEST(Prng, NextDoubleInUnitInterval)
{
    Prng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

} // anonymous namespace
} // namespace polypath
