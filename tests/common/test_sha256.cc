/**
 * @file
 * FIPS 180-4 test vectors for the SHA-256 implementation backing the
 * result cache's content addressing.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/sha256.hh"

namespace polypath
{
namespace
{

TEST(Sha256, EmptyInput)
{
    EXPECT_EQ(Sha256::hashHex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(Sha256::hashHex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(Sha256::hashHex("abcdbcdecdefdefgefghfghighijhijk"
                              "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(h.hexDigest(),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    Sha256 h;
    h.update("ab");
    h.update("c");
    EXPECT_EQ(h.hexDigest(), Sha256::hashHex("abc"));
}

TEST(Sha256, U64UpdateChangesDigest)
{
    Sha256 a, b;
    a.updateU64(1);
    b.updateU64(2);
    EXPECT_NE(a.hexDigest(), b.hexDigest());
}

} // anonymous namespace
} // namespace polypath
