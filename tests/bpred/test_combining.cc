#include <gtest/gtest.h>

#include "bpred/combining.hh"

namespace polypath
{
namespace
{

PredictionQuery
query(Addr pc, u64 ghr)
{
    PredictionQuery q;
    q.pc = pc;
    q.ghr = ghr;
    return q;
}

TEST(Bimodal, LearnsPerPcBias)
{
    BimodalPredictor pred(10);
    // Note: 0x1004 and 0x1008 map to distinct table entries.
    for (int i = 0; i < 4; ++i) {
        pred.update(0x1004, 0, true);
        pred.update(0x1008, 0, false);
    }
    EXPECT_TRUE(pred.predict(query(0x1004, 0xdead)));   // ghr ignored
    EXPECT_FALSE(pred.predict(query(0x1008, 0xbeef)));
}

TEST(Bimodal, IgnoresHistory)
{
    BimodalPredictor pred(10);
    pred.update(0x1000, 0x1, true);
    pred.update(0x1000, 0x2, true);
    EXPECT_EQ(pred.predict(query(0x1000, 0)),
              pred.predict(query(0x1000, 0x3fff)));
}

TEST(Bimodal, StateBytes)
{
    EXPECT_EQ(BimodalPredictor(12).stateBytes(), 1024u);
}

TEST(Combining, ChooserPrefersHistoryWhenItHelps)
{
    // A branch whose outcome alternates: bimodal flaps (~50%), gshare
    // with history nails it. The chooser must migrate to gshare.
    CombiningPredictor pred(12);
    u64 ghr = 0;
    int correct_late = 0;
    for (int i = 0; i < 400; ++i) {
        bool actual = (i % 2) == 0;
        bool guess = pred.predict(query(0x3000, ghr));
        if (i >= 200)
            correct_late += (guess == actual);
        pred.update(0x3000, ghr, actual);
        ghr = (ghr << 1) | actual;
    }
    EXPECT_GT(correct_late, 190);
}

TEST(Combining, ChooserPrefersBimodalForBiasedAliasedBranches)
{
    // Many strongly-biased branches with noisy histories: gshare's
    // history-xor spreads each branch over many counters (slow/aliased),
    // while bimodal learns the bias instantly. The combiner must be at
    // least as good as gshare alone.
    auto run = [](auto &pred) {
        u64 lcg = 42;
        auto rnd = [&] {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            return lcg >> 33;
        };
        int correct = 0;
        for (int i = 0; i < 20000; ++i) {
            Addr pc = 0x4000 + (rnd() % 200) * 4;
            u64 ghr = rnd();            // effectively random history
            bool actual = ((pc >> 2) % 10) != 0;    // 90% taken-ish
            bool guess = pred.predict(query(pc, ghr));
            correct += (guess == actual);
            pred.update(pc, ghr, actual);
        }
        return correct;
    };
    CombiningPredictor combining(12);
    GsharePredictor gshare(12);
    int combining_score = run(combining);
    int gshare_score = run(gshare);
    EXPECT_GT(combining_score, gshare_score);
}

TEST(Combining, StateIsThreeTables)
{
    // bimodal + gshare + chooser, each 2-bit.
    EXPECT_EQ(CombiningPredictor(12).stateBytes(), 3 * 1024u);
}

} // anonymous namespace
} // namespace polypath
