#include <gtest/gtest.h>

#include "bpred/gshare.hh"

namespace polypath
{
namespace
{

PredictionQuery
query(Addr pc, u64 ghr)
{
    PredictionQuery q;
    q.pc = pc;
    q.ghr = ghr;
    return q;
}

TEST(Gshare, LearnsAlwaysTaken)
{
    GsharePredictor pred(10);
    for (int i = 0; i < 4; ++i)
        pred.update(0x1000, 0, true);
    EXPECT_TRUE(pred.predict(query(0x1000, 0)));
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    GsharePredictor pred(10);
    for (int i = 0; i < 4; ++i)
        pred.update(0x1000, 0, false);
    EXPECT_FALSE(pred.predict(query(0x1000, 0)));
}

TEST(Gshare, HysteresisNeedsTwoFlips)
{
    GsharePredictor pred(10);
    for (int i = 0; i < 4; ++i)
        pred.update(0x1000, 0, true);   // saturate taken
    pred.update(0x1000, 0, false);      // one not-taken
    EXPECT_TRUE(pred.predict(query(0x1000, 0)));    // still taken
    pred.update(0x1000, 0, false);
    EXPECT_FALSE(pred.predict(query(0x1000, 0)));
}

TEST(Gshare, HistoryDisambiguatesSameBranch)
{
    GsharePredictor pred(12);
    // Same PC behaves oppositely under two different histories.
    for (int i = 0; i < 4; ++i) {
        pred.update(0x2000, 0b1010, true);
        pred.update(0x2000, 0b0101, false);
    }
    EXPECT_TRUE(pred.predict(query(0x2000, 0b1010)));
    EXPECT_FALSE(pred.predict(query(0x2000, 0b0101)));
}

TEST(Gshare, IndexUsesPcXorHistoryMasked)
{
    GsharePredictor pred(8);
    EXPECT_EQ(pred.index(0x1000, 0), ((0x1000 >> 2) ^ 0u) & 0xff);
    EXPECT_EQ(pred.index(0x1000, 0xff), ((0x1000 >> 2) ^ 0xffu) & 0xff);
    // History beyond the table width is masked away.
    EXPECT_EQ(pred.index(0, 0x1ff), 0xffu);
}

TEST(Gshare, StateBytesIsQuarterOfEntries)
{
    // 2 bits per counter.
    EXPECT_EQ(GsharePredictor(10).stateBytes(), 256u);      // 1k counters
    EXPECT_EQ(GsharePredictor(14).stateBytes(), 4096u);     // 16k counters
}

TEST(Gshare, LearnsAlternatingPatternThroughHistory)
{
    GsharePredictor pred(10);
    // Alternating T/N/T/N with history: after warmup prediction should
    // be nearly perfect since history disambiguates the two phases.
    u64 ghr = 0;
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        bool actual = (i % 2) == 0;
        bool guess = pred.predict(query(0x3000, ghr));
        correct += (guess == actual);
        pred.update(0x3000, ghr, actual);
        ghr = (ghr << 1) | actual;
    }
    EXPECT_GT(correct, 180);
}

TEST(TakenPredictor, AlwaysTaken)
{
    TakenPredictor pred;
    EXPECT_TRUE(pred.predict(query(0x1234, 99)));
    EXPECT_EQ(pred.stateBytes(), 0u);
}

TEST(OraclePredictor, FollowsTraceOnCorrectPath)
{
    BranchTrace trace = {{0x100, false, true, 0},
                         {0x200, false, false, 0}};
    OraclePredictor pred;
    PredictionQuery q;
    q.pc = 0x100;
    q.trace = &trace;
    q.cursor.onCorrectPath = true;
    q.cursor.index = 0;
    EXPECT_TRUE(pred.predict(q));
    q.pc = 0x200;
    q.cursor.index = 1;
    EXPECT_FALSE(pred.predict(q));
}

TEST(OraclePredictor, FallsBackOffPath)
{
    BranchTrace trace = {{0x100, false, false, 0}};
    OraclePredictor pred;
    PredictionQuery q;
    q.trace = &trace;
    q.cursor.onCorrectPath = false;
    q.cursor.index = 0;
    EXPECT_TRUE(pred.predict(q));   // default taken off-path
}

TEST(TraceCursor, ReturnRecordsAreNotBranchOutcomes)
{
    BranchTrace trace = {{0x100, true, false, 0x500}};
    TraceCursor cursor{true, 0};
    EXPECT_FALSE(cursor.outcomeKnown(trace));
    EXPECT_TRUE(cursor.returnKnown(trace));
}

} // anonymous namespace
} // namespace polypath
