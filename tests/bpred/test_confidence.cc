#include <gtest/gtest.h>

#include "bpred/confidence.hh"

namespace polypath
{
namespace
{

PredictionQuery
query(Addr pc, u64 ghr = 0)
{
    PredictionQuery q;
    q.pc = pc;
    q.ghr = ghr;
    return q;
}

TEST(FixedConfidence, AlwaysHighNeverDiverges)
{
    AlwaysHighConfidence conf;
    EXPECT_TRUE(conf.estimate(query(0x100), true));
    EXPECT_TRUE(conf.estimate(query(0x100), false));
}

TEST(FixedConfidence, AlwaysLowAlwaysDiverges)
{
    AlwaysLowConfidence conf;
    EXPECT_FALSE(conf.estimate(query(0x100), true));
}

TEST(Jrs1Bit, LowAfterMispredictHighAfterCorrect)
{
    JrsConfidence conf(10, 1, 1, /*enhanced_index=*/false);
    // Fresh counters are zero: low confidence.
    EXPECT_FALSE(conf.estimate(query(0x100), true));
    conf.update(0x100, 0, true, /*correct=*/true);
    EXPECT_TRUE(conf.estimate(query(0x100), true));
    conf.update(0x100, 0, true, /*correct=*/false);
    EXPECT_FALSE(conf.estimate(query(0x100), true));
}

TEST(Jrs4Bit, NeedsThresholdCorrectInARow)
{
    JrsConfidence conf(10, 4, 15, false);
    for (int i = 0; i < 14; ++i) {
        conf.update(0x100, 0, true, true);
        EXPECT_FALSE(conf.estimate(query(0x100), true)) << i;
    }
    conf.update(0x100, 0, true, true);
    EXPECT_TRUE(conf.estimate(query(0x100), true));
    // A single misprediction resets the counter (resetting counters).
    conf.update(0x100, 0, true, false);
    EXPECT_FALSE(conf.estimate(query(0x100), true));
}

TEST(Jrs, EnhancedIndexSeparatesPredictedOutcomes)
{
    // With enhanced indexing, the same (pc, history) maps to different
    // counters for predicted-taken vs predicted-not-taken.
    JrsConfidence conf(10, 1, 1, /*enhanced_index=*/true);
    // Note: updates must use the same indexing inputs as estimates.
    conf.update(0x100, 0, /*pred_taken=*/true, /*correct=*/true);
    EXPECT_TRUE(conf.estimate(query(0x100), true));
    EXPECT_FALSE(conf.estimate(query(0x100), false));
}

TEST(Jrs, OriginalIndexIgnoresPredictedOutcome)
{
    JrsConfidence conf(10, 1, 1, /*enhanced_index=*/false);
    conf.update(0x100, 0, true, true);
    EXPECT_TRUE(conf.estimate(query(0x100), true));
    EXPECT_TRUE(conf.estimate(query(0x100), false));
}

TEST(Jrs, StateBytesMatchesCounterWidth)
{
    EXPECT_EQ(JrsConfidence(13, 1, 1).stateBytes(), 1024u);  // 8k 1-bit
    EXPECT_EQ(JrsConfidence(10, 4, 15).stateBytes(), 512u);  // 1k 4-bit
}

TEST(Jrs, PvnBehaviour1BitVs4Bit)
{
    // Synthetic branch population: 80% of branches are always-correct,
    // 20% are correct with probability 0.5. A 1-bit JRS flags "low
    // confidence" right after a misprediction; those flags should hit
    // actual mispredictions much more often than chance.
    JrsConfidence conf(12, 1, 1, false);
    u64 lcg = 777;
    auto rnd = [&]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return (lcg >> 33);
    };
    u64 low = 0, low_and_wrong = 0;
    for (int i = 0; i < 30000; ++i) {
        Addr pc = 0x1000 + (rnd() % 50) * 4;
        bool hard = (pc >> 2) % 5 == 0;     // every 5th branch is hard
        bool correct = hard ? (rnd() % 2 == 0) : true;
        bool high = conf.estimate(query(pc), true);
        if (i > 5000 && !high) {
            ++low;
            low_and_wrong += !correct;
        }
        conf.update(pc, 0, true, correct);
    }
    ASSERT_GT(low, 100u);
    double pvn = static_cast<double>(low_and_wrong) /
                 static_cast<double>(low);
    // Population misprediction rate is ~10%; PVN should be much higher.
    EXPECT_GT(pvn, 0.35);
}

TEST(OracleConfidence, LowExactlyOnMispredictions)
{
    BranchTrace trace = {{0x100, false, true, 0}};
    OracleConfidence conf;
    PredictionQuery q;
    q.pc = 0x100;
    q.trace = &trace;
    q.cursor.onCorrectPath = true;
    q.cursor.index = 0;
    EXPECT_TRUE(conf.estimate(q, true));    // predicted taken == actual
    EXPECT_FALSE(conf.estimate(q, false));  // predicted NT: wrong -> low
}

TEST(OracleConfidence, HighOffPath)
{
    BranchTrace trace = {{0x100, false, true, 0}};
    OracleConfidence conf;
    PredictionQuery q;
    q.pc = 0x100;
    q.trace = &trace;
    q.cursor.onCorrectPath = false;
    EXPECT_TRUE(conf.estimate(q, false));
}

TEST(AdaptiveJrs, BehavesLikeJrsWhenPvnIsHigh)
{
    // Low-confidence calls that are mostly mispredictions keep eager
    // mode enabled.
    AdaptiveJrsConfidence conf(10, 1, 1, false, 0.25, 16);
    for (int i = 0; i < 200; ++i) {
        // Fresh (never-correct) branches: counters stay 0 -> low
        // confidence, and they do mispredict.
        Addr pc = 0x1000 + 4 * (i % 8);
        conf.update(pc, 0, true, /*correct=*/false);
    }
    EXPECT_TRUE(conf.divergenceEnabled());
    PredictionQuery q;
    q.pc = 0x1000;
    EXPECT_FALSE(conf.estimate(q, true));   // still signals low
}

TEST(AdaptiveJrs, RevertsToMonopathOnLowPvn)
{
    // Alternating correct/incorrect at the same index keeps the 1-bit
    // counter flapping: half the calls are low-confidence but nearly
    // all of those are actually correct predictions -> PVN collapses.
    AdaptiveJrsConfidence conf(10, 1, 1, false, 0.25, 32);
    for (int i = 0; i < 40; ++i) {
        conf.update(0x100, 0, true, /*correct=*/false);
        for (int j = 0; j < 8; ++j)
            conf.update(0x100, 0, true, /*correct=*/true);
    }
    EXPECT_FALSE(conf.divergenceEnabled());
    // Everything is reported high-confidence while reverted.
    PredictionQuery q;
    q.pc = 0x104;
    EXPECT_TRUE(conf.estimate(q, true));
}

TEST(AdaptiveJrs, ReenablesWhenPvnRecovers)
{
    AdaptiveJrsConfidence conf(10, 1, 1, false, 0.25, 16);
    // Phase 1: collapse PVN. A rare misprediction followed by a run of
    // correct predictions makes almost every low-confidence call (the
    // one right after the reset) a *correct* prediction.
    for (int i = 0; i < 60; ++i) {
        conf.update(0x100, 0, true, /*correct=*/false);
        for (int j = 0; j < 8; ++j)
            conf.update(0x100, 0, true, /*correct=*/true);
    }
    ASSERT_FALSE(conf.divergenceEnabled());
    // Phase 2: low-confidence calls become real mispredictions again.
    for (int i = 0; i < 200; ++i)
        conf.update(0x200 + 4 * (i % 16), 0, true, false);
    EXPECT_TRUE(conf.divergenceEnabled());
}

TEST(AdaptiveJrsDeath, BadFloorIsFatal)
{
    EXPECT_EXIT(AdaptiveJrsConfidence(10, 1, 1, true, 1.5, 16),
                ::testing::ExitedWithCode(1), "PVN floor");
    EXPECT_EXIT(AdaptiveJrsConfidence(10, 1, 1, true, 0.25, 0),
                ::testing::ExitedWithCode(1), "window");
}

TEST(JrsDeath, BadParametersAreFatal)
{
    EXPECT_EXIT(JrsConfidence(10, 0, 1), ::testing::ExitedWithCode(1),
                "counter width");
    EXPECT_EXIT(JrsConfidence(10, 2, 4), ::testing::ExitedWithCode(1),
                "threshold");
}

} // anonymous namespace
} // namespace polypath
