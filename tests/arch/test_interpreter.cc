#include <gtest/gtest.h>

#include "arch/interpreter.hh"
#include "asmkit/assembler.hh"

namespace polypath
{
namespace
{

TEST(Interpreter, StraightLineArithmetic)
{
    Assembler a;
    a.li(1, 10);
    a.li(2, 32);
    a.add(1, 2, 3);
    a.halt();
    InterpResult r = interpret(a.assemble("t"));
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.finalRegs.reg(3), 42u);
    EXPECT_EQ(r.instructions, 4u);
}

TEST(Interpreter, CountdownLoop)
{
    Assembler a;
    a.li(1, 100);
    a.li(2, 0);
    Label loop = a.here();
    a.add(2, 1, 2);
    a.addi(1, -1, 1);
    a.bgt(1, loop);
    a.halt();
    InterpResult r = interpret(a.assemble("t"));
    EXPECT_EQ(r.finalRegs.reg(2), 5050u);   // sum 1..100
    EXPECT_EQ(r.condBranches, 100u);
    EXPECT_EQ(r.takenBranches, 99u);
}

TEST(Interpreter, TraceRecordsBranchOutcomes)
{
    Assembler a;
    a.li(1, 3);
    Label loop = a.here();
    a.addi(1, -1, 1);
    a.bgt(1, loop);
    a.halt();
    Interpreter interp(a.assemble("t"));
    InterpResult r = interp.run();
    ASSERT_EQ(r.trace->size(), 3u);
    EXPECT_TRUE((*r.trace)[0].taken);
    EXPECT_TRUE((*r.trace)[1].taken);
    EXPECT_FALSE((*r.trace)[2].taken);
    for (const BranchRecord &rec : *r.trace)
        EXPECT_FALSE(rec.isReturn);
}

TEST(Interpreter, MemoryRoundTrip)
{
    Assembler a;
    Addr slot = a.d64(0);
    a.li(1, slot);
    a.li(2, 0xabcdef);
    a.stq(2, 0, 1);
    a.ldq(3, 0, 1);
    a.ldbu(4, 0, 1);
    a.halt();
    InterpResult r = interpret(a.assemble("t"));
    EXPECT_EQ(r.finalRegs.reg(3), 0xabcdefu);
    EXPECT_EQ(r.finalRegs.reg(4), 0xefu);
    EXPECT_EQ(r.loads, 2u);
    EXPECT_EQ(r.stores, 1u);
    EXPECT_EQ(r.finalMem->read64(slot), 0xabcdefu);
}

TEST(Interpreter, CallAndReturn)
{
    Assembler a;
    Label fn = a.newLabel();
    a.li(16, 5);
    a.jsr(26, fn);
    a.halt();
    a.bind(fn);
    a.slli(16, 1, 0);       // return 2 * arg
    a.ret(26);
    InterpResult r = interpret(a.assemble("t"));
    EXPECT_EQ(r.finalRegs.reg(0), 10u);
    EXPECT_EQ(r.calls, 1u);
    // The return shows up in the control-flow trace.
    ASSERT_EQ(r.trace->size(), 1u);
    EXPECT_TRUE((*r.trace)[0].isReturn);
}

TEST(Interpreter, ZeroRegisterIgnoresWrites)
{
    Assembler a;
    a.li(1, 7);
    a.add(1, 1, 31);        // write to r31 vanishes
    a.add(31, 31, 2);       // r2 = 0
    a.halt();
    InterpResult r = interpret(a.assemble("t"));
    EXPECT_EQ(r.finalRegs.reg(31), 0u);
    EXPECT_EQ(r.finalRegs.reg(2), 0u);
}

TEST(Interpreter, RecursiveFactorial)
{
    Assembler a;
    Label fact = a.newLabel();
    a.li(30, 0x4000000);    // stack pointer
    a.li(16, 10);
    a.jsr(26, fact);
    a.halt();

    // u64 fact(n): n <= 1 ? 1 : n * fact(n - 1)
    a.bind(fact);
    Label base = a.newLabel();
    a.cmplei(16, 1, 1);
    a.bne(1, base);
    a.addi(30, -16, 30);
    a.stq(26, 0, 30);
    a.stq(16, 8, 30);
    a.addi(16, -1, 16);
    a.jsr(26, fact);
    a.ldq(16, 8, 30);
    a.ldq(26, 0, 30);
    a.addi(30, 16, 30);
    a.mul(16, 0, 0);
    a.ret(26);
    a.bind(base);
    a.li(0, 1);
    a.ret(26);

    InterpResult r = interpret(a.assemble("t"));
    EXPECT_EQ(r.finalRegs.reg(0), 3628800u);
}

TEST(Interpreter, FloatingPointPipeline)
{
    Assembler a;
    Addr c1 = a.d64(std::bit_cast<u64>(1.5));
    Addr c2 = a.d64(std::bit_cast<u64>(2.5));
    a.li(1, c1);
    a.li(2, c2);
    a.fld(1, 0, 1);
    a.fld(2, 0, 2);
    a.fadd(1, 2, 3);
    a.fmul(1, 2, 4);
    a.fcmplt(1, 2, 5);
    a.cvtfi(3, 6);
    a.halt();
    InterpResult r = interpret(a.assemble("t"));
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.finalRegs.reg(fpReg(3))),
                     4.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.finalRegs.reg(fpReg(4))),
                     3.75);
    EXPECT_EQ(r.finalRegs.reg(5), 1u);
    EXPECT_EQ(r.finalRegs.reg(6), 4u);
}

TEST(InterpreterDeath, RunawayProgramIsFatal)
{
    EXPECT_EXIT(
        {
            Assembler a;
            Label spin = a.here();
            a.br(spin);
            a.halt();
            interpret(a.assemble("t"), 10000);
        },
        ::testing::ExitedWithCode(1), "exceeded");
}

TEST(InterpreterDeath, FallingOffCodeIsFatal)
{
    EXPECT_EXIT(
        {
            Assembler a;
            a.nop();        // no HALT: next fetch decodes INVALID
            interpret(a.assemble("t"));
        },
        ::testing::ExitedWithCode(1), "INVALID");
}

} // anonymous namespace
} // namespace polypath
