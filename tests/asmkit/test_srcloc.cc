/**
 * @file
 * Assembler/parser error messages must carry the source location
 * (unit:line) of the offending statement, and assembled programs must
 * carry per-instruction source lines for the analyzer.
 */

#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "asmkit/parser.hh"
#include "asmkit/program.hh"

namespace polypath
{
namespace
{

TEST(SourceLocation, UndefinedLabelNamesLineAndUnit)
{
    EXPECT_EXIT(assembleText("        li      r1, 1\n"
                             "        br      nowhere\n"
                             "        halt\n",
                             "missing.s"),
                ::testing::ExitedWithCode(1),
                "missing\\.s:2: undefined label 'nowhere'");
}

TEST(SourceLocation, ImmediateRangeErrorCarriesLocation)
{
    EXPECT_EXIT(assembleText("        li      r1, 1\n"
                             "        addi    r1, 99999, r2\n",
                             "range.s"),
                ::testing::ExitedWithCode(1),
                "range\\.s:2: addi: immediate 99999 out of 16-bit "
                "range");
}

TEST(SourceLocation, UnsignedLogicalImmediateCarriesLocation)
{
    EXPECT_EXIT(assembleText("\n\n        andi    r1, -5, r2\n",
                             "logical.s"),
                ::testing::ExitedWithCode(1),
                "logical\\.s:3: andi: immediate -5 out of unsigned "
                "16-bit range");
}

TEST(SourceLocation, DisplacementRangeErrorCarriesLocation)
{
    EXPECT_EXIT(assembleText("        ldq     r1, 123456(r2)\n",
                             "disp.s"),
                ::testing::ExitedWithCode(1),
                "disp\\.s:1: ldq: displacement 123456 out of 16-bit "
                "range");
}

TEST(SourceLocation, ProgramRecordsPerInstructionLines)
{
    Program p = assembleText("; comment line\n"
                             "        li      r1, 7\n"
                             "\n"
                             "loop:   addi    r1, -1, r1\n"
                             "        bgt     r1, loop\n"
                             "        halt\n",
                             "lines.s");
    EXPECT_EQ(p.sourceName, "lines.s");
    ASSERT_EQ(p.srcLines.size(), p.code.size());
    EXPECT_EQ(p.lineOf(0), 2u);     // li (single instruction for 7)
    EXPECT_EQ(p.lineOf(1), 4u);     // addi
    EXPECT_EQ(p.lineOf(2), 5u);     // bgt
    EXPECT_EQ(p.lineOf(3), 6u);     // halt
}

TEST(SourceLocation, ProgrammaticAssemblyHasNoLines)
{
    Assembler a;
    a.halt();
    Program p = a.assemble("api");
    EXPECT_TRUE(p.sourceName.empty());
    EXPECT_TRUE(p.srcLines.empty());
    EXPECT_EQ(p.lineOf(0), 0u);
}

TEST(SourceLocation, NamedLabelUsedInAssemblerErrors)
{
    // Through the Assembler API directly: a named, never-bound label
    // must be reported by name, with the recorded location.
    Assembler a;
    Label missing = a.newLabel();
    a.nameLabel(missing, "missing_fn");
    a.setLocation("unit.s", 7);
    a.jsr(26, missing);
    a.halt();
    EXPECT_EXIT(a.assemble("prog"), ::testing::ExitedWithCode(1),
                "unit\\.s:7: prog: unbound 'missing_fn'");
}

} // anonymous namespace
} // namespace polypath
