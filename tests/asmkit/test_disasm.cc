/**
 * @file
 * Disassembler tests, including the full round-trip property: for every
 * bundled workload, disassembling and reassembling reproduces the exact
 * binary image (code words and data bytes).
 */

#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "asmkit/disasm.hh"
#include "asmkit/parser.hh"
#include "workloads/workloads.hh"

namespace polypath
{
namespace
{

/** Reassemble a dump with the original program's bases. */
Program
reassemble(const Program &original)
{
    Addr data_base = original.dataSegments.empty()
                         ? 0x100000
                         : original.dataSegments[0].first;
    return assembleText(disassembleProgram(original), original.name,
                        original.codeBase, data_base);
}

TEST(Disasm, EmitsLabelsForBranchTargets)
{
    Assembler a;
    Label loop = a.here();
    a.addi(1, -1, 1);
    a.bgt(1, loop);
    a.halt();
    std::string dump = disassembleProgram(a.assemble("t"));
    EXPECT_NE(dump.find("L1000:"), std::string::npos);
    EXPECT_NE(dump.find("bgt r1, L1000"), std::string::npos);
}

TEST(Disasm, DataSegmentAsQuads)
{
    Assembler a;
    a.d64(0xdeadbeef);
    a.halt();
    std::string dump = disassembleProgram(a.assemble("t"));
    EXPECT_NE(dump.find(".quad   0xdeadbeef"), std::string::npos);
}

TEST(Disasm, SimpleRoundTrip)
{
    Assembler a;
    Addr slot = a.d64(7);
    a.li(1, slot);
    Label fn = a.newLabel();
    a.jsr(26, fn);
    a.halt();
    a.bind(fn);
    a.ldq(2, 0, 1);
    a.stq(2, 8, 1);
    a.ret(26);
    Program original = a.assemble("simple");
    Program copy = reassemble(original);
    EXPECT_EQ(copy.code, original.code);
    ASSERT_EQ(copy.dataSegments.size(), original.dataSegments.size());
    EXPECT_EQ(copy.dataSegments[0], original.dataSegments[0]);
}

class WorkloadRoundTrip : public ::testing::TestWithParam<const char *>
{};

TEST_P(WorkloadRoundTrip, DisassembleReassembleIsIdentity)
{
    WorkloadParams params;
    params.scale = 0.02;
    Program original = buildWorkload(GetParam(), params);
    Program copy = reassemble(original);
    ASSERT_EQ(copy.code.size(), original.code.size());
    for (size_t i = 0; i < original.code.size(); ++i) {
        ASSERT_EQ(copy.code[i], original.code[i])
            << "instruction " << i << ": "
            << decodeInstr(original.code[i]).toString() << " vs "
            << decodeInstr(copy.code[i]).toString();
    }
    ASSERT_EQ(copy.dataSegments.size(), original.dataSegments.size());
    for (size_t i = 0; i < original.dataSegments.size(); ++i) {
        EXPECT_EQ(copy.dataSegments[i].first,
                  original.dataSegments[i].first);
        EXPECT_EQ(copy.dataSegments[i].second,
                  original.dataSegments[i].second);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadRoundTrip,
                         ::testing::Values("compress", "gcc", "perl",
                                           "go", "m88ksim", "xlisp",
                                           "vortex", "jpeg", "wave",
                                           "nbody"));

} // anonymous namespace
} // namespace polypath
