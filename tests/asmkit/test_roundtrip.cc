/**
 * @file
 * Property test: disassembling a program of randomly generated valid
 * instruction words and reassembling the text reproduces the code image
 * bit for bit — assemble(disasm(p)) == p.
 */

#include <gtest/gtest.h>

#include "asmkit/disasm.hh"
#include "asmkit/parser.hh"
#include "asmkit/program.hh"
#include "common/prng.hh"
#include "isa/instr.hh"

namespace polypath
{
namespace
{

/**
 * Draw a random decodable instruction and canonicalise the fields the
 * printer does not carry (they are encoded but never printed, so they
 * cannot survive a text round trip): RET ignores rb/rc, the conversions
 * ignore rb.
 */
Instr
randomInstr(Prng &prng)
{
    Instr instr;
    do {
        instr = decodeInstr(static_cast<u32>(prng.next()));
    } while (instr.op == Opcode::INVALID);

    if (instr.op == Opcode::RET)
        instr.rb = instr.rc = 0;
    if (instr.op == Opcode::CVTIF || instr.op == Opcode::CVTFI)
        instr.rb = 0;
    return instr;
}

/** Random program of @p count instructions with in-range control flow. */
Program
randomProgram(Prng &prng, size_t count)
{
    std::vector<Instr> instrs(count);
    for (size_t i = 0; i < count; ++i)
        instrs[i] = randomInstr(prng);

    // Re-point every branch/jump displacement at a random instruction:
    // the disassembler (rightly) refuses targets outside the image.
    for (size_t i = 0; i < count; ++i) {
        const OpInfo &info = instrs[i].info();
        if (info.isCondBranch || info.isUncondBranch || info.isCall) {
            size_t target = prng.nextBelow(count);
            instrs[i].imm =
                static_cast<s32>(static_cast<s64>(target) - (i + 1));
        }
    }

    Program p;
    p.name = "roundtrip";
    p.codeBase = 0x1000;
    p.entry = p.codeBase;
    for (const Instr &instr : instrs)
        p.code.push_back(encodeInstr(instr));
    return p;
}

TEST(DisasmRoundTrip, RandomProgramsSurviveTextRoundTrip)
{
    Prng prng(0xd15a53);
    for (unsigned round = 0; round < 100; ++round) {
        Program p = randomProgram(prng, 1 + prng.nextBelow(48));
        std::string text = disassembleProgram(p);
        Program q = assembleText(text, "roundtrip.s");

        ASSERT_EQ(p.code.size(), q.code.size()) << "round " << round;
        for (size_t i = 0; i < p.code.size(); ++i) {
            ASSERT_EQ(p.code[i], q.code[i])
                << "round " << round << " instr " << i << ": "
                << decodeInstr(p.code[i]).toString() << " vs "
                << decodeInstr(q.code[i]).toString();
        }
        EXPECT_EQ(p.entry, q.entry) << "round " << round;
    }
}

TEST(DisasmRoundTrip, EveryOpcodeSurvives)
{
    // One handcrafted instance per opcode, branches pointing at the
    // NOP padding appended after the sweep.
    std::vector<Instr> instrs;
    for (unsigned op = 1; op < static_cast<unsigned>(Opcode::NumOpcodes);
         ++op) {
        Instr instr;
        instr.op = static_cast<Opcode>(op);
        instr.ra = 1;
        instr.rb = 2;
        instr.rc = 3;
        instr.imm = 4;
        const OpInfo &info = instr.info();
        if (instr.op == Opcode::RET)
            instr.rb = instr.rc = 0;
        if (instr.op == Opcode::CVTIF || instr.op == Opcode::CVTFI)
            instr.rb = 0;
        if (info.format == Format::N)
            instr.ra = instr.rb = instr.rc = 0, instr.imm = 0;
        instrs.push_back(instr);
    }
    for (size_t i = 0; i < 5; ++i) {
        Instr nop;
        nop.op = Opcode::NOP;
        instrs.push_back(nop);
    }
    // The imm=4 displacements must stay inside the padded image.
    for (size_t i = 0; i < instrs.size(); ++i) {
        const OpInfo &info = instrs[i].info();
        if (info.isCondBranch || info.isUncondBranch || info.isCall) {
            ASSERT_LT(i + 1 + 4, instrs.size());
        }
    }

    Program p;
    p.name = "sweep";
    p.codeBase = 0x1000;
    p.entry = p.codeBase;
    for (const Instr &instr : instrs)
        p.code.push_back(encodeInstr(instr));

    Program q = assembleText(disassembleProgram(p), "sweep.s");
    ASSERT_EQ(p.code.size(), q.code.size());
    for (size_t i = 0; i < p.code.size(); ++i) {
        EXPECT_EQ(p.code[i], q.code[i])
            << "instr " << i << ": " << decodeInstr(p.code[i]).toString();
    }
}

} // anonymous namespace
} // namespace polypath
