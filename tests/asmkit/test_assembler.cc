#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "isa/instr.hh"
#include "isa/semantics.hh"
#include "memsys/memory.hh"

namespace polypath
{
namespace
{

TEST(Assembler, EmitsAtCodeBase)
{
    Assembler a(0x2000);
    EXPECT_EQ(a.pc(), 0x2000u);
    a.nop();
    EXPECT_EQ(a.pc(), 0x2004u);
    Program p = a.assemble("t");
    EXPECT_EQ(p.entry, 0x2000u);
    EXPECT_EQ(p.codeSize(), 1u);
}

TEST(Assembler, BackwardBranchDisplacement)
{
    Assembler a;
    Label top = a.here();
    a.nop();
    a.nop();
    a.bne(1, top);          // at index 2, target 0 -> disp -3
    Program p = a.assemble("t");
    Instr br = decodeInstr(p.code[2]);
    EXPECT_EQ(br.op, Opcode::BNE);
    EXPECT_EQ(br.imm, -3);
    // targetFrom must land on the label.
    Addr branch_pc = p.codeBase + 8;
    EXPECT_EQ(br.targetFrom(branch_pc), p.codeBase);
}

TEST(Assembler, ForwardBranchDisplacement)
{
    Assembler a;
    Label skip = a.newLabel();
    a.beq(2, skip);
    a.nop();
    a.nop();
    a.bind(skip);
    a.halt();
    Program p = a.assemble("t");
    Instr br = decodeInstr(p.code[0]);
    EXPECT_EQ(br.imm, 2);
    EXPECT_EQ(br.targetFrom(p.codeBase), p.codeBase + 12);
}

TEST(Assembler, JsrAndBrUseLabels)
{
    Assembler a;
    Label fn = a.newLabel();
    a.jsr(26, fn);
    a.halt();
    a.bind(fn);
    a.ret(26);
    Program p = a.assemble("t");
    Instr jsr = decodeInstr(p.code[0]);
    EXPECT_EQ(jsr.op, Opcode::JSR);
    EXPECT_EQ(jsr.targetFrom(p.codeBase), p.codeBase + 8);
}

TEST(Assembler, LiSmallImmediate)
{
    Assembler a;
    a.li(1, 42);
    Program p = a.assemble("t");
    ASSERT_EQ(p.codeSize(), 1u);
    Instr i = decodeInstr(p.code[0]);
    EXPECT_EQ(i.op, Opcode::ADDI);
    EXPECT_EQ(i.imm, 42);
}

TEST(Assembler, Li32BitUsesLdah)
{
    Assembler a;
    a.li(1, 0x123456);
    Program p = a.assemble("t");
    EXPECT_LE(p.codeSize(), 2u);
    Instr i = decodeInstr(p.code[0]);
    EXPECT_EQ(i.op, Opcode::LDAH);
}

TEST(Assembler, DataSegmentLayout)
{
    Assembler a(0x1000, 0x100000);
    Addr w = a.d64(0x1122334455667788ull);
    EXPECT_EQ(w, 0x100000u);
    Addr z = a.dZero(16);
    EXPECT_EQ(z, 0x100008u);
    Addr aligned = a.dataAlign(64);
    EXPECT_EQ(aligned % 64, 0u);
    a.halt();
    Program p = a.assemble("t");
    ASSERT_EQ(p.dataSegments.size(), 1u);

    SparseMemory mem;
    p.loadInto(mem);
    EXPECT_EQ(mem.read64(w), 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(z), 0u);
}

TEST(Assembler, LoadIntoPlacesCode)
{
    Assembler a(0x4000);
    a.addi(31, 7, 1);
    a.halt();
    Program p = a.assemble("t");
    SparseMemory mem;
    p.loadInto(mem);
    Instr first = decodeInstr(mem.read32(0x4000));
    EXPECT_EQ(first.op, Opcode::ADDI);
    EXPECT_EQ(first.imm, 7);
    Instr second = decodeInstr(mem.read32(0x4004));
    EXPECT_TRUE(second.info().isHalt);
}

TEST(AssemblerDeath, UnboundLabelIsFatal)
{
    EXPECT_EXIT(
        {
            Assembler a;
            Label l = a.newLabel();
            a.br(l);
            a.assemble("t");
        },
        ::testing::ExitedWithCode(1), "unbound label");
}

TEST(AssemblerDeath, OversizedImmediateIsFatal)
{
    EXPECT_EXIT(
        {
            Assembler a;
            a.addi(1, 40000, 2);
        },
        ::testing::ExitedWithCode(1), "out of 16-bit range");
}

// li must materialise arbitrary constants exactly (checked through the
// encode/decode round trip and manual evaluation).
class LiValues : public ::testing::TestWithParam<u64> {};

TEST_P(LiValues, MaterialisesExactValue)
{
    u64 want = GetParam();
    Assembler a;
    a.li(1, want);
    Program p = a.assemble("t");

    // Evaluate the emitted sequence on a tiny register file.
    u64 regs[32] = {};
    Addr pc = p.codeBase;
    for (u32 word : p.code) {
        Instr i = decodeInstr(word);
        u64 va = (i.ra == 31) ? 0 : regs[i.ra];
        regs[i.rc] = computeResult(i, va, 0, pc);
        pc += 4;
    }
    EXPECT_EQ(regs[1], want) << std::hex << want;
}

INSTANTIATE_TEST_SUITE_P(
    Constants, LiValues,
    ::testing::Values(0ull, 1ull, 42ull, 0x7fffull, 0x8000ull, 0xffffull,
                      0x10000ull, 0x123456ull, 0x7fffffffull,
                      0x80000000ull, 0xffffffffull, 0x100000000ull,
                      0x123456789abcdef0ull, ~0ull,
                      0x8000000000000000ull));

} // anonymous namespace
} // namespace polypath
