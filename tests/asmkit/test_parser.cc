#include <gtest/gtest.h>

#include "arch/interpreter.hh"
#include "asmkit/parser.hh"
#include "sim/machine.hh"

namespace polypath
{
namespace
{

TEST(TextAssembler, SumLoopRuns)
{
    Program p = assembleText(R"(
        ; sum 1..100 into r2
        li      r1, 100
        li      r2, 0
loop:   add     r2, r1, r2
        addi    r1, -1, r1
        bgt     r1, loop
        halt
    )", "sumloop");
    InterpResult r = interpret(p);
    EXPECT_EQ(r.finalRegs.reg(2), 5050u);
}

TEST(TextAssembler, DataSectionAndSymbols)
{
    Program p = assembleText(R"(
        .data
        .align  8
answer: .quad   42, 43
buf:    .space  16
bytes:  .byte   1, 2, 0xff
        .equ    magic, 0x1234

        .text
        li      r1, answer
        ldq     r2, 0(r1)       ; 42
        ldq     r3, 8(r1)       ; 43
        li      r4, bytes
        ldbu    r5, 2(r4)       ; 0xff
        li      r6, magic
        halt
    )", "data_test");
    InterpResult r = interpret(p);
    EXPECT_EQ(r.finalRegs.reg(2), 42u);
    EXPECT_EQ(r.finalRegs.reg(3), 43u);
    EXPECT_EQ(r.finalRegs.reg(5), 0xffu);
    EXPECT_EQ(r.finalRegs.reg(6), 0x1234u);
}

TEST(TextAssembler, CallsAndAliases)
{
    Program p = assembleText(R"(
        li      sp, 0x4000000
        li      r16, 21
        jsr     ra, double
        halt
double: add     r16, r16, v0
        ret     ra
    )", "calls");
    InterpResult r = interpret(p);
    EXPECT_EQ(r.finalRegs.reg(0), 42u);
}

TEST(TextAssembler, StoresAndForwardBranches)
{
    Program p = assembleText(R"(
        .data
slot:   .quad   0
        .text
        li      r1, slot
        li      r2, 7
        beq     r31, skip       ; always taken (zero == 0)
        li      r2, 99          ; skipped
skip:   stq     r2, 0(r1)
        halt
    )", "fwd");
    InterpResult r = interpret(p);
    EXPECT_EQ(r.finalMem->read64(p.dataSegments[0].first), 7u);
}

TEST(TextAssembler, FloatingPoint)
{
    Program p = assembleText(R"(
        .data
c1:     .quad   0x3ff8000000000000      ; 1.5
        .text
        li      r1, c1
        fld     f1, 0(r1)
        fadd    f1, f1, f2              ; 3.0
        fcmplt  f1, f2, r3              ; 1.5 < 3.0 -> 1
        cvtfi   f2, r4                  ; 3
        halt
    )", "fp");
    InterpResult r = interpret(p);
    EXPECT_EQ(r.finalRegs.reg(3), 1u);
    EXPECT_EQ(r.finalRegs.reg(4), 3u);
}

TEST(TextAssembler, RunsOnTheTimingCore)
{
    Program p = assembleText(R"(
        li      r1, 64
        li      r2, 1
loop:   mul     r2, r1, r3
        srli    r3, 3, r3
        addi    r1, -1, r1
        bgt     r1, loop
        halt
    )", "core_run");
    SimResult r = simulate(p, SimConfig::seeJrs());
    EXPECT_TRUE(r.verified);
}

TEST(TextAssemblerDeath, UnknownMnemonic)
{
    EXPECT_EXIT(assembleText("frobnicate r1, r2\nhalt\n", "bad"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(TextAssemblerDeath, UndefinedLabel)
{
    EXPECT_EXIT(assembleText("br nowhere\nhalt\n", "bad"),
                ::testing::ExitedWithCode(1), "undefined label");
}

TEST(TextAssemblerDeath, RedefinedLabel)
{
    EXPECT_EXIT(assembleText("x: nop\nx: nop\nhalt\n", "bad"),
                ::testing::ExitedWithCode(1), "redefined");
}

TEST(TextAssemblerDeath, BadRegister)
{
    EXPECT_EXIT(assembleText("add r1, r77, r2\nhalt\n", "bad"),
                ::testing::ExitedWithCode(1), "register");
}

TEST(TextAssemblerDeath, WrongOperandCount)
{
    EXPECT_EXIT(assembleText("add r1, r2\nhalt\n", "bad"),
                ::testing::ExitedWithCode(1), "expects 3 operands");
}

TEST(TextAssemblerDeath, UndefinedSymbolInLi)
{
    EXPECT_EXIT(assembleText("li r1, mystery\nhalt\n", "bad"),
                ::testing::ExitedWithCode(1), "undefined symbol");
}

} // anonymous namespace
} // namespace polypath
