/**
 * @file
 * Exhaustive mnemonic coverage for the textual assembler: every opcode
 * has at least one parseable spelling that encodes to the expected
 * instruction.
 */

#include <gtest/gtest.h>

#include "asmkit/parser.hh"
#include "isa/instr.hh"

namespace polypath
{
namespace
{

struct MnemonicCase
{
    const char *line;
    Opcode op;
};

class MnemonicCoverage : public ::testing::TestWithParam<MnemonicCase>
{};

TEST_P(MnemonicCoverage, ParsesToExpectedOpcode)
{
    const MnemonicCase &c = GetParam();
    std::string src = std::string("target: ") + c.line + "\nhalt\n";
    Program p = assembleText(src, "coverage");
    ASSERT_GE(p.codeSize(), 1u);
    Instr first = decodeInstr(p.code[0]);
    EXPECT_EQ(first.op, c.op) << c.line;
}

INSTANTIATE_TEST_SUITE_P(
    AllMnemonics, MnemonicCoverage,
    ::testing::Values(
        MnemonicCase{"add r1, r2, r3", Opcode::ADD},
        MnemonicCase{"sub r1, r2, r3", Opcode::SUB},
        MnemonicCase{"mul r1, r2, r3", Opcode::MUL},
        MnemonicCase{"and r1, r2, r3", Opcode::AND},
        MnemonicCase{"or r1, r2, r3", Opcode::OR},
        MnemonicCase{"xor r1, r2, r3", Opcode::XOR},
        MnemonicCase{"sll r1, r2, r3", Opcode::SLL},
        MnemonicCase{"srl r1, r2, r3", Opcode::SRL},
        MnemonicCase{"sra r1, r2, r3", Opcode::SRA},
        MnemonicCase{"cmpeq r1, r2, r3", Opcode::CMPEQ},
        MnemonicCase{"cmplt r1, r2, r3", Opcode::CMPLT},
        MnemonicCase{"cmple r1, r2, r3", Opcode::CMPLE},
        MnemonicCase{"cmpult r1, r2, r3", Opcode::CMPULT},
        MnemonicCase{"addi r1, -7, r3", Opcode::ADDI},
        MnemonicCase{"andi r1, 0xffff, r3", Opcode::ANDI},
        MnemonicCase{"ori r1, 255, r3", Opcode::ORI},
        MnemonicCase{"xori r1, 1, r3", Opcode::XORI},
        MnemonicCase{"slli r1, 4, r3", Opcode::SLLI},
        MnemonicCase{"srli r1, 4, r3", Opcode::SRLI},
        MnemonicCase{"srai r1, 4, r3", Opcode::SRAI},
        MnemonicCase{"cmpeqi r1, 9, r3", Opcode::CMPEQI},
        MnemonicCase{"cmplti r1, 9, r3", Opcode::CMPLTI},
        MnemonicCase{"cmplei r1, 9, r3", Opcode::CMPLEI},
        MnemonicCase{"cmpulti r1, 9, r3", Opcode::CMPULTI},
        MnemonicCase{"ldah r1, 1, r3", Opcode::LDAH},
        MnemonicCase{"ldq r1, 8(r2)", Opcode::LDQ},
        MnemonicCase{"stq r1, 8(r2)", Opcode::STQ},
        MnemonicCase{"ldbu r1, -1(r2)", Opcode::LDBU},
        MnemonicCase{"stb r1, 3(r2)", Opcode::STB},
        MnemonicCase{"fld f1, 0(r2)", Opcode::FLD},
        MnemonicCase{"fst f1, 0(r2)", Opcode::FST},
        MnemonicCase{"beq r1, target", Opcode::BEQ},
        MnemonicCase{"bne r1, target", Opcode::BNE},
        MnemonicCase{"blt r1, target", Opcode::BLT},
        MnemonicCase{"bge r1, target", Opcode::BGE},
        MnemonicCase{"ble r1, target", Opcode::BLE},
        MnemonicCase{"bgt r1, target", Opcode::BGT},
        MnemonicCase{"br target", Opcode::BR},
        MnemonicCase{"jsr ra, target", Opcode::JSR},
        MnemonicCase{"ret ra", Opcode::RET},
        MnemonicCase{"ret", Opcode::RET},
        MnemonicCase{"fadd f1, f2, f3", Opcode::FADD},
        MnemonicCase{"fsub f1, f2, f3", Opcode::FSUB},
        MnemonicCase{"fmul f1, f2, f3", Opcode::FMUL},
        MnemonicCase{"fdiv f1, f2, f3", Opcode::FDIV},
        MnemonicCase{"fcmpeq f1, f2, r3", Opcode::FCMPEQ},
        MnemonicCase{"fcmplt f1, f2, r3", Opcode::FCMPLT},
        MnemonicCase{"cvtif r1, f2", Opcode::CVTIF},
        MnemonicCase{"cvtfi f1, r2", Opcode::CVTFI},
        MnemonicCase{"nop", Opcode::NOP},
        MnemonicCase{"li r1, 3", Opcode::ADDI},      // pseudo
        MnemonicCase{"mov r1, r2", Opcode::OR}));    // pseudo

} // anonymous namespace
} // namespace polypath
