/**
 * @file
 * Unit tests for the per-path return-address stack (core/ras.hh):
 * LIFO prediction, the empty-stack 0 sentinel, circular overflow
 * (oldest entry overwritten, depth-bounded occupancy), and the
 * copy-on-path-creation independence the multipath core relies on.
 */

#include <gtest/gtest.h>

#include "core/ras.hh"

namespace polypath
{
namespace
{

TEST(ReturnAddressStack, PushPopIsLifo)
{
    ReturnAddressStack ras;
    ras.push(0x1000);
    ras.push(0x2000);
    ras.push(0x3000);
    EXPECT_EQ(ras.size(), 3u);
    EXPECT_EQ(ras.pop(), 0x3000u);
    EXPECT_EQ(ras.pop(), 0x2000u);
    EXPECT_EQ(ras.pop(), 0x1000u);
    EXPECT_EQ(ras.size(), 0u);
}

TEST(ReturnAddressStack, EmptyPopPredictsZero)
{
    ReturnAddressStack ras;
    EXPECT_EQ(ras.pop(), 0u);   // guaranteed misprediction sentinel
    EXPECT_EQ(ras.size(), 0u);

    // Underflow must not corrupt subsequent pushes.
    ras.push(0x4000);
    EXPECT_EQ(ras.pop(), 0x4000u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(ReturnAddressStack, DefaultDepth)
{
    ReturnAddressStack ras;
    EXPECT_EQ(ras.depth(), 32u);
    ReturnAddressStack small(4);
    EXPECT_EQ(small.depth(), 4u);
}

TEST(ReturnAddressStack, OverflowOverwritesOldest)
{
    ReturnAddressStack ras(4);
    for (Addr addr = 1; addr <= 6; ++addr)
        ras.push(addr * 0x100);

    // Occupancy saturates at the depth; the two oldest entries (0x100,
    // 0x200) were overwritten by the circular wrap.
    EXPECT_EQ(ras.size(), 4u);
    EXPECT_EQ(ras.pop(), 0x600u);
    EXPECT_EQ(ras.pop(), 0x500u);
    EXPECT_EQ(ras.pop(), 0x400u);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.size(), 0u);
    EXPECT_EQ(ras.pop(), 0u);   // the wrapped-out entries are gone
}

TEST(ReturnAddressStack, ReusableAfterOverflowAndDrain)
{
    ReturnAddressStack ras(2);
    for (Addr addr = 1; addr <= 5; ++addr)
        ras.push(addr);
    EXPECT_EQ(ras.pop(), 5u);
    EXPECT_EQ(ras.pop(), 4u);
    EXPECT_EQ(ras.pop(), 0u);

    ras.push(0xabc);
    EXPECT_EQ(ras.size(), 1u);
    EXPECT_EQ(ras.pop(), 0xabcu);
}

TEST(ReturnAddressStack, CopiesAreIndependent)
{
    // Path creation clones the parent RAS; wrong-path call/return
    // activity must never leak into the parent's copy.
    ReturnAddressStack parent;
    parent.push(0x1000);
    parent.push(0x2000);

    ReturnAddressStack child = parent;
    EXPECT_EQ(child.pop(), 0x2000u);
    child.push(0xdead);
    child.push(0xbeef);

    EXPECT_EQ(parent.size(), 2u);
    EXPECT_EQ(parent.pop(), 0x2000u);
    EXPECT_EQ(parent.pop(), 0x1000u);

    EXPECT_EQ(child.pop(), 0xbeefu);
    EXPECT_EQ(child.pop(), 0xdeadu);
    EXPECT_EQ(child.pop(), 0x1000u);
}

} // anonymous namespace
} // namespace polypath
