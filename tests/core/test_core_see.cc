#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "sim/machine.hh"
#include "workloads/workload_util.hh"

namespace polypath
{
namespace
{

/** Unpredictable 50/50 branch in a loop (worst case for monopath). */
Program
hardBranches(unsigned iters)
{
    using namespace wreg;
    Assembler a;
    emitWorkloadInit(a);
    a.li(s0, iters);
    a.li(s1, 0xfeedface);
    a.li(s2, 0);
    Label loop = a.newLabel();
    Label done = a.newLabel();
    Label other = a.newLabel();
    Label join = a.newLabel();
    a.bind(loop);
    a.beq(s0, done);
    a.addi(s0, -1, s0);
    emitXorshift(a, s1, t0);
    a.andi(s1, 1, t1);
    a.beq(t1, other);
    a.addi(s2, 3, s2);
    a.mul(s2, s1, t2);
    a.xor_(s2, t2, s2);
    a.br(join);
    a.bind(other);
    a.addi(s2, 5, s2);
    a.srli(s2, 1, s2);
    a.bind(join);
    a.br(loop);
    a.bind(done);
    a.halt();
    return a.assemble("hard");
}

TEST(CoreSee, EagerExecutionDivergesAndVerifies)
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.confidence = ConfidenceKind::AlwaysLow;     // diverge everywhere
    SimResult r = simulate(hardBranches(400), cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.divergences, 100u);
    EXPECT_GT(r.stats.avgLivePaths(), 1.2);
}

TEST(CoreSee, OracleConfidenceBeatsMonopathOnHardBranches)
{
    Program p = hardBranches(600);
    InterpResult golden = runGolden(p);
    SimResult mono = simulate(p, SimConfig::monopath(), golden);
    SimResult see = simulate(p, SimConfig::seeOracleConfidence(), golden);
    EXPECT_TRUE(see.verified);
    // Half the branches mispredict; eager execution of both sides must
    // be clearly faster.
    EXPECT_GT(see.ipc(), mono.ipc() * 1.10);
    EXPECT_GT(see.stats.divergences, 0u);
}

TEST(CoreSee, SeeOrderedBetweenMonopathAndOracle)
{
    // The paper's Fig. 8 ordering: monopath <= SEE(oracle conf) <=
    // oracle prediction.
    Program p = hardBranches(600);
    InterpResult golden = runGolden(p);
    double mono = simulate(p, SimConfig::monopath(), golden).ipc();
    double see = simulate(p, SimConfig::seeOracleConfidence(),
                          golden).ipc();
    double oracle = simulate(p, SimConfig::oraclePrediction(),
                             golden).ipc();
    EXPECT_LE(mono, see * 1.02);
    EXPECT_LE(see, oracle * 1.02);
}

TEST(CoreSee, DualPathLimitsThreePaths)
{
    SimConfig cfg = SimConfig::dualPathOracleConfidence();
    Program p = hardBranches(500);
    InterpResult golden = runGolden(p);
    PolyPathCore core(cfg, p, golden);
    while (!core.halted()) {
        core.tick();
        // One divergence point => at most 3 simultaneous paths (§5.2).
        ASSERT_LE(core.numLivePaths(), 3u);
    }
    EXPECT_GT(core.stats().divergences, 0u);
}

TEST(CoreSee, DualPathBetweenMonopathAndFullSee)
{
    Program p = hardBranches(800);
    InterpResult golden = runGolden(p);
    double mono = simulate(p, SimConfig::monopath(), golden).ipc();
    double dual =
        simulate(p, SimConfig::dualPathOracleConfidence(), golden).ipc();
    double full = simulate(p, SimConfig::seeOracleConfidence(),
                           golden).ipc();
    EXPECT_GE(dual, mono * 0.98);
    EXPECT_LE(dual, full * 1.05);
}

TEST(CoreSee, DivergedBranchPaysNoRecoveryPenalty)
{
    // With oracle confidence every mispredicted *correct-path* branch
    // diverges (unless path resources were exhausted at fetch time), so
    // architected-path recoveries are bounded by the suppressed
    // divergences. Wrong-path branches are unknowable to any oracle and
    // may still recover; those do not touch the architected path.
    SimResult r =
        simulate(hardBranches(400), SimConfig::seeOracleConfidence());
    EXPECT_TRUE(r.verified);
    EXPECT_LE(r.stats.recoveriesCorrectPath,
              r.stats.divergencesSuppressed);
    EXPECT_GT(r.stats.divergences, 100u);
    // Recoveries overall stay rare relative to divergences.
    EXPECT_LT(r.stats.recoveries, r.stats.divergences / 10);
}

TEST(CoreSee, SuppressedDivergenceFallsBackToPrediction)
{
    // maxDivergences = 0 with a low-confidence estimator behaves like
    // monopath but counts the suppressions.
    SimConfig cfg = SimConfig::seeJrs();
    cfg.confidence = ConfidenceKind::AlwaysLow;
    cfg.maxDivergences = 0;
    SimResult r = simulate(hardBranches(300), cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.divergences, 0u);
    EXPECT_GT(r.stats.divergencesSuppressed, 200u);
}

TEST(CoreSee, JrsSeeVerifiesOnHardBranches)
{
    SimResult r = simulate(hardBranches(500), SimConfig::seeJrs());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.divergences, 0u);
    EXPECT_GT(r.stats.pvn(), 0.2);      // 50/50 branch: decent PVN
}

TEST(CoreSee, NestedDivergenceStressVerifies)
{
    // Two unpredictable branches per iteration with dependent state:
    // exercises divergence-under-divergence and out-of-order
    // resolution.
    using namespace wreg;
    Assembler a;
    emitWorkloadInit(a);
    a.li(s0, 300);
    a.li(s1, 0xabcdef12);
    a.li(s2, 0);
    Label loop = a.newLabel();
    Label done = a.newLabel();
    Label l1 = a.newLabel();
    Label l2 = a.newLabel();
    a.bind(loop);
    a.beq(s0, done);
    a.addi(s0, -1, s0);
    emitXorshift(a, s1, t0);
    a.andi(s1, 1, t1);
    a.beq(t1, l1);
    a.addi(s2, 1, s2);
    a.bind(l1);
    a.andi(s1, 2, t2);
    a.beq(t2, l2);
    a.addi(s2, 2, s2);
    a.bind(l2);
    a.br(loop);
    a.bind(done);
    a.halt();

    SimConfig cfg = SimConfig::seeJrs();
    cfg.confidence = ConfidenceKind::AlwaysLow;
    SimResult r = simulate(a.assemble("nested"), cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.divergences, 200u);
}

TEST(CoreSee, PathHistogramSumsToCycles)
{
    SimResult r =
        simulate(hardBranches(300), SimConfig::seeOracleConfidence());
    u64 total = 0;
    for (u64 count : r.stats.livePathsHistogram)
        total += count;
    EXPECT_EQ(total, r.stats.cycles);
    EXPECT_DOUBLE_EQ(r.stats.fractionCyclesWithPathsAtMost(64), 1.0);
}

TEST(CoreSee, StoresOnWrongPathsNeverReachMemory)
{
    // Both sides of each divergence store to distinct addresses; the
    // final-memory verification (inside simulate) proves wrong-path
    // stores were contained by the CTX-tagged store queue.
    using namespace wreg;
    Assembler a;
    Addr buf = a.dZero(16);
    emitWorkloadInit(a);
    a.li(s0, 200);
    a.li(s1, 0x777);
    a.li(s3, buf);
    Label loop = a.newLabel();
    Label done = a.newLabel();
    Label other = a.newLabel();
    Label join = a.newLabel();
    a.bind(loop);
    a.beq(s0, done);
    a.addi(s0, -1, s0);
    emitXorshift(a, s1, t0);
    a.andi(s1, 1, t1);
    a.beq(t1, other);
    a.stq(s0, 0, s3);           // taken side writes slot 0
    a.br(join);
    a.bind(other);
    a.stq(s0, 8, s3);           // fall-through side writes slot 1
    a.bind(join);
    a.ldq(t2, 0, s3);           // reads must see only committed stores
    a.add(s2, t2, s2);
    a.br(loop);
    a.bind(done);
    a.halt();

    SimConfig cfg = SimConfig::seeJrs();
    cfg.confidence = ConfidenceKind::AlwaysLow;
    SimResult r = simulate(a.assemble("wrongstores"), cfg);
    EXPECT_TRUE(r.verified);
}

} // anonymous namespace
} // namespace polypath
