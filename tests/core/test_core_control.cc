#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "sim/machine.hh"
#include "workloads/workload_util.hh"

namespace polypath
{
namespace
{

/**
 * Program with data-dependent (xorshift-driven) branches: essentially
 * unpredictable, so monopath must recover repeatedly and still verify.
 */
Program
randomBranches(unsigned iters)
{
    using namespace wreg;
    Assembler a;
    emitWorkloadInit(a);
    a.li(s0, iters);
    a.li(s1, 0x1234567);            // xorshift state
    a.li(s2, 0);                    // checksum
    Label loop = a.newLabel();
    Label done = a.newLabel();
    Label skip = a.newLabel();
    a.bind(loop);
    a.beq(s0, done);
    a.addi(s0, -1, s0);
    emitXorshift(a, s1, t0);
    a.andi(s1, 1, t1);
    a.beq(t1, skip);                // ~50/50 unpredictable
    a.addi(s2, 3, s2);
    a.bind(skip);
    a.addi(s2, 1, s2);
    a.br(loop);
    a.bind(done);
    a.halt();
    return a.assemble("randbr");
}

TEST(CoreControl, MispredictionRecoveryVerifies)
{
    SimResult r = simulate(randomBranches(400), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    // The 50/50 branch must actually mispredict a lot.
    EXPECT_GT(r.stats.mispredictRate(), 0.10);
    EXPECT_GT(r.stats.recoveries, 30u);
    // Recovery implies wasted fetch: well above 1x.
    EXPECT_GT(r.stats.fetchToCommitRatio(), 1.05);
}

TEST(CoreControl, MispredictionPenaltyScalesWithPipelineDepth)
{
    Program p = randomBranches(600);
    InterpResult golden = runGolden(p);

    SimConfig shallow = SimConfig::monopath();
    shallow.frontendStages = 3;     // 6-stage pipe
    SimConfig deep = SimConfig::monopath();
    deep.frontendStages = 7;        // 10-stage pipe

    SimResult r_shallow = simulate(p, shallow, golden);
    SimResult r_deep = simulate(p, deep, golden);
    EXPECT_GT(r_deep.stats.cycles, r_shallow.stats.cycles);
}

TEST(CoreControl, CallReturnPredictedByRas)
{
    using namespace wreg;
    Assembler a;
    emitWorkloadInit(a);
    Label fn = a.newLabel();
    a.li(s0, 200);
    Label loop = a.here();
    a.jsr(ra, fn);
    a.addi(s0, -1, s0);
    a.bgt(s0, loop);
    a.halt();
    a.bind(fn);
    a.addi(s1, 1, s1);
    a.ret(ra);

    SimResult r = simulate(a.assemble("calls"), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.committedReturns, 200u);
    EXPECT_EQ(r.stats.mispredictedReturns, 0u);
}

TEST(CoreControl, DeepRecursionWithinRasDepthIsPerfect)
{
    using namespace wreg;
    Assembler a;
    emitWorkloadInit(a);
    Label fib = a.newLabel();
    a.li(a0, 12);
    a.jsr(ra, fib);
    a.halt();

    // Naive fibonacci: heavy call/return traffic, depth <= 12.
    a.bind(fib);
    Label base = a.newLabel();
    a.cmplei(a0, 1, t0);
    a.bne(t0, base);
    emitPrologue(a);
    a.addi(sp, -16, sp);
    a.stq(a0, 0, sp);
    a.addi(a0, -1, a0);
    a.jsr(ra, fib);
    a.stq(v0, 8, sp);
    a.ldq(a0, 0, sp);
    a.addi(a0, -2, a0);
    a.jsr(ra, fib);
    a.ldq(t0, 8, sp);
    a.add(v0, t0, v0);
    a.addi(sp, 16, sp);
    emitEpilogue(a);
    a.bind(base);
    a.or_(a0, zero, v0);
    a.ret(ra);

    SimResult r = simulate(a.assemble("fib"), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.committedReturns, 100u);
    EXPECT_EQ(r.stats.mispredictedReturns, 0u);
}

TEST(CoreControl, RasOverflowRecoversCorrectly)
{
    // Recursion depth 40 exceeds the default 32-entry RAS: the machine
    // must mispredict some returns yet still verify.
    using namespace wreg;
    Assembler a;
    emitWorkloadInit(a);
    Label fn = a.newLabel();
    a.li(a0, 40);
    a.jsr(ra, fn);
    a.halt();
    a.bind(fn);
    Label leaf = a.newLabel();
    a.ble(a0, leaf);
    emitPrologue(a);
    a.addi(a0, -1, a0);
    a.jsr(ra, fn);
    a.addi(v0, 1, v0);
    emitEpilogue(a);
    a.bind(leaf);
    a.li(v0, 0);
    a.ret(ra);

    SimResult r = simulate(a.assemble("deep"), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.mispredictedReturns, 0u);
}

TEST(CoreControl, OraclePredictionEliminatesMispredicts)
{
    Program p = randomBranches(400);
    InterpResult golden = runGolden(p);
    SimResult r = simulate(p, SimConfig::oraclePrediction(), golden);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.mispredictedBranches, 0u);
    EXPECT_EQ(r.stats.recoveries, 0u);

    SimResult mono = simulate(p, SimConfig::monopath(), golden);
    EXPECT_GT(r.ipc(), mono.ipc());
}

TEST(CoreControl, HistoryPositionLimitThrottlesButVerifies)
{
    // With only 2 history positions, at most 2 branches can be in
    // flight; the program must still run correctly.
    SimConfig cfg = SimConfig::monopath();
    cfg.tagWidth = 2;
    SimResult r = simulate(randomBranches(200), cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.fetchStallNoCtx, 0u);
}

TEST(CoreControl, TrainAtResolutionAlsoVerifies)
{
    SimConfig cfg = SimConfig::monopath();
    cfg.trainAtResolution = true;
    SimResult r = simulate(randomBranches(300), cfg);
    EXPECT_TRUE(r.verified);
}

TEST(CoreControl, MispredictionPenaltyMatchesArchitectedLatency)
{
    // A chain of always-mispredicting branches, each preceded by enough
    // independent filler that fetch is never the bottleneck. The
    // per-branch cost relative to an oracle machine must be on the
    // order of the architected misprediction latency (front-end refill
    // + resolve + redirect), not wildly above or below it.
    using namespace wreg;
    Assembler a;
    emitWorkloadInit(a);
    a.li(s0, 200);
    a.li(s1, 0x9f91102ull);
    Label loop = a.newLabel();
    Label done = a.newLabel();
    Label target = a.newLabel();
    a.bind(loop);
    a.beq(s0, done);
    a.addi(s0, -1, s0);
    emitXorshift(a, s1, t0);
    a.andi(s1, 1, t1);
    a.beq(t1, target);          // ~50/50: mispredicts about half the time
    a.bind(target);
    a.br(loop);
    a.bind(done);
    a.halt();
    Program p = a.assemble("penalty");
    InterpResult golden = runGolden(p);

    SimConfig mono = SimConfig::monopath();
    SimResult base = simulate(p, mono, golden);
    SimResult oracle = simulate(p, SimConfig::oraclePrediction(), golden);
    ASSERT_GT(base.stats.mispredictedBranches, 50u);

    double penalty =
        static_cast<double>(base.stats.cycles - oracle.stats.cycles) /
        static_cast<double>(base.stats.mispredictedBranches);
    // 5-stage front end: recovery costs roughly fetch-to-resolve (~7
    // cycles) plus redirect; allow generous slack but catch order-of-
    // magnitude timing regressions.
    EXPECT_GE(penalty, 4.0);
    EXPECT_LE(penalty, 16.0);

    // A deeper front end must raise the per-mispredict penalty.
    SimConfig deep = SimConfig::monopath();
    deep.frontendStages = 7;
    SimResult deep_run = simulate(p, deep, golden);
    double deep_penalty =
        static_cast<double>(deep_run.stats.cycles -
                            oracle.stats.cycles) /
        static_cast<double>(deep_run.stats.mispredictedBranches);
    EXPECT_GT(deep_penalty, penalty);
}

TEST(CoreControl, NonSpeculativeHistoryVerifies)
{
    SimConfig cfg = SimConfig::monopath();
    cfg.speculativeHistoryUpdate = false;
    SimResult r = simulate(randomBranches(300), cfg);
    EXPECT_TRUE(r.verified);
}

} // anonymous namespace
} // namespace polypath
