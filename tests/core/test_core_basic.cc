#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "sim/machine.hh"

namespace polypath
{
namespace
{

/** Straight-line program: r3 = 42, stored to memory. */
Program
straightLine()
{
    Assembler a;
    Addr slot = a.d64(0);
    a.li(1, 10);
    a.li(2, 32);
    a.add(1, 2, 3);
    a.li(4, slot);
    a.stq(3, 0, 4);
    a.halt();
    return a.assemble("straight");
}

TEST(CoreBasic, StraightLineVerifies)
{
    SimResult r = simulate(straightLine(), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_TRUE(r.stats.halted);
    EXPECT_EQ(r.stats.committedInstrs, 6u);
    EXPECT_GT(r.stats.cycles, 0u);
}

TEST(CoreBasic, IndependentOpsReachSuperscalarIpc)
{
    // 256 independent adds: IPC should approach the 8-wide limit and
    // certainly exceed 3.
    Assembler a;
    for (int i = 0; i < 256; ++i)
        a.addi(31, i % 100, static_cast<u8>(1 + (i % 8)));
    a.halt();
    SimResult r = simulate(a.assemble("ilp"), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.ipc(), 3.0);
}

TEST(CoreBasic, DependentChainLimitedToOneIpc)
{
    // A 300-deep dependent add chain: one instruction per cycle at best.
    Assembler a;
    a.li(1, 0);
    for (int i = 0; i < 300; ++i)
        a.addi(1, 1, 1);
    a.halt();
    SimResult r = simulate(a.assemble("chain"), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_LT(r.ipc(), 1.3);
    EXPECT_GE(r.stats.cycles, 300u);
}

TEST(CoreBasic, MulLatencyIsObservable)
{
    // Dependent multiply chain: ~8 cycles per MUL.
    Assembler a;
    a.li(1, 3);
    for (int i = 0; i < 50; ++i)
        a.mul(1, 1, 1);
    a.halt();
    SimResult r = simulate(a.assemble("mulchain"), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.cycles, 50u * 7);
}

TEST(CoreBasic, StoreToLoadForwarding)
{
    // A store immediately followed by an overlapping load must forward
    // from the store queue and still verify.
    Assembler a;
    Addr slot = a.d64(0);
    a.li(1, slot);
    a.li(2, 0x1234);
    a.stq(2, 0, 1);
    a.ldq(3, 0, 1);
    a.addi(3, 1, 4);
    a.stq(4, 8, 1);
    a.halt();
    SimResult r = simulate(a.assemble("fwd"), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_GE(r.stats.loadsForwarded, 1u);
}

TEST(CoreBasic, LoopIpcAndFetchRatio)
{
    Assembler a;
    a.li(1, 500);
    a.li(2, 0);
    Label loop = a.here();
    a.add(2, 1, 2);
    a.addi(1, -1, 1);
    a.bgt(1, loop);
    a.halt();
    SimResult r = simulate(a.assemble("loop"), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.committedBranches, 500u);
    // A predictable loop: very few mispredictions after warmup.
    EXPECT_LT(r.stats.mispredictRate(), 0.05);
    // Monopath fetches at least as much as it commits.
    EXPECT_GE(r.stats.fetchedInstrs, r.stats.committedInstrs);
}

TEST(CoreBasic, MonopathNeverDiverges)
{
    Assembler a;
    a.li(1, 100);
    Label loop = a.here();
    a.addi(1, -1, 1);
    a.bgt(1, loop);
    a.halt();
    SimResult r = simulate(a.assemble("mono"), SimConfig::monopath());
    EXPECT_EQ(r.stats.divergences, 0u);
    // Exactly one live path at all times.
    EXPECT_DOUBLE_EQ(r.stats.avgLivePaths(), 1.0);
}

TEST(CoreBasic, FpLatenciesRespected)
{
    Assembler a;
    Addr c = a.d64(std::bit_cast<u64>(1.000001));
    a.li(1, c);
    a.fld(1, 0, 1);
    for (int i = 0; i < 20; ++i)
        a.fmul(1, 1, 1);            // dependent chain, 4 cycles each
    a.fst(1, 8, 1);
    a.halt();
    SimResult r = simulate(a.assemble("fp"), SimConfig::monopath());
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.cycles, 20u * 3);
}

TEST(CoreBasic, WindowOccupancyBounded)
{
    SimConfig cfg = SimConfig::monopath();
    cfg.windowSize = 16;
    Assembler a;
    a.li(1, 200);
    Label loop = a.here();
    a.addi(1, -1, 1);
    a.bgt(1, loop);
    a.halt();
    InterpResult golden = runGolden(a.assemble("small_window"));
    PolyPathCore core(cfg, a.assemble("small_window"), golden);
    while (!core.halted()) {
        core.tick();
        ASSERT_LE(core.windowOccupancy(), 16u);
    }
}

TEST(CoreBasic, StatsStringContainsIpc)
{
    SimResult r = simulate(straightLine(), SimConfig::monopath());
    EXPECT_NE(r.stats.toString().find("IPC"), std::string::npos);
}

} // anonymous namespace
} // namespace polypath
