/**
 * @file
 * Tests for the pipeline trace subsystem: per-instruction event
 * ordering, kill/commit exclusivity, and divergence/recovery events.
 */

#include <map>

#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "sim/machine.hh"
#include "workloads/workload_util.hh"

namespace polypath
{
namespace
{

struct TracedRun
{
    VectorTraceSink sink;
    SimStats stats;
};

TracedRun
runTraced(const Program &program, const SimConfig &cfg)
{
    TracedRun run;
    InterpResult golden = runGolden(program);
    PolyPathCore core(cfg, program, golden);
    core.setTraceSink(&run.sink);
    while (!core.halted())
        core.tick();
    run.stats = core.stats();
    return run;
}

Program
branchyProgram()
{
    using namespace wreg;
    Assembler a;
    emitWorkloadInit(a);
    a.li(s0, 50);
    a.li(s1, 0xbeef);
    Label loop = a.newLabel();
    Label skip = a.newLabel();
    Label done = a.newLabel();
    a.bind(loop);
    a.beq(s0, done);
    a.addi(s0, -1, s0);
    emitXorshift(a, s1, t0);
    a.andi(s1, 1, t1);
    a.beq(t1, skip);
    a.addi(s2, 3, s2);
    a.bind(skip);
    a.br(loop);
    a.bind(done);
    a.halt();
    return a.assemble("traced");
}

TEST(Trace, EventNamesAreStable)
{
    EXPECT_STREQ(pipeEventName(PipeEvent::Fetch), "fetch");
    EXPECT_STREQ(pipeEventName(PipeEvent::Commit), "commit");
    EXPECT_STREQ(pipeEventName(PipeEvent::Diverge), "diverge");
    EXPECT_STREQ(pipeEventName(PipeEvent::Recover), "recover");
}

TEST(Trace, EveryCommittedInstructionHasOrderedLifecycle)
{
    TracedRun run = runTraced(branchyProgram(), SimConfig::monopath());

    // Build per-seq event sequences.
    std::map<InstSeq, std::vector<PipeEvent>> by_seq;
    std::map<InstSeq, std::vector<Cycle>> cycles;
    for (const TraceRecord &rec : run.sink.records) {
        by_seq[rec.seq].push_back(rec.event);
        cycles[rec.seq].push_back(rec.cycle);
    }

    unsigned committed = 0, killed = 0;
    for (const auto &[seq, events] : by_seq) {
        bool was_committed = false, was_killed = false;
        for (PipeEvent e : events) {
            was_committed |= (e == PipeEvent::Commit);
            was_killed |= (e == PipeEvent::Kill);
        }
        // An instruction either commits or is killed, never both.
        EXPECT_FALSE(was_committed && was_killed) << "seq " << seq;
        committed += was_committed;
        killed += was_killed;
        if (was_committed) {
            // Lifecycle order: fetch -> rename -> issue -> writeback ->
            // commit (each present exactly once).
            std::vector<PipeEvent> want = {
                PipeEvent::Fetch, PipeEvent::Rename, PipeEvent::Issue,
                PipeEvent::Writeback, PipeEvent::Commit};
            std::vector<PipeEvent> got;
            for (PipeEvent e : events) {
                if (e != PipeEvent::Diverge && e != PipeEvent::Recover)
                    got.push_back(e);
            }
            EXPECT_EQ(got, want) << "seq " << seq;
            // Cycles never decrease along the lifecycle.
            for (size_t i = 1; i < cycles[seq].size(); ++i)
                EXPECT_LE(cycles[seq][i - 1], cycles[seq][i]);
        }
    }
    EXPECT_EQ(committed, run.stats.committedInstrs);
    EXPECT_EQ(killed,
              run.stats.killedInstrs + run.stats.killedFrontend);
}

TEST(Trace, DivergenceAndKillEventsAppearUnderEagerExecution)
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.confidence = ConfidenceKind::AlwaysLow;
    TracedRun run = runTraced(branchyProgram(), cfg);

    unsigned diverges = 0, kills = 0, recovers = 0;
    for (const TraceRecord &rec : run.sink.records) {
        diverges += rec.event == PipeEvent::Diverge;
        kills += rec.event == PipeEvent::Kill;
        recovers += rec.event == PipeEvent::Recover;
    }
    EXPECT_EQ(diverges, run.stats.divergences);
    EXPECT_GT(diverges, 10u);
    EXPECT_GT(kills, 10u);
    EXPECT_EQ(recovers,
              run.stats.recoveries + run.stats.retRecoveries);
}

TEST(Trace, MonopathMispredictionsEmitRecoverEvents)
{
    TracedRun run = runTraced(branchyProgram(), SimConfig::monopath());
    unsigned recovers = 0;
    for (const TraceRecord &rec : run.sink.records)
        recovers += rec.event == PipeEvent::Recover;
    EXPECT_EQ(recovers,
              run.stats.recoveries + run.stats.retRecoveries);
    EXPECT_GT(recovers, 5u);
}

TEST(Trace, DetailContainsDisassemblyAndTag)
{
    TracedRun run = runTraced(branchyProgram(), SimConfig::monopath());
    ASSERT_FALSE(run.sink.records.empty());
    bool found_halt = false;
    for (const TraceRecord &rec : run.sink.records) {
        if (rec.event == PipeEvent::Commit &&
            rec.detail.find("halt") != std::string::npos) {
            found_halt = true;
        }
        if (rec.event == PipeEvent::Fetch) {
            EXPECT_NE(rec.detail.find('['), std::string::npos);
        }
    }
    EXPECT_TRUE(found_halt);
}

TEST(Trace, NoSinkMeansNoOverheadOrCrash)
{
    // Just exercises the null-sink path end to end.
    SimResult r = simulate(branchyProgram(), SimConfig::seeJrs());
    EXPECT_TRUE(r.verified);
}

} // anonymous namespace
} // namespace polypath
