/**
 * @file
 * Unit tests for the DynInst pool and the intrusive DynInstPtr handle:
 * slot recycling, absence of stale state across incarnations, reference
 * counting, and the heap fallback used by pool-less tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/inst_pool.hh"

namespace polypath
{
namespace
{

TEST(DynInstPool, AcquireRecyclesReleasedSlot)
{
    DynInstPool pool(4);
    DynInst *raw;
    {
        DynInstPtr inst = pool.acquire();
        raw = inst.get();
        EXPECT_EQ(pool.live(), 1u);
    }
    // Last reference dropped: the slot is back on the freelist.
    EXPECT_EQ(pool.live(), 0u);
    DynInstPtr again = pool.acquire();
    EXPECT_EQ(again.get(), raw);
    EXPECT_EQ(pool.totalAcquired(), 2u);
    EXPECT_EQ(pool.totalRecycled(), 1u);
}

TEST(DynInstPool, RecycledSlotHasNoStaleState)
{
    DynInstPool pool(4);
    {
        DynInstPtr inst = pool.acquire();
        inst->seq = 42;
        inst->killed = true;
        inst->issued = true;
        inst->clearsSeen = 7;
        inst->histPos = 3;
        inst->branch = std::make_unique<BranchState>();
        inst->tag = CtxTag{}.child(5, true);
    }
    DynInstPtr fresh = pool.acquire();
    EXPECT_EQ(fresh->seq, 0u);
    EXPECT_FALSE(fresh->killed);
    EXPECT_FALSE(fresh->issued);
    EXPECT_EQ(fresh->clearsSeen, 0u);
    EXPECT_EQ(fresh->histPos, noHistPos);
    EXPECT_EQ(fresh->branch, nullptr);
    EXPECT_FALSE(fresh->tag.valid(5));
}

TEST(DynInstPool, RecycleAfterKillMidPipeline)
{
    // A killed instruction stays alive while lazy structures (ready
    // queues, completion ring) still hold references, and only recycles
    // when the last one drains — the pattern the core relies on.
    DynInstPool pool(4);
    DynInstPtr inst = pool.acquire();
    std::vector<DynInstPtr> ready_queue{inst, inst};

    inst->killed = true;
    inst.reset();
    EXPECT_EQ(pool.live(), 1u);     // queue copies keep it alive

    ready_queue.clear();
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.totalRecycled(), 0u);
    DynInstPtr next = pool.acquire();
    EXPECT_FALSE(next->killed);
    EXPECT_EQ(pool.totalRecycled(), 1u);
}

TEST(DynInstPool, GrowsByChunksAndKeepsDistinctSlots)
{
    DynInstPool pool(2);
    std::vector<DynInstPtr> live;
    for (int i = 0; i < 5; ++i) {
        live.push_back(pool.acquire());
        live.back()->seq = static_cast<InstSeq>(i + 1);
    }
    EXPECT_EQ(pool.numChunks(), 3u);
    EXPECT_GE(pool.capacity(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(live[i]->seq, static_cast<InstSeq>(i + 1));
        for (int j = i + 1; j < 5; ++j)
            EXPECT_NE(live[i].get(), live[j].get());
    }
    live.clear();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(DynInstPool, DiesIfDestroyedWithLiveInstructions)
{
    EXPECT_DEATH(
        {
            DynInstPtr leak;
            DynInstPool pool(4);
            leak = pool.acquire();
            // pool destructs here with `leak` still holding a slot
        },
        "live instructions");
}

TEST(DynInstPtr, ReferenceCountingSemantics)
{
    DynInstPtr a = makeHeapInst();
    EXPECT_EQ(a.use_count(), 1);
    DynInstPtr b = a;
    EXPECT_EQ(a.use_count(), 2);
    EXPECT_EQ(a, b);

    DynInstPtr c = std::move(b);
    EXPECT_EQ(a.use_count(), 2);
    EXPECT_EQ(b, nullptr);

    c.reset();
    EXPECT_EQ(a.use_count(), 1);

    // Self-assignment keeps the object alive.
    a = a;
    EXPECT_EQ(a.use_count(), 1);
    EXPECT_TRUE(static_cast<bool>(a));

    a = DynInstPtr();
    EXPECT_EQ(a, nullptr);
}

TEST(DynInstPtr, HeapFallbackWorksWithoutPool)
{
    // makeHeapInst() instructions have no pool and delete themselves.
    DynInstPtr inst = makeHeapInst();
    EXPECT_EQ(inst->pool, nullptr);
    inst->seq = 9;
    DynInstPtr alias = inst;
    inst.reset();
    EXPECT_EQ(alias->seq, 9u);
}

} // anonymous namespace
} // namespace polypath
