/**
 * @file
 * White-box unit tests for the core's structural components: the
 * instruction window's snoop operations, the FU pool, the return
 * address stack, configuration presets and derived statistics.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/fu_pool.hh"
#include "core/iwindow.hh"
#include "core/ras.hh"
#include "core/stats.hh"

namespace polypath
{
namespace
{

DynInstPtr
makeInst(InstSeq seq, const CtxTag &tag)
{
    DynInstPtr inst = makeHeapInst();
    inst->seq = seq;
    inst->tag = tag;
    return inst;
}

TEST(InstructionWindow, InsertAndCommitInOrder)
{
    InstructionWindow window(4);
    CtxTag root;
    window.insert(makeInst(1, root));
    window.insert(makeInst(2, root));
    EXPECT_EQ(window.size(), 2u);
    EXPECT_EQ(window.head()->seq, 1u);
    window.popHead();
    EXPECT_EQ(window.head()->seq, 2u);
}

TEST(InstructionWindow, FullDetection)
{
    InstructionWindow window(2);
    CtxTag root;
    window.insert(makeInst(1, root));
    EXPECT_FALSE(window.full());
    window.insert(makeInst(2, root));
    EXPECT_TRUE(window.full());
}

TEST(InstructionWindow, ResolutionBusKillsWrongSideOnly)
{
    InstructionWindow window(8);
    CtxTag parent;
    CtxTag taken = parent.child(3, true);
    CtxTag not_taken = parent.child(3, false);
    window.insert(makeInst(1, parent));
    window.insert(makeInst(2, taken));
    window.insert(makeInst(3, not_taken));
    window.insert(makeInst(4, taken.child(5, true)));

    std::vector<InstSeq> killed;
    unsigned n = window.killWrongPath(3, /*actual_taken=*/false,
                                      [&](const DynInstPtr &inst) {
                                          killed.push_back(inst->seq);
                                          inst->killed = true;
                                      });
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(killed, (std::vector<InstSeq>{2, 4}));
    EXPECT_EQ(window.size(), 2u);
    EXPECT_EQ(window.head()->seq, 1u);
}

TEST(InstructionWindow, CommitBusClearsPositionEverywhere)
{
    InstructionWindow window(8);
    CtxTag parent;
    CtxTag child = parent.child(2, true);
    DynInstPtr inst = makeInst(1, child);
    window.insert(inst);
    window.commitPosition(2);
    EXPECT_FALSE(inst->tag.valid(2));
    // After invalidation the entry can no longer be killed through
    // position 2 (it has been recycled).
    unsigned n = window.killWrongPath(2, false,
                                      [](const DynInstPtr &) {});
    EXPECT_EQ(n, 0u);
}

TEST(InstructionWindowDeath, OutOfOrderInsertPanics)
{
    InstructionWindow window(4);
    CtxTag root;
    window.insert(makeInst(5, root));
    EXPECT_DEATH(window.insert(makeInst(4, root)), "out of fetch order");
}

TEST(InstructionWindowDeath, OverflowPanics)
{
    InstructionWindow window(1);
    CtxTag root;
    window.insert(makeInst(1, root));
    EXPECT_DEATH(window.insert(makeInst(2, root)), "overflow");
}

TEST(FuPool, TracksPerClassSlots)
{
    SimConfig cfg;
    cfg.numIntAlu0 = 2;
    cfg.numMemPorts = 1;
    FuPool pool(cfg);
    EXPECT_EQ(pool.numUnits(ExecClass::IntAlu0), 2u);
    EXPECT_TRUE(pool.available(ExecClass::IntAlu0));
    pool.take(ExecClass::IntAlu0);
    pool.take(ExecClass::IntAlu0);
    EXPECT_FALSE(pool.available(ExecClass::IntAlu0));
    // Other classes are unaffected.
    EXPECT_TRUE(pool.available(ExecClass::Mem));
    pool.take(ExecClass::Mem);
    EXPECT_FALSE(pool.available(ExecClass::Mem));
    // New cycle frees everything.
    pool.newCycle();
    EXPECT_TRUE(pool.available(ExecClass::IntAlu0));
    EXPECT_TRUE(pool.available(ExecClass::Mem));
}

TEST(FuPoolDeath, OverIssuePanics)
{
    SimConfig cfg;
    cfg.numFpMul = 1;
    FuPool pool(cfg);
    pool.take(ExecClass::FpMul);
    EXPECT_DEATH(pool.take(ExecClass::FpMul), "over-issued");
}

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.size(), 3u);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.size(), 0u);
}

TEST(Ras, UnderflowPredictsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.size(), 0u);
}

TEST(Ras, OverflowDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);        // overwrites 1
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    // The overwritten entry is gone; deeper pops mispredict.
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, CopySemanticsArePerPath)
{
    ReturnAddressStack parent(8);
    parent.push(0x100);
    ReturnAddressStack child = parent;  // path divergence clone
    child.push(0x200);
    EXPECT_EQ(parent.size(), 1u);
    EXPECT_EQ(child.size(), 2u);
    EXPECT_EQ(parent.pop(), 0x100u);
    EXPECT_EQ(child.pop(), 0x200u);
}

TEST(Config, BaselineMatchesPaperSection42)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.fetchWidth, 8u);
    EXPECT_EQ(cfg.windowSize, 256u);
    EXPECT_EQ(cfg.totalPipelineStages(), 8u);
    EXPECT_EQ(cfg.numIntAlu0, 4u);
    EXPECT_EQ(cfg.numIntAlu1, 4u);
    EXPECT_EQ(cfg.numFpAdd, 4u);
    EXPECT_EQ(cfg.numFpMul, 4u);
    EXPECT_EQ(cfg.numMemPorts, 4u);
    EXPECT_EQ(cfg.historyBits, 14u);    // 16k counters
    EXPECT_EQ(cfg.jrsCounterBits, 1u);
}

TEST(Config, PresetsDisagreeOnlyWhereIntended)
{
    SimConfig mono = SimConfig::monopath();
    SimConfig see = SimConfig::seeJrs();
    EXPECT_EQ(mono.windowSize, see.windowSize);
    EXPECT_EQ(mono.predictor, see.predictor);
    EXPECT_NE(static_cast<int>(mono.confidence),
              static_cast<int>(see.confidence));
    EXPECT_EQ(mono.maxDivergences, 0);
    EXPECT_EQ(see.maxDivergences, -1);
    EXPECT_EQ(SimConfig::dualPathJrs().maxDivergences, 1);
}

TEST(Config, DerivedValues)
{
    SimConfig cfg;
    cfg.tagWidth = 8;
    cfg.maxActivePaths = 0;
    EXPECT_EQ(cfg.effectiveMaxPaths(), 9u);
    cfg.maxActivePaths = 3;
    EXPECT_EQ(cfg.effectiveMaxPaths(), 3u);
    cfg.numPhysRegs = 0;
    cfg.windowSize = 100;
    EXPECT_EQ(cfg.effectivePhysRegs(), 1u + 64 + 100 + 16);
}

TEST(Stats, DerivedMetrics)
{
    SimStats stats;
    stats.cycles = 100;
    stats.committedInstrs = 250;
    stats.fetchedInstrs = 400;
    stats.committedBranches = 50;
    stats.mispredictedBranches = 5;
    stats.lowConfidenceBranches = 10;
    stats.lowConfidenceMispredicts = 4;
    EXPECT_DOUBLE_EQ(stats.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(stats.mispredictRate(), 0.1);
    EXPECT_DOUBLE_EQ(stats.pvn(), 0.4);
    EXPECT_DOUBLE_EQ(stats.fetchToCommitRatio(), 1.6);
    EXPECT_EQ(stats.uselessInstrs(), 150u);
}

TEST(Stats, ZeroDenominatorsAreSafe)
{
    SimStats stats;
    EXPECT_DOUBLE_EQ(stats.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(stats.mispredictRate(), 0.0);
    EXPECT_DOUBLE_EQ(stats.pvn(), 0.0);
    EXPECT_DOUBLE_EQ(stats.avgLivePaths(), 0.0);
    EXPECT_DOUBLE_EQ(stats.fractionCyclesWithPathsAtMost(3), 0.0);
    EXPECT_DOUBLE_EQ(stats.fuUtilization(ExecClass::Mem, 0), 0.0);
}

TEST(Stats, PathHistogramFractions)
{
    SimStats stats;
    stats.cycles = 10;
    stats.livePathsHistogram = {0, 4, 3, 2, 1};
    EXPECT_DOUBLE_EQ(stats.fractionCyclesWithPathsAtMost(1), 0.4);
    EXPECT_DOUBLE_EQ(stats.fractionCyclesWithPathsAtMost(3), 0.9);
    EXPECT_DOUBLE_EQ(stats.fractionCyclesWithPathsAtMost(10), 1.0);
}

} // anonymous namespace
} // namespace polypath
