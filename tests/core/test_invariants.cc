/**
 * @file
 * Runs the core's deep structural self-check (resource conservation,
 * path-tree consistency) every cycle across stressful configurations.
 * Any leak or double-allocation of physical registers or CTX history
 * positions, any related pair of live leaf paths, or any orphaned
 * store-queue entry panics.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "workloads/workloads.hh"

namespace polypath
{
namespace
{

void
runChecked(const Program &program, SimConfig cfg)
{
    cfg.selfCheckInterval = 1;      // every cycle
    SimResult r = simulate(program, cfg);
    EXPECT_TRUE(r.verified);
}

Program
smallWorkload(const char *name)
{
    WorkloadParams params;
    params.scale = 0.02;
    return buildWorkload(name, params);
}

TEST(Invariants, MonopathEveryCycle)
{
    runChecked(smallWorkload("gcc"), SimConfig::monopath());
}

TEST(Invariants, SeeJrsEveryCycle)
{
    runChecked(smallWorkload("go"), SimConfig::seeJrs());
}

TEST(Invariants, EagerAlwaysEveryCycle)
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.confidence = ConfidenceKind::AlwaysLow;
    runChecked(smallWorkload("compress"), cfg);
}

TEST(Invariants, RecursionWithReturnsEveryCycle)
{
    runChecked(smallWorkload("xlisp"), SimConfig::seeJrs());
}

TEST(Invariants, TinyResourcesEveryCycle)
{
    SimConfig cfg = SimConfig::seeJrs();
    cfg.windowSize = 16;
    cfg.tagWidth = 3;
    cfg.numPhysRegs = 1 + 64 + 16 + 2;
    cfg.numIntAlu0 = 1;
    cfg.numIntAlu1 = 1;
    cfg.numFpAdd = 1;
    cfg.numFpMul = 1;
    cfg.numMemPorts = 1;
    runChecked(smallWorkload("perl"), cfg);
}

TEST(Invariants, DualPathEveryCycle)
{
    runChecked(smallWorkload("m88ksim"), SimConfig::dualPathJrs());
}

} // anonymous namespace
} // namespace polypath
