/**
 * @file
 * Property tests for the lazy wrong-path squash machinery: the
 * InstructionWindow with deferred compaction plus the CommitClearLog
 * must be observationally identical to the seed's eager implementation
 * (rebuild-on-kill, sweep-on-commit) under arbitrary interleavings of
 * resolution and commit broadcasts.
 *
 * The reference model keeps every tag eagerly up to date and kills by
 * rebuilding; the unit under test marks in place, consults the clear
 * log for staleness, and compacts opportunistically. After every step
 * the live contents, kill sets and head/commit order must match.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/iwindow.hh"
#include "ctx/clear_log.hh"

namespace polypath
{
namespace
{

DynInstPtr
makeInst(InstSeq seq, const CtxTag &tag, u32 clears_seen)
{
    DynInstPtr inst = makeHeapInst();
    inst->seq = seq;
    inst->tag = tag;
    inst->clearsSeen = clears_seen;
    return inst;
}

/** Eager reference model of the window's snoop semantics (the seed
 *  implementation restated). */
struct EagerModel
{
    struct Entry
    {
        InstSeq seq;
        CtxTag tag;
    };
    std::vector<Entry> entries;     //!< live, fetch order

    void insert(InstSeq seq, const CtxTag &tag)
    {
        entries.push_back({seq, tag});
    }

    std::vector<InstSeq> killWrongPath(unsigned pos, bool actual)
    {
        std::vector<InstSeq> killed;
        std::vector<Entry> kept;
        for (const Entry &e : entries) {
            if (e.tag.onWrongSide(pos, actual))
                killed.push_back(e.seq);
            else
                kept.push_back(e);
        }
        entries.swap(kept);
        return killed;
    }

    void commitPosition(unsigned pos)
    {
        for (Entry &e : entries)
            e.tag.clearPosition(pos);
    }

    std::vector<InstSeq> liveSeqs() const
    {
        std::vector<InstSeq> seqs;
        for (const Entry &e : entries)
            seqs.push_back(e.seq);
        return seqs;
    }
};

std::vector<InstSeq>
liveSeqs(const InstructionWindow &window)
{
    std::vector<InstSeq> seqs;
    window.forEachLive([&](const DynInstPtr &inst) {
        seqs.push_back(inst->seq);
    });
    return seqs;
}

// ------------------------------------------------------------------
// Deterministic Fig. 6 snoop scenarios under position reuse
// ------------------------------------------------------------------

TEST(LazySquash, StaleBitFromRecycledPositionDoesNotKill)
{
    // Branch B1 takes position 3; inst1 is fetched on B1's taken side.
    // B1 commits (vacating 3); a younger branch B2 reuses position 3
    // and inst2 is fetched on B2's not-taken side. When B2 resolves
    // taken, inst2 must die — and inst1, whose *stale* bit at 3 says
    // "taken side", must survive: its bit belongs to the dead B1.
    CommitClearLog log;
    InstructionWindow window(8, &log);

    CtxTag root;
    DynInstPtr inst1 = makeInst(1, root.child(3, true), log.watermark());
    window.insert(inst1);

    log.record(3);          // B1 commits; inst1 has not absorbed it

    DynInstPtr inst2 = makeInst(2, root.child(3, false), log.watermark());
    window.insert(inst2);

    std::vector<InstSeq> killed;
    unsigned n = window.killWrongPath(3, true,
                                      [&](const DynInstPtr &inst) {
                                          killed.push_back(inst->seq);
                                      });
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(killed, (std::vector<InstSeq>{2}));
    EXPECT_EQ(liveSeqs(window), (std::vector<InstSeq>{1}));

    // The eager sweep on the same history agrees.
    EagerModel model;
    model.insert(1, root.child(3, true));
    model.commitPosition(3);
    model.insert(2, root.child(3, false));
    EXPECT_EQ(model.killWrongPath(3, true), killed);
    EXPECT_EQ(model.liveSeqs(), liveSeqs(window));
}

TEST(LazySquash, SquashedEntriesDrainAtHeadAndCompact)
{
    CommitClearLog log;
    InstructionWindow window(8, &log);
    CtxTag root;
    CtxTag taken = root.child(1, true);
    CtxTag not_taken = root.child(1, false);

    window.insert(makeInst(1, taken, 0));
    window.insert(makeInst(2, taken, 0));
    window.insert(makeInst(3, not_taken, 0));
    ASSERT_EQ(window.size(), 3u);

    unsigned n = window.killWrongPath(1, false, [](const DynInstPtr &) {});
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(window.size(), 1u);
    EXPECT_FALSE(window.full());
    // The two squashed entries sit in front of the survivor; head()
    // must skip straight past them.
    EXPECT_EQ(window.head()->seq, 3u);
    window.popHead();
    EXPECT_TRUE(window.empty());
}

TEST(LazySquash, CapacityCountsLiveEntriesOnly)
{
    CommitClearLog log;
    InstructionWindow window(2, &log);
    CtxTag root;
    CtxTag wrong = root.child(0, false);

    window.insert(makeInst(1, wrong, 0));
    window.insert(makeInst(2, wrong, 0));
    EXPECT_TRUE(window.full());
    window.killWrongPath(0, true, [](const DynInstPtr &) {});
    // Both entries are squashed but possibly not yet compacted; the
    // window must report empty and accept new inserts regardless.
    EXPECT_TRUE(window.empty());
    EXPECT_FALSE(window.full());
    window.insert(makeInst(3, root.child(0, true), 0));
    EXPECT_EQ(window.size(), 1u);
    EXPECT_EQ(window.head()->seq, 3u);
}

// ------------------------------------------------------------------
// Randomized equivalence against the eager model
// ------------------------------------------------------------------

TEST(LazySquash, RandomInterleavingsMatchEagerModel)
{
    constexpr unsigned tagWidth = 8;

    for (u32 seed = 1; seed <= 8; ++seed) {
        std::mt19937 rng(seed);
        auto chance = [&](int pct) {
            return static_cast<int>(rng() % 100) < pct;
        };

        CommitClearLog log;
        InstructionWindow window(64, &log);
        EagerModel model;

        // Simplified branch-tree driver: a set of live leaf tags (kept
        // eagerly current, as the core keeps its path contexts), a
        // wrap-around position allocator, and per-position bookkeeping
        // of whether the owning branch is still outstanding.
        std::vector<CtxTag> leafTags{CtxTag{}};
        std::vector<u8> freePos;
        for (unsigned p = 0; p < tagWidth; ++p)
            freePos.push_back(static_cast<u8>(p));
        std::vector<u8> outstanding;    //!< allocated, not yet vacated
        InstSeq nextSeq = 1;

        for (int step = 0; step < 600; ++step) {
            int op = static_cast<int>(rng() % 100);

            if (op < 45 && !window.full()) {
                // Fetch: an instruction from a random leaf.
                size_t leaf = rng() % leafTags.size();
                InstSeq seq = nextSeq++;
                window.insert(
                    makeInst(seq, leafTags[leaf], log.watermark()));
                model.insert(seq, leafTags[leaf]);
            } else if (op < 65 && !freePos.empty() &&
                       leafTags.size() < 6) {
                // Branch: a leaf takes a position; with 50% odds it
                // diverges (both directions live on), otherwise it
                // follows one predicted direction.
                size_t leaf = rng() % leafTags.size();
                u8 pos = freePos.front();
                freePos.erase(freePos.begin());
                outstanding.push_back(pos);
                CtxTag parent = leafTags[leaf];
                if (chance(50)) {
                    leafTags[leaf] = parent.child(pos, true);
                    leafTags.push_back(parent.child(pos, false));
                } else {
                    leafTags[leaf] = parent.child(pos, chance(50));
                }
            } else if (op < 85 && !outstanding.empty()) {
                // Resolve: a random outstanding branch announces its
                // direction on the resolution bus. Pick the direction
                // that leaves at least one leaf alive when possible
                // (the core always has a live path: the correct one).
                size_t pick = rng() % outstanding.size();
                u8 pos = outstanding[pick];
                bool actual = chance(50);
                auto survivors = [&](bool dir) {
                    size_t n = 0;
                    for (const CtxTag &tag : leafTags)
                        if (!tag.onWrongSide(pos, dir))
                            ++n;
                    return n;
                };
                if (survivors(actual) == 0)
                    actual = !actual;

                std::vector<InstSeq> killed;
                window.killWrongPath(pos, actual,
                                     [&](const DynInstPtr &inst) {
                                         killed.push_back(inst->seq);
                                     });
                EXPECT_EQ(killed, model.killWrongPath(pos, actual));

                std::erase_if(leafTags, [&](const CtxTag &tag) {
                    return tag.onWrongSide(pos, actual);
                });
                ASSERT_FALSE(leafTags.empty());

                // The branch is done with its position: vacate it on
                // the commit bus (kills recycle immediately; commits
                // broadcast) — either way every carrier must forget it.
                outstanding.erase(outstanding.begin() + pick);
                log.record(pos);
                model.commitPosition(pos);
                for (CtxTag &tag : leafTags)
                    tag.clearPosition(pos);
                freePos.push_back(pos);
            } else if (!window.empty()) {
                // Commit: pop the oldest live instruction.
                ASSERT_FALSE(model.entries.empty());
                EXPECT_EQ(window.head()->seq, model.entries.front().seq);
                window.popHead();
                model.entries.erase(model.entries.begin());
            }

            ASSERT_EQ(liveSeqs(window), model.liveSeqs())
                << "divergence at seed " << seed << " step " << step;
            ASSERT_EQ(window.size(), model.entries.size());
        }
    }
}

} // anonymous namespace
} // namespace polypath
