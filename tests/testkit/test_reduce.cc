/**
 * @file
 * Unit tests for the structural reducer (testkit/reduce.hh): a seeded
 * artificial-bug failure must shrink to a handful of static
 * instructions with the divergence kind preserved, every intermediate
 * candidate being a valid terminating plan by construction; and a plan
 * that never failed must be returned untouched.
 */

#include <gtest/gtest.h>

#include "arch/interpreter.hh"
#include "core/config.hh"
#include "testkit/oracle.hh"
#include "testkit/progen.hh"
#include "testkit/reduce.hh"

namespace polypath
{
namespace
{

using namespace testkit;

/** First mixed-preset seed whose plan stores to the output region
 *  (which is what the fault-injection knob corrupts). */
GenPlan
failingPlan()
{
    for (u64 seed = 0; seed < 64; ++seed) {
        GenPlan plan = buildPlan(presetMixed(), seed);
        if (plan.usesKind(GenOpKind::OutputStore))
            return plan;
    }
    ADD_FAILURE() << "no mixed-preset seed below 64 uses OutputStore";
    return GenPlan{};
}

TEST(Reduce, ShrinksArtificialBugToMinimalRepro)
{
    ReduceOptions opts;
    opts.cfg = SimConfig::seeJrs();
    opts.cfg.bugCorruptStoreAbove = outputBase;

    GenPlan plan = failingPlan();
    ReduceResult result = reduceFailure(plan, opts);

    ASSERT_TRUE(result.failedInitially);
    EXPECT_EQ(result.divergence.kind, DivergenceKind::FinalMem);
    EXPECT_LT(result.staticAfter, result.staticBefore);
    EXPECT_LE(result.staticAfter, 25u);     // the acceptance bound
    EXPECT_GT(result.oracleRuns, 1u);

    // The reduced program must still be terminating and still exhibit
    // the exact divergence kind under the same configuration.
    Program reduced = emitPlan(result.plan);
    EXPECT_EQ(reduced.codeSize(), result.staticAfter);
    InterpResult golden = interpret(reduced, result.plan.maxDynamicInstrs());
    EXPECT_TRUE(golden.halted);

    OracleResult check = runOracle(reduced, opts.cfg, golden);
    ASSERT_FALSE(check.ok());
    EXPECT_EQ(check.divergence.kind, DivergenceKind::FinalMem);

    // ...and must be clean without the fault injection (the bug is in
    // the injected config, not the program).
    SimConfig clean = SimConfig::seeJrs();
    EXPECT_TRUE(runOracle(reduced, clean, golden).ok());
}

TEST(Reduce, NonFailingPlanIsReturnedUntouched)
{
    ReduceOptions opts;
    opts.cfg = SimConfig::seeJrs();     // no fault injection: no failure

    GenPlan plan = buildPlan(presetLegacy(), 5);
    ReduceResult result = reduceFailure(plan, opts);

    EXPECT_FALSE(result.failedInitially);
    EXPECT_EQ(result.staticAfter, result.staticBefore);
    EXPECT_EQ(result.oracleRuns, 1u);
    EXPECT_FALSE(result.divergence.diverged());
    EXPECT_EQ(emitPlan(plan).code, result.program.code);
}

} // anonymous namespace
} // namespace polypath
