/**
 * @file
 * Unit tests for the random program generator (testkit/progen.hh):
 * determinism (one seed, one byte-identical program), the structural
 * termination bound, preset coverage, and the plan/emission split the
 * reducer depends on.
 */

#include <gtest/gtest.h>

#include "arch/interpreter.hh"
#include "testkit/progen.hh"

namespace polypath
{
namespace
{

using namespace testkit;

TEST(Progen, SameSeedSameBytes)
{
    for (const std::string &name : presetNames()) {
        ProgenOptions opts = presetByName(name);
        for (u64 seed : {u64(0), u64(7), u64(0xf00d)}) {
            Program a = generate(opts, seed);
            Program b = generate(opts, seed);
            EXPECT_EQ(a.code, b.code) << name << " seed " << seed;
            EXPECT_EQ(a.dataSegments, b.dataSegments)
                << name << " seed " << seed;
            EXPECT_EQ(a.entry, b.entry) << name << " seed " << seed;
            EXPECT_EQ(a.codeBase, b.codeBase) << name << " seed " << seed;
        }
    }
}

TEST(Progen, DifferentSeedsDiffer)
{
    // Not a hard guarantee for any single pair, but across the body ops
    // and trip counts two seeds colliding byte-for-byte would indicate
    // the seed is not reaching the Prng.
    Program a = generate(presetLegacy(), 1);
    Program b = generate(presetLegacy(), 2);
    EXPECT_NE(a.code, b.code);
}

TEST(Progen, PlanEmissionIsDeterministic)
{
    GenPlan plan = buildPlan(presetMixed(), 42);
    Program a = emitPlan(plan);
    Program b = emitPlan(plan);
    EXPECT_EQ(a.code, b.code);
    EXPECT_EQ(a.dataSegments, b.dataSegments);

    // generate() is exactly buildPlan + emitPlan.
    Program c = generate(presetMixed(), 42);
    EXPECT_EQ(a.code, c.code);
}

TEST(Progen, GoldenRunHaltsWithinStaticBound)
{
    for (const std::string &name : presetNames()) {
        ProgenOptions opts = presetByName(name);
        for (u64 seed = 0; seed < 5; ++seed) {
            GenPlan plan = buildPlan(opts, seed);
            u64 bound = plan.maxDynamicInstrs();
            ASSERT_GT(bound, 0u) << name << " seed " << seed;

            Program program = emitPlan(plan);
            Interpreter interp(program);
            u64 steps = 0;
            while (steps < bound && interp.step())
                ++steps;
            EXPECT_TRUE(interp.halted())
                << name << " seed " << seed << ": not halted after "
                << steps << " steps (bound " << bound << ")";
        }
    }
}

TEST(Progen, PresetRegistryIsConsistent)
{
    const std::vector<std::string> &names = presetNames();
    ASSERT_GE(names.size(), 6u);
    for (const std::string &name : names)
        EXPECT_EQ(presetByName(name).name, name);
    EXPECT_EQ(presetLegacy().name, "legacy");
    EXPECT_EQ(presetMixed().name, "mixed");
}

/** Union of op kinds drawn by @p opts across a few seeds. */
bool
presetEverUses(const ProgenOptions &opts, GenOpKind kind, unsigned seeds)
{
    for (u64 seed = 0; seed < seeds; ++seed) {
        if (buildPlan(opts, seed).usesKind(kind))
            return true;
    }
    return false;
}

TEST(Progen, PresetsCoverTheirAdvertisedKinds)
{
    EXPECT_TRUE(presetEverUses(presetBranchy(), GenOpKind::FwdBranch, 4));
    EXPECT_TRUE(presetEverUses(presetMemory(), GenOpKind::Load, 4));
    EXPECT_TRUE(presetEverUses(presetMemory(), GenOpKind::Store, 4));
    EXPECT_TRUE(presetEverUses(presetCalls(), GenOpKind::Call, 4));
    EXPECT_TRUE(presetEverUses(presetFp(), GenOpKind::Fp, 4));
    // The mixed preset enables everything, including the kinds no other
    // preset draws.
    EXPECT_TRUE(presetEverUses(presetMixed(), GenOpKind::OutputStore, 16));
    EXPECT_TRUE(presetEverUses(presetMixed(), GenOpKind::InnerLoop, 16));

    // The legacy preset must not draw the post-legacy kinds: its whole
    // point is bit-compatibility with the original fuzz shape.
    EXPECT_FALSE(presetEverUses(presetLegacy(), GenOpKind::Fp, 8));
    EXPECT_FALSE(presetEverUses(presetLegacy(), GenOpKind::OutputStore, 8));
    EXPECT_FALSE(presetEverUses(presetLegacy(), GenOpKind::InnerLoop, 8));
}

TEST(Progen, TripCountsRespectOptions)
{
    ProgenOptions opts = presetLegacy();
    for (u64 seed = 0; seed < 16; ++seed) {
        GenPlan plan = buildPlan(opts, seed);
        EXPECT_GE(plan.outerTrips, opts.outerTripsMin);
        EXPECT_LE(plan.outerTrips, opts.outerTripsMax);
        EXPECT_GE(plan.body.size(), opts.bodyMinOps);
        EXPECT_LE(plan.body.size(), opts.bodyMaxOps);
    }
}

} // anonymous namespace
} // namespace polypath
