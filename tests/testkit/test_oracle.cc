/**
 * @file
 * Unit tests for the lockstep differential oracle (testkit/oracle.hh).
 *
 * The stream checker is exercised against synthetic commit streams —
 * deliberately corrupted PC sequences — because a real timing core
 * cannot be made to emit a wrong correct-path commit without tripping
 * its own internal trace-grounding panic first. The end-to-end
 * runOracle() path is exercised with the one corruption the core *can*
 * survive: the SimConfig::bugCorruptStoreAbove fault-injection knob,
 * which breaks committed stores into the generator's write-only output
 * region and must surface as a final-memory divergence.
 */

#include <gtest/gtest.h>

#include <string>

#include "arch/interpreter.hh"
#include "asmkit/assembler.hh"
#include "core/config.hh"
#include "core/trace.hh"
#include "testkit/oracle.hh"
#include "testkit/progen.hh"

namespace polypath
{
namespace
{

using namespace testkit;

/** A tiny fixed program plus its golden commit-order PC stream. */
struct TinyProgram
{
    Program program;
    std::vector<Addr> pcs;      //!< every executed PC, in order
    InterpResult golden;
};

TinyProgram
tinyProgram()
{
    Assembler a;
    a.li(1, 3);                 // t0 = 3
    Label loop = a.newLabel();
    Label done = a.newLabel();
    a.bind(loop);
    a.beq(1, done);
    a.addi(1, -1, 1);
    a.addi(2, 5, 2);
    a.br(loop);
    a.bind(done);
    a.halt();

    TinyProgram tiny;
    tiny.program = a.assemble("tiny");

    Interpreter interp(tiny.program);
    while (!interp.halted()) {
        tiny.pcs.push_back(interp.state().pc);
        interp.step();
    }
    tiny.golden = interpret(tiny.program);
    return tiny;
}

TEST(LockstepChecker, CleanStreamAndStateMatch)
{
    TinyProgram tiny = tinyProgram();
    LockstepChecker checker(tiny.program);
    for (Addr pc : tiny.pcs)
        ASSERT_TRUE(checker.onCommit(pc)) << "at pc " << std::hex << pc;
    EXPECT_EQ(checker.committed(), tiny.pcs.size());

    checker.finish(tiny.golden.finalRegs, *tiny.golden.finalMem, 8);
    EXPECT_FALSE(checker.divergence().diverged());
    EXPECT_EQ(checker.divergence().report(), "");
}

TEST(LockstepChecker, WrongPcIsReportedAsFirstDivergence)
{
    TinyProgram tiny = tinyProgram();
    ASSERT_GE(tiny.pcs.size(), 4u);

    LockstepChecker checker(tiny.program);
    EXPECT_TRUE(checker.onCommit(tiny.pcs[0]));
    EXPECT_TRUE(checker.onCommit(tiny.pcs[1]));
    // The "core" now commits the wrong instruction.
    Addr wrong = tiny.pcs[3];
    ASSERT_NE(wrong, tiny.pcs[2]);
    EXPECT_FALSE(checker.onCommit(wrong));

    const Divergence &div = checker.divergence();
    EXPECT_EQ(div.kind, DivergenceKind::CommitPc);
    EXPECT_EQ(div.commitIndex, 2u);
    EXPECT_EQ(div.corePc, wrong);
    EXPECT_EQ(div.goldenPc, tiny.pcs[2]);
    EXPECT_FALSE(div.coreDisasm.empty());
    EXPECT_FALSE(div.goldenDisasm.empty());

    std::string report = div.report();
    EXPECT_NE(report.find("commit-pc"), std::string::npos);
    EXPECT_NE(report.find(div.coreDisasm), std::string::npos);
    EXPECT_NE(report.find(div.goldenDisasm), std::string::npos);

    // Further commits after a divergence are ignored, not re-checked.
    EXPECT_FALSE(checker.onCommit(tiny.pcs[2]));
    EXPECT_EQ(div.commitIndex, 2u);
}

TEST(LockstepChecker, ExtraCommitAfterGoldenHalt)
{
    TinyProgram tiny = tinyProgram();
    LockstepChecker checker(tiny.program);
    for (Addr pc : tiny.pcs)
        ASSERT_TRUE(checker.onCommit(pc));
    EXPECT_FALSE(checker.onCommit(tiny.pcs[0]));
    EXPECT_EQ(checker.divergence().kind, DivergenceKind::ExtraCommit);
    EXPECT_EQ(checker.divergence().commitIndex, tiny.pcs.size());
}

TEST(LockstepChecker, MissingCommitsAtFinish)
{
    TinyProgram tiny = tinyProgram();
    LockstepChecker checker(tiny.program);
    for (size_t i = 0; i + 1 < tiny.pcs.size(); ++i)
        ASSERT_TRUE(checker.onCommit(tiny.pcs[i]));

    checker.finish(tiny.golden.finalRegs, *tiny.golden.finalMem, 8);
    EXPECT_EQ(checker.divergence().kind, DivergenceKind::MissingCommits);
    EXPECT_EQ(checker.divergence().commitIndex, tiny.pcs.size() - 1);
}

TEST(LockstepChecker, FinalRegisterMismatch)
{
    TinyProgram tiny = tinyProgram();
    LockstepChecker checker(tiny.program);
    for (Addr pc : tiny.pcs)
        ASSERT_TRUE(checker.onCommit(pc));

    ArchState regs = tiny.golden.finalRegs;
    regs.setReg(2, regs.reg(2) + 1);
    checker.finish(regs, *tiny.golden.finalMem, 8);

    const Divergence &div = checker.divergence();
    EXPECT_EQ(div.kind, DivergenceKind::FinalRegs);
    ASSERT_EQ(div.regDiffs.size(), 1u);
    EXPECT_EQ(div.regDiffs[0].reg, 2);
    EXPECT_EQ(div.regDiffs[0].core, div.regDiffs[0].golden + 1);
    EXPECT_NE(div.report().find("final-registers"), std::string::npos);
}

TEST(LockstepChecker, FinalMemoryMismatch)
{
    TinyProgram tiny = tinyProgram();
    LockstepChecker checker(tiny.program);
    for (Addr pc : tiny.pcs)
        ASSERT_TRUE(checker.onCommit(pc));

    // SparseMemory is move-only; a second reference run produces an
    // independent, identical memory image to perturb.
    InterpResult other = interpret(tiny.program);
    other.finalMem->write(0x100008, 0xff, 1);
    checker.finish(tiny.golden.finalRegs, *other.finalMem, 8);

    const Divergence &div = checker.divergence();
    EXPECT_EQ(div.kind, DivergenceKind::FinalMem);
    ASSERT_EQ(div.memDiffs.size(), 1u);
    EXPECT_EQ(div.memDiffs[0].addr, 0x100008u);
    EXPECT_EQ(div.memDiffs[0].mine, 0xffu);
    EXPECT_NE(div.report().find("final-memory"), std::string::npos);
}

TEST(DiffRegs, CapsReportedEntries)
{
    ArchState a, b;
    b.setReg(1, 10);
    b.setReg(2, 20);
    b.setReg(3, 30);
    EXPECT_EQ(diffRegs(a, b).size(), 3u);
    EXPECT_EQ(diffRegs(a, b, 2).size(), 2u);
    EXPECT_EQ(diffRegs(a, a).size(), 0u);
}

TEST(CommitRecorder, FiltersToCommitEvents)
{
    CommitRecorder buffered;
    TraceRecord fetch{1, PipeEvent::Fetch, 1, 0x1000, ""};
    TraceRecord commit{2, PipeEvent::Commit, 1, 0x1000, ""};
    TraceRecord kill{2, PipeEvent::Kill, 2, 0x1004, ""};
    buffered.record(fetch);
    buffered.record(commit);
    buffered.record(kill);
    EXPECT_EQ(buffered.numCommitted, 1u);
    ASSERT_EQ(buffered.committed.size(), 1u);
    EXPECT_EQ(buffered.committed[0].pc, 0x1000u);

    std::vector<Addr> seen;
    CommitRecorder streaming(
        [&](const TraceRecord &rec) { seen.push_back(rec.pc); });
    streaming.record(commit);
    streaming.record(fetch);
    streaming.record(commit);
    EXPECT_EQ(streaming.numCommitted, 2u);
    EXPECT_TRUE(streaming.committed.empty());   // callback mode: no buffer
    EXPECT_EQ(seen, (std::vector<Addr>{0x1000, 0x1000}));
}

TEST(RunOracle, CleanRunVerifies)
{
    Program program = generate(presetLegacy(), 0xf00d);
    InterpResult golden = interpret(program, 100'000'000);
    ASSERT_TRUE(golden.halted);

    OracleResult result = runOracle(program, SimConfig::seeJrs(), golden);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.goldenInstructions, golden.instructions);
    EXPECT_EQ(result.stats.committedInstrs, golden.instructions);

    // The convenience overload runs the reference itself.
    OracleResult again = runOracle(program, SimConfig::monopath());
    EXPECT_TRUE(again.ok());
    EXPECT_EQ(again.goldenInstructions, golden.instructions);
}

/** First mixed-preset seed whose plan stores to the output region. */
u64
seedWithOutputStore()
{
    for (u64 seed = 0; seed < 64; ++seed) {
        if (buildPlan(presetMixed(), seed)
                .usesKind(GenOpKind::OutputStore))
            return seed;
    }
    ADD_FAILURE() << "no mixed-preset seed below 64 uses OutputStore";
    return 0;
}

TEST(RunOracle, BrokenStoreKnobSurfacesAsFinalMemoryDivergence)
{
    u64 seed = seedWithOutputStore();
    Program program = generate(presetMixed(), seed);
    InterpResult golden = interpret(program, 100'000'000);
    ASSERT_TRUE(golden.halted);

    // Sanity: the same seed is clean without the fault injection.
    SimConfig cfg = SimConfig::seeJrs();
    ASSERT_TRUE(runOracle(program, cfg, golden).ok());

    cfg.bugCorruptStoreAbove = outputBase;
    OracleResult result = runOracle(program, cfg, golden);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.divergence.kind, DivergenceKind::FinalMem);
    ASSERT_FALSE(result.divergence.memDiffs.empty());
    for (const SparseMemory::ByteDiff &diff : result.divergence.memDiffs)
        EXPECT_GE(diff.addr, outputBase);
    EXPECT_NE(result.divergence.report().find("final-memory"),
              std::string::npos);
}

} // anonymous namespace
} // namespace polypath
