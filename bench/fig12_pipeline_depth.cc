/**
 * @file
 * Regenerates Figure 12: harmonic-mean IPC vs total pipeline depth
 * (6..10 stages, varied through the in-order front end) for the four
 * machine categories, plus the §5.3.4 "extended SEE pipeline"
 * comparison.
 *
 * Paper reference: SEE's absolute gain grows with depth (0.49 IPC at 6
 * stages to 0.56 at 10); an 8/9/10-stage SEE pipeline still beats the
 * 8-stage monopath by 14%/11%/7%.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"
#include "figures.hh"

using namespace polypath;

namespace polypath::benchfig
{

void
runFig12()
{
    WorkloadSet suite = loadWorkloads(benchScale());

    const unsigned depths[] = {6, 7, 8, 9, 10};
    struct Category
    {
        const char *name;
        SimConfig base;
    };
    const Category categories[] = {
        {"gshare/monopath", SimConfig::monopath()},
        {"gshare/JRS", SimConfig::seeJrs()},
        {"gshare/oracle", SimConfig::seeOracleConfidence()},
        {"oracle", SimConfig::oraclePrediction()},
    };

    std::printf("Figure 12: IPC vs total pipeline depth "
                "(h-mean over all benchmarks)\n\n");
    std::printf("%-18s", "category");
    for (unsigned d : depths)
        std::printf(" %9u", d);
    std::printf("\n");

    std::vector<double> mono_ipc, see_ipc;
    for (const Category &cat : categories) {
        std::vector<SimConfig> configs;
        for (unsigned d : depths) {
            SimConfig cfg = cat.base;
            cfg.frontendStages = d - 3;
            configs.push_back(cfg);
        }
        auto matrix = runMatrix(suite, configs);
        std::printf("%-18s", cat.name);
        for (size_t i = 0; i < configs.size(); ++i) {
            double ipc = meanIpc(matrix[i]);
            std::printf(" %9.3f", ipc);
            if (std::string(cat.name) == "gshare/monopath")
                mono_ipc.push_back(ipc);
            if (std::string(cat.name) == "gshare/JRS")
                see_ipc.push_back(ipc);
        }
        std::printf("\n");
    }

    std::printf("\nabsolute SEE gain per depth "
                "(paper: 0.49 IPC at 6 stages -> 0.56 at 10):\n");
    for (size_t i = 0; i < mono_ipc.size(); ++i)
        std::printf("  %2u stages: %+.3f IPC (%+5.1f%%)\n", depths[i],
                    see_ipc[i] - mono_ipc[i],
                    percentChange(mono_ipc[i], see_ipc[i]));

    // §5.3.4: SEE with an extended pipeline vs the 8-stage monopath.
    double mono8 = mono_ipc[2];
    std::printf("\nSEE with extended pipeline vs 8-stage monopath "
                "(paper: +14%%/+11%%/+7%%):\n");
    for (size_t i = 2; i < 5; ++i)
        std::printf("  %2u-stage SEE: %+6.1f%%\n", depths[i],
                    percentChange(mono8, see_ipc[i]));
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runFig12();
    return 0;
}
#endif
