/**
 * @file
 * Regenerates the §5.2 path-utilisation analysis: how many paths SEE
 * actually keeps alive, and how much of its improvement a dual-path
 * machine (one divergence point, 3 paths) captures.
 *
 * Paper reference: SEE averages 2.9 active paths, uses <= 3 paths ~75%
 * of the time; oracle dual-path gets 58% and real dual-path 66% of the
 * corresponding SEE improvement.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"
#include "figures.hh"

using namespace polypath;

namespace polypath::benchfig
{

void
runSec52()
{
    WorkloadSet suite = loadWorkloads(benchScale());
    std::vector<SimConfig> configs = {
        SimConfig::monopath(),
        SimConfig::seeJrs(),
        SimConfig::seeOracleConfidence(),
        SimConfig::dualPathJrs(),
        SimConfig::dualPathOracleConfidence(),
    };
    auto matrix = runMatrix(suite, configs);

    std::printf("Section 5.2: path utilisation of SEE (gshare/JRS)\n\n");
    std::printf("%-10s %12s %16s %16s\n", "benchmark", "avg paths",
                "cycles <=3 paths", "cycles ==1 path");
    std::vector<double> avg_paths, le3;
    for (size_t w = 0; w < suite.size(); ++w) {
        const SimStats &s = matrix[1][w].stats;
        avg_paths.push_back(s.avgLivePaths());
        le3.push_back(100 * s.fractionCyclesWithPathsAtMost(3));
        std::printf("%-10s %12.2f %15.1f%% %15.1f%%\n",
                    suite.infos[w].name.c_str(), s.avgLivePaths(),
                    100 * s.fractionCyclesWithPathsAtMost(3),
                    100 * s.fractionCyclesWithPathsAtMost(1));
    }
    std::printf("%-10s %12.2f %15.1f%%\n", "average",
                arithmeticMean(avg_paths), arithmeticMean(le3));
    std::printf("(paper: average 2.9 active paths, <=3 paths ~75%% of "
                "cycles)\n\n");

    double mono = meanIpc(matrix[0]);
    double see_jrs = meanIpc(matrix[1]);
    double see_orc = meanIpc(matrix[2]);
    double dual_jrs = meanIpc(matrix[3]);
    double dual_orc = meanIpc(matrix[4]);

    std::printf("mean IPC: monopath %.3f | SEE(JRS) %.3f | "
                "dual(JRS) %.3f | SEE(orc) %.3f | dual(orc) %.3f\n",
                mono, see_jrs, dual_jrs, see_orc, dual_orc);
    auto fraction = [&](double dual, double see) {
        return see > mono ? 100.0 * (dual - mono) / (see - mono) : 0.0;
    };
    std::printf("\ndual-path fraction of SEE improvement:\n");
    std::printf("  JRS confidence:    %5.1f%%   (paper: 66%%)\n",
                fraction(dual_jrs, see_jrs));
    std::printf("  oracle confidence: %5.1f%%   (paper: 58%%)\n",
                fraction(dual_orc, see_orc));
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runSec52();
    return 0;
}
#endif
