/**
 * @file
 * §5.1 conjecture check (extension): "We believe that this is also
 * indicative for the potential to obtain performance improvements on
 * other highly predictable programs, like floating point code."
 *
 * Runs the two FP kernels (wave: near-perfectly predictable stencil;
 * nbody: regular FP with one cutoff branch per pair) across the main
 * machine categories. The expected shape is the vortex pattern: small
 * but non-negative SEE gains, with no downside on predictable code.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"

using namespace polypath;

int
main()
{
    WorkloadParams params;
    params.scale = benchScale();

    std::printf("FP extension: SEE on predictable floating-point code "
                "(§5.1 conjecture)\n\n");
    std::printf("%-8s %12s %9s %10s %10s %10s %10s %8s\n", "kernel",
                "instrs", "mispred%", "monopath", "SEE(JRS)",
                "adaptive", "SEE(orc)", "oracle");

    for (const WorkloadInfo &info : fpWorkloadRegistry()) {
        Program program = info.build(params);
        InterpResult golden = runGolden(program);
        SimResult mono =
            simulate(program, SimConfig::monopath(), golden);
        SimResult see = simulate(program, SimConfig::seeJrs(), golden);
        SimResult adaptive =
            simulate(program, SimConfig::seeAdaptiveJrs(), golden);
        SimResult see_orc =
            simulate(program, SimConfig::seeOracleConfidence(), golden);
        SimResult oracle =
            simulate(program, SimConfig::oraclePrediction(), golden);
        std::printf("%-8s %12llu %9.2f %10.3f %10.3f %10.3f %10.3f "
                    "%8.3f\n",
                    info.name.c_str(),
                    static_cast<unsigned long long>(golden.instructions),
                    100 * mono.stats.mispredictRate(), mono.ipc(),
                    see.ipc(), adaptive.ipc(), see_orc.ipc(),
                    oracle.ipc());
        std::printf("%-8s %33s %+9.1f%% %+9.1f%% %+9.1f%% %+7.1f%%\n",
                    "", "", percentChange(mono.ipc(), see.ipc()),
                    percentChange(mono.ipc(), adaptive.ipc()),
                    percentChange(mono.ipc(), see_orc.ipc()),
                    percentChange(mono.ipc(), oracle.ipc()));
    }
    std::printf(
        "\nFindings: with perfect confidence SEE never hurts "
        "predictable FP code and\nhelps wherever residual "
        "mispredictions exist (the paper's conjecture). The raw\nJRS "
        "estimator can lose a little here — exactly the low-PVN "
        "failure mode §5.1\ndescribes for m88ksim — and the adaptive "
        "estimator (the paper's proposed fix)\nrecovers nearly all of "
        "the loss.\n");
    return 0;
}
