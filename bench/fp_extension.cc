/**
 * @file
 * §5.1 conjecture check (extension): "We believe that this is also
 * indicative for the potential to obtain performance improvements on
 * other highly predictable programs, like floating point code."
 *
 * Runs the two FP kernels (wave: near-perfectly predictable stencil;
 * nbody: regular FP with one cutoff branch per pair) across the main
 * machine categories. The expected shape is the vortex pattern: small
 * but non-negative SEE gains, with no downside on predictable code.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"
#include "figures.hh"

using namespace polypath;

namespace polypath::benchfig
{

void
runFpExtension()
{
    WorkloadSet suite =
        loadWorkloadSet(fpWorkloadRegistry(), benchScale());
    auto matrix = runMatrix(
        suite, {SimConfig::monopath(), SimConfig::seeJrs(),
                SimConfig::seeAdaptiveJrs(),
                SimConfig::seeOracleConfidence(),
                SimConfig::oraclePrediction()});

    std::printf("FP extension: SEE on predictable floating-point code "
                "(§5.1 conjecture)\n\n");
    std::printf("%-8s %12s %9s %10s %10s %10s %10s %8s\n", "kernel",
                "instrs", "mispred%", "monopath", "SEE(JRS)",
                "adaptive", "SEE(orc)", "oracle");

    for (size_t w = 0; w < suite.size(); ++w) {
        const SimResult &mono = matrix[0][w];
        const SimResult &see = matrix[1][w];
        const SimResult &adaptive = matrix[2][w];
        const SimResult &see_orc = matrix[3][w];
        const SimResult &oracle = matrix[4][w];
        std::printf("%-8s %12llu %9.2f %10.3f %10.3f %10.3f %10.3f "
                    "%8.3f\n",
                    suite.infos[w].name.c_str(),
                    static_cast<unsigned long long>(
                        suite.goldens[w].instructions),
                    100 * mono.stats.mispredictRate(), mono.ipc(),
                    see.ipc(), adaptive.ipc(), see_orc.ipc(),
                    oracle.ipc());
        std::printf("%-8s %33s %+9.1f%% %+9.1f%% %+9.1f%% %+7.1f%%\n",
                    "", "", percentChange(mono.ipc(), see.ipc()),
                    percentChange(mono.ipc(), adaptive.ipc()),
                    percentChange(mono.ipc(), see_orc.ipc()),
                    percentChange(mono.ipc(), oracle.ipc()));
    }
    std::printf(
        "\nFindings: with perfect confidence SEE never hurts "
        "predictable FP code and\nhelps wherever residual "
        "mispredictions exist (the paper's conjecture). The raw\nJRS "
        "estimator can lose a little here — exactly the low-PVN "
        "failure mode §5.1\ndescribes for m88ksim — and the adaptive "
        "estimator (the paper's proposed fix)\nrecovers nearly all of "
        "the loss.\n");
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runFpExtension();
    return 0;
}
#endif
