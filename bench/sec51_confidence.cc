/**
 * @file
 * Regenerates the §5.1 detail statistics:
 *   - monopath fetched/committed ratio (paper: 1.86x on average, i.e.
 *     46% of fetch cycles wasted);
 *   - JRS PVN per benchmark (paper: ~16% on m88ksim, >40% elsewhere);
 *   - SEE's effect on useless (never-committing) fetched instructions
 *     (paper: -15% on average, +29% on m88ksim).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"
#include "figures.hh"

using namespace polypath;

namespace polypath::benchfig
{

void
runSec51()
{
    WorkloadSet suite = loadWorkloads(benchScale());
    auto matrix =
        runMatrix(suite, {SimConfig::monopath(), SimConfig::seeJrs()});
    const std::vector<SimResult> &mono = matrix[0];
    const std::vector<SimResult> &see = matrix[1];

    std::printf("Section 5.1 statistics\n\n");
    std::printf("%-10s %12s %10s %10s %14s %14s\n", "benchmark",
                "fetch/commit", "PVN %", "diverge%",
                "useless(mono)", "useless(SEE)");

    std::vector<double> ratios, pvns, useless_delta;
    for (size_t w = 0; w < suite.size(); ++w) {
        const SimStats &m = mono[w].stats;
        const SimStats &s = see[w].stats;
        double diverge_pct =
            s.committedBranches
                ? 100.0 * static_cast<double>(s.lowConfidenceBranches) /
                      static_cast<double>(s.committedBranches)
                : 0.0;
        ratios.push_back(m.fetchToCommitRatio());
        pvns.push_back(100 * s.pvn());
        double delta = percentChange(
            static_cast<double>(m.uselessInstrs()),
            static_cast<double>(s.uselessInstrs()));
        useless_delta.push_back(delta);
        std::printf("%-10s %12.2f %10.1f %10.1f %14llu %14llu\n",
                    suite.infos[w].name.c_str(), m.fetchToCommitRatio(),
                    100 * s.pvn(), diverge_pct,
                    static_cast<unsigned long long>(m.uselessInstrs()),
                    static_cast<unsigned long long>(s.uselessInstrs()));
    }

    std::printf("\nmean monopath fetch/commit ratio: %.2f "
                "(paper: 1.86)\n",
                arithmeticMean(ratios));
    std::printf("mean JRS PVN: %.1f%% (paper: >40%% for all but "
                "m88ksim at 16%%)\n",
                arithmeticMean(pvns));
    std::printf("\nuseless-instruction change, SEE vs monopath "
                "(paper: -15%% avg, +29%% m88ksim):\n");
    for (size_t w = 0; w < suite.size(); ++w)
        std::printf("  %-10s %+7.1f%%\n", suite.infos[w].name.c_str(),
                    useless_delta[w]);
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runSec51();
    return 0;
}
#endif
