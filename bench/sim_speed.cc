/**
 * @file
 * Simulator-throughput benchmark: how many *simulated* committed
 * instructions the timing core retires per host second (KIPS).
 *
 * This measures the simulator itself, not the simulated machine — the
 * number the pooled-DynInst / lazy-squash work moves. Every workload in
 * the suite is run under the paper's main configuration (gshare/JRS
 * SEE); each run is repeated and the fastest repetition is kept, since
 * host-side noise only ever slows a run down. Workloads are timed
 * sequentially so runs never compete for cores.
 *
 * Output:
 *   bench_results/sim_speed.txt   human-readable table (appended dirs ok)
 *   BENCH_sim_speed.json          machine-readable, one workload per
 *                                 line (consumed by run_sim_speed.sh)
 *
 * Environment:
 *   PP_BENCH_SCALE   workload scale factor (default 1.0)
 *   PP_BENCH_REPS    repetitions per workload (default 2, min 1)
 *   PP_GIT_COMMIT    commit hash recorded in the JSON host block
 *                    (wrapper scripts export it; "unknown" otherwise)
 *
 * `sim_speed --profile` additionally turns on pp_prof and prints the
 * suite-aggregated per-stage host-time breakdown after the KIPS table
 * (the timing of the profiled runs is NOT comparable to default runs:
 * collection adds clock reads to every phase).
 *
 * NOTE: this file deliberately uses only long-stable APIs (loadWorkloads,
 * simulate) so it can be dropped into an older checkout unchanged to
 * produce baseline numbers with an identical harness.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/prof.hh"

// Build provenance, normally injected by bench/CMakeLists.txt.
#ifndef PP_BUILD_TYPE
#define PP_BUILD_TYPE ""
#endif
#ifndef PP_BUILD_FLAGS
#define PP_BUILD_FLAGS ""
#endif

using namespace polypath;

namespace
{

/** First "model name" line of /proc/cpuinfo, or "unknown". */
std::string
hostCpuModel()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        size_t colon = line.find(':');
        if (line.rfind("model name", 0) == 0 &&
            colon != std::string::npos) {
            size_t start = line.find_first_not_of(" \t", colon + 1);
            if (start != std::string::npos)
                return line.substr(start);
        }
    }
    return "unknown";
}

/** Commit hash for the JSON host block: PP_GIT_COMMIT if exported by
 *  the wrapper script, else a direct `git rev-parse` attempt. */
std::string
gitCommit()
{
    if (const char *env = std::getenv("PP_GIT_COMMIT");
        env && env[0] != '\0') {
        return env;
    }
    std::string commit = "unknown";
    if (FILE *pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null",
                           "r")) {
        char buf[64] = {};
        if (std::fgets(buf, sizeof(buf), pipe)) {
            buf[std::strcspn(buf, "\r\n")] = '\0';
            if (buf[0] != '\0')
                commit = buf;
        }
        pclose(pipe);
    }
    return commit;
}

/** Current UTC date-time, ISO 8601. */
std::string
utcDate()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

struct SpeedRow
{
    std::string workload;
    u64 committed = 0;
    u64 cycles = 0;
    double seconds = 0;     //!< best (fastest) repetition

    double kips() const { return committed / seconds / 1e3; }
};

unsigned
benchReps()
{
    const char *env = std::getenv("PP_BENCH_REPS");
    if (!env)
        return 2;
    long reps = std::atol(env);
    return reps > 0 ? static_cast<unsigned>(reps) : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool profile = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--profile") == 0) {
            profile = true;
        } else {
            std::fprintf(stderr, "usage: sim_speed [--profile]\n");
            return 1;
        }
    }
    if (profile)
        prof::setEnabled(true);
    if (prof::enabled())
        prof::reset();

    double scale = benchScale(1.0);
    unsigned reps = benchReps();
    SimConfig cfg = SimConfig::seeJrs();

    std::printf("sim_speed: simulator throughput, config %s, scale %g, "
                "%u rep(s)%s\n\n",
                cfg.categoryName().c_str(), scale, reps,
                prof::enabled() ? ", pp_prof ON (timings not "
                                  "baseline-comparable)"
                                : "");

    WorkloadSet suite = loadWorkloads(scale);

    u64 total_sim_ns = 0;
    std::vector<SpeedRow> rows;
    for (size_t w = 0; w < suite.size(); ++w) {
        SpeedRow row;
        row.workload = suite.infos[w].name;
        for (unsigned rep = 0; rep < reps; ++rep) {
            auto start = std::chrono::steady_clock::now();
            SimResult r =
                simulate(suite.programs[w], cfg, suite.goldens[w]);
            auto stop = std::chrono::steady_clock::now();
            double secs =
                std::chrono::duration<double>(stop - start).count();
            total_sim_ns += static_cast<u64>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    stop - start)
                    .count());
            fatal_if(!r.verified, "%s failed verification",
                     row.workload.c_str());
            row.committed = r.stats.committedInstrs;
            row.cycles = r.stats.cycles;
            if (rep == 0 || secs < row.seconds)
                row.seconds = secs;
        }
        std::printf("  %-10s %9llu instrs  %8.3f s  %8.1f KIPS\n",
                    row.workload.c_str(),
                    static_cast<unsigned long long>(row.committed),
                    row.seconds, row.kips());
        std::fflush(stdout);
        rows.push_back(row);
    }

    // Harmonic mean of per-workload KIPS (the suite-level figure of
    // merit: total work over total time if every workload committed the
    // same instruction count).
    double inv_sum = 0;
    for (const SpeedRow &row : rows)
        inv_sum += 1.0 / row.kips();
    double hmean = rows.size() / inv_sum;
    std::printf("\nharmonic mean: %.1f KIPS\n", hmean);

    if (prof::enabled()) {
        // Aggregated over every repetition of every workload; "total"
        // is the summed simulate() wall time, so rows + other = total.
        std::printf("\n%s", prof::report(total_sim_ns).c_str());
    }

    // --- human-readable report ----------------------------------------
    std::filesystem::create_directories("bench_results");
    FILE *txt = std::fopen("bench_results/sim_speed.txt", "w");
    fatal_if(!txt, "cannot write bench_results/sim_speed.txt");
    std::fprintf(txt,
                 "sim_speed: simulator throughput\n"
                 "config %s, scale %g, %u rep(s), best-of timing\n\n"
                 "%-10s %12s %12s %10s %10s\n",
                 cfg.categoryName().c_str(), scale, reps, "workload",
                 "committed", "cycles", "seconds", "KIPS");
    for (const SpeedRow &row : rows) {
        std::fprintf(txt, "%-10s %12llu %12llu %10.3f %10.1f\n",
                     row.workload.c_str(),
                     static_cast<unsigned long long>(row.committed),
                     static_cast<unsigned long long>(row.cycles),
                     row.seconds, row.kips());
    }
    std::fprintf(txt, "\nharmonic mean %.1f KIPS\n", hmean);
    std::fclose(txt);

    // --- machine-readable report (one workload object per line so the
    // comparison script can parse it with awk) -------------------------
    FILE *json = std::fopen("BENCH_sim_speed.json", "w");
    fatal_if(!json, "cannot write BENCH_sim_speed.json");
    std::fprintf(json,
                 "{\"bench\": \"sim_speed\", \"config\": \"%s\", "
                 "\"scale\": %g, \"reps\": %u,\n"
                 " \"host\": {\"cpu\": \"%s\", \"cores\": %u, "
                 "\"compiler\": \"%s\", \"build_type\": \"%s\", "
                 "\"flags\": \"%s\", \"commit\": \"%s\", "
                 "\"date_utc\": \"%s\", \"scale\": %g},\n"
                 " \"workloads\": [\n",
                 cfg.categoryName().c_str(), scale, reps,
                 hostCpuModel().c_str(),
                 std::thread::hardware_concurrency(),
#if defined(__clang__)
                 "clang " __VERSION__,
#elif defined(__GNUC__)
                 "gcc " __VERSION__,
#else
                 "unknown",
#endif
                 PP_BUILD_TYPE, PP_BUILD_FLAGS, gitCommit().c_str(),
                 utcDate().c_str(), scale);
    for (size_t i = 0; i < rows.size(); ++i) {
        const SpeedRow &row = rows[i];
        std::fprintf(json,
                     "  {\"workload\": \"%s\", \"committed\": %llu, "
                     "\"cycles\": %llu, \"seconds\": %.6f, "
                     "\"kips\": %.3f}%s\n",
                     row.workload.c_str(),
                     static_cast<unsigned long long>(row.committed),
                     static_cast<unsigned long long>(row.cycles),
                     row.seconds, row.kips(),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, " ],\n \"harmonic_mean_kips\": %.3f}\n", hmean);
    std::fclose(json);

    std::printf("wrote bench_results/sim_speed.txt and "
                "BENCH_sim_speed.json\n");
    return 0;
}
