#include "figures.hh"

namespace polypath::benchfig
{

const std::vector<FigureBench> &
figureRegistry()
{
    static const std::vector<FigureBench> registry = {
        {"table1_benchmarks",
         "Table 1: benchmark characteristics", runTable1},
        {"fig8_baseline",
         "Figure 8: baseline IPC of all machine categories", runFig8},
        {"sec51_confidence",
         "Section 5.1: confidence estimation statistics", runSec51},
        {"sec52_dualpath",
         "Section 5.2: path utilisation and dual-path fraction",
         runSec52},
        {"fig9_predictor_size",
         "Figure 9: IPC vs branch predictor size", runFig9},
        {"fig10_window_size",
         "Figure 10: IPC vs instruction window size", runFig10},
        {"fig11_fu_config",
         "Figure 11: IPC vs functional-unit count", runFig11},
        {"fig12_pipeline_depth",
         "Figure 12: IPC vs pipeline depth", runFig12},
        {"ablations",
         "Ablations: design choices the paper calls out", runAblations},
        {"fp_extension",
         "FP extension: SEE on predictable floating-point code",
         runFpExtension},
    };
    return registry;
}

const FigureBench *
findFigure(const std::string &name)
{
    const FigureBench *match = nullptr;
    for (const FigureBench &fig : figureRegistry()) {
        if (fig.name == name)
            return &fig;
        if (fig.name.rfind(name, 0) == 0) {
            if (match)
                return nullptr;     // ambiguous prefix
            match = &fig;
        }
    }
    return match;
}

} // namespace polypath::benchfig
