#include "bench_util.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "common/stats_util.hh"

namespace polypath
{

namespace
{

ResultCache *resultCache = nullptr;

} // anonymous namespace

void
setResultCache(ResultCache *cache)
{
    resultCache = cache;
}

ResultCache *
activeResultCache()
{
    return resultCache;
}

double
benchScale(double dflt)
{
    const char *env = std::getenv("PP_BENCH_SCALE");
    if (!env)
        return dflt;
    double scale = std::atof(env);
    return scale > 0 ? scale : dflt;
}

WorkloadSet
loadWorkloadSet(const std::vector<WorkloadInfo> &registry, double scale)
{
    WorkloadSet suite;
    WorkloadParams params;
    params.scale = scale;
    for (const WorkloadInfo &info : registry) {
        suite.infos.push_back(info);
        suite.programs.push_back(info.build(params));
    }
    // Golden runs in parallel (they are independent).
    suite.goldens.resize(suite.programs.size());
    std::vector<std::thread> threads;
    std::atomic<size_t> next{0};
    unsigned workers = std::max(2u, std::thread::hardware_concurrency());
    for (unsigned t = 0; t < workers; ++t) {
        threads.emplace_back([&] {
            while (true) {
                size_t i = next.fetch_add(1);
                if (i >= suite.programs.size())
                    break;
                suite.goldens[i] = runGolden(suite.programs[i]);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    return suite;
}

WorkloadSet
loadWorkloads(double scale)
{
    return loadWorkloadSet(workloadRegistry(), scale);
}

std::vector<std::vector<SimResult>>
runMatrix(const WorkloadSet &suite, const std::vector<SimConfig> &configs)
{
    size_t nw = suite.size();
    std::vector<std::vector<SimResult>> matrix(
        configs.size(), std::vector<SimResult>(nw));

    // Cache pass: every (config, workload) point already on disk skips
    // simulation entirely; the rest are simulated below.
    struct Miss
    {
        size_t c, w;
        std::string key;
    };
    std::vector<Miss> misses;
    for (size_t c = 0; c < configs.size(); ++c) {
        for (size_t w = 0; w < nw; ++w) {
            std::string key;
            if (resultCache) {
                key = ResultCache::keyFor(suite.programs[w], configs[c]);
                if (auto hit = resultCache->lookup(key)) {
                    matrix[c][w] = std::move(*hit);
                    continue;
                }
            }
            misses.push_back({c, w, std::move(key)});
        }
    }

    // Longest job first, estimated by golden instruction count: the
    // pool drains big workloads while small ones backfill, instead of
    // idling behind a vortex-sized straggler dispatched last.
    std::stable_sort(misses.begin(), misses.end(),
                     [&](const Miss &a, const Miss &b) {
                         return suite.goldens[a.w].instructions >
                                suite.goldens[b.w].instructions;
                     });

    std::vector<std::function<SimResult()>> jobs;
    for (const Miss &miss : misses) {
        jobs.push_back([&suite, &configs, &miss] {
            return simulate(suite.programs[miss.w], configs[miss.c],
                            suite.goldens[miss.w]);
        });
    }
    std::vector<SimResult> flat = runParallel(jobs);
    for (size_t i = 0; i < misses.size(); ++i) {
        if (resultCache)
            resultCache->store(misses[i].key, flat[i]);
        matrix[misses[i].c][misses[i].w] = std::move(flat[i]);
    }
    return matrix;
}

double
meanIpc(const std::vector<SimResult> &row)
{
    std::vector<double> ipcs;
    for (const SimResult &r : row)
        ipcs.push_back(r.ipc());
    return harmonicMean(ipcs);
}

void
printIpcTable(const WorkloadSet &suite,
              const std::vector<std::string> &category_names,
              const std::vector<std::vector<SimResult>> &matrix)
{
    std::printf("%-10s", "benchmark");
    for (const std::string &name : category_names)
        std::printf(" %22s", name.c_str());
    std::printf("\n");
    for (size_t w = 0; w < suite.size(); ++w) {
        std::printf("%-10s", suite.infos[w].name.c_str());
        for (size_t c = 0; c < matrix.size(); ++c)
            std::printf(" %22.3f", matrix[c][w].ipc());
        std::printf("\n");
    }
    std::printf("%-10s", "h-mean");
    for (size_t c = 0; c < matrix.size(); ++c)
        std::printf(" %22.3f", meanIpc(matrix[c]));
    std::printf("\n");
}

} // namespace polypath
