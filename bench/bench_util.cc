#include "bench_util.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "common/stats_util.hh"

namespace polypath
{

double
benchScale(double dflt)
{
    const char *env = std::getenv("PP_BENCH_SCALE");
    if (!env)
        return dflt;
    double scale = std::atof(env);
    return scale > 0 ? scale : dflt;
}

WorkloadSet
loadWorkloads(double scale)
{
    WorkloadSet suite;
    WorkloadParams params;
    params.scale = scale;
    for (const WorkloadInfo &info : workloadRegistry()) {
        suite.infos.push_back(info);
        suite.programs.push_back(info.build(params));
    }
    // Golden runs in parallel (they are independent).
    suite.goldens.resize(suite.programs.size());
    std::vector<std::thread> threads;
    std::atomic<size_t> next{0};
    unsigned workers = std::max(2u, std::thread::hardware_concurrency());
    for (unsigned t = 0; t < workers; ++t) {
        threads.emplace_back([&] {
            while (true) {
                size_t i = next.fetch_add(1);
                if (i >= suite.programs.size())
                    break;
                suite.goldens[i] = runGolden(suite.programs[i]);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    return suite;
}

std::vector<std::vector<SimResult>>
runMatrix(const WorkloadSet &suite, const std::vector<SimConfig> &configs)
{
    std::vector<std::function<SimResult()>> jobs;
    for (const SimConfig &cfg : configs) {
        for (size_t w = 0; w < suite.size(); ++w) {
            jobs.push_back([&suite, cfg, w] {
                return simulate(suite.programs[w], cfg,
                                suite.goldens[w]);
            });
        }
    }
    std::vector<SimResult> flat = runParallel(jobs);
    std::vector<std::vector<SimResult>> matrix;
    size_t idx = 0;
    for (size_t c = 0; c < configs.size(); ++c) {
        std::vector<SimResult> row;
        for (size_t w = 0; w < suite.size(); ++w)
            row.push_back(flat[idx++]);
        matrix.push_back(std::move(row));
    }
    return matrix;
}

double
meanIpc(const std::vector<SimResult> &row)
{
    std::vector<double> ipcs;
    for (const SimResult &r : row)
        ipcs.push_back(r.ipc());
    return harmonicMean(ipcs);
}

void
printIpcTable(const WorkloadSet &suite,
              const std::vector<std::string> &category_names,
              const std::vector<std::vector<SimResult>> &matrix)
{
    std::printf("%-10s", "benchmark");
    for (const std::string &name : category_names)
        std::printf(" %22s", name.c_str());
    std::printf("\n");
    for (size_t w = 0; w < suite.size(); ++w) {
        std::printf("%-10s", suite.infos[w].name.c_str());
        for (size_t c = 0; c < matrix.size(); ++c)
            std::printf(" %22.3f", matrix[c][w].ipc());
        std::printf("\n");
    }
    std::printf("%-10s", "h-mean");
    for (size_t c = 0; c < matrix.size(); ++c)
        std::printf(" %22.3f", meanIpc(matrix[c]));
    std::printf("\n");
}

} // namespace polypath
