/**
 * @file
 * Regenerates Figure 9: harmonic-mean IPC as a function of branch
 * predictor size (1k..64k two-bit counters, i.e. 10..16 history bits)
 * for monopath, SEE(JRS), SEE(oracle confidence) and oracle prediction.
 * The x-axis is total predictor state in bytes (equal-area: the SEE
 * configurations add the JRS counter table).
 *
 * Paper reference: SEE holds a roughly constant ~0.5 IPC absolute gain
 * across the whole range (15% -> 10% relative), and monopath needs
 * ~5.3x the state to match SEE along an iso-performance line.
 */

#include <cstdio>

#include "bench_util.hh"
#include "bpred/confidence.hh"
#include "bpred/gshare.hh"
#include "figures.hh"

using namespace polypath;

namespace polypath::benchfig
{

void
runFig9()
{
    WorkloadSet suite = loadWorkloads(benchScale());

    const unsigned history_bits[] = {10, 11, 12, 13, 14, 15, 16};
    struct Category
    {
        const char *name;
        SimConfig base;
        bool addsConfidence;
    };
    const Category categories[] = {
        {"gshare/monopath", SimConfig::monopath(), false},
        {"gshare/JRS", SimConfig::seeJrs(), true},
        {"gshare/oracle", SimConfig::seeOracleConfidence(), false},
        {"oracle", SimConfig::oraclePrediction(), false},
    };

    std::printf("Figure 9: IPC vs branch predictor size "
                "(h-mean over all benchmarks)\n\n");
    std::printf("%-18s %10s %12s %12s %10s\n", "category", "hist bits",
                "counters", "state bytes", "IPC");

    for (const Category &cat : categories) {
        std::vector<SimConfig> configs;
        for (unsigned bits : history_bits) {
            SimConfig cfg = cat.base;
            cfg.historyBits = bits;
            configs.push_back(cfg);
        }
        auto matrix = runMatrix(suite, configs);
        for (size_t i = 0; i < configs.size(); ++i) {
            unsigned bits = history_bits[i];
            size_t state = GsharePredictor(bits).stateBytes();
            if (cat.addsConfidence)
                state += JrsConfidence(bits, 1, 1).stateBytes();
            std::printf("%-18s %10u %12u %12zu %10.3f\n", cat.name,
                        bits, 1u << bits, state, meanIpc(matrix[i]));
        }
        std::printf("\n");
    }
    std::printf("(plot IPC against 'state bytes' to recover the "
                "figure's equal-area x-axis)\n");
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runFig9();
    return 0;
}
#endif
