/**
 * @file
 * Shared harness for the experiment benches: loads the workload suite,
 * runs configuration matrices on a small worker pool, and prints the
 * per-benchmark / mean tables the paper's figures plot.
 *
 * Environment:
 *   PP_BENCH_SCALE   work multiplier for every benchmark (default 1.0;
 *                    use e.g. 0.1 for a quick smoke run)
 */

#ifndef POLYPATH_BENCH_BENCH_UTIL_HH
#define POLYPATH_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "sim/machine.hh"
#include "sim/result_cache.hh"
#include "workloads/workloads.hh"

namespace polypath
{

/** The eight benchmarks with their golden reference runs. */
struct WorkloadSet
{
    std::vector<WorkloadInfo> infos;
    std::vector<Program> programs;
    std::vector<InterpResult> goldens;

    size_t size() const { return programs.size(); }
};

/** Scale factor from PP_BENCH_SCALE (default @p dflt). */
double benchScale(double dflt = 1.0);

/** Build all eight workloads (golden runs execute in parallel). */
WorkloadSet loadWorkloads(double scale);

/** Same, for an arbitrary registry (e.g. fpWorkloadRegistry()). */
WorkloadSet loadWorkloadSet(const std::vector<WorkloadInfo> &registry,
                            double scale);

/**
 * Install a result cache consulted by every subsequent runMatrix call
 * (nullptr = no caching, the default). The cache must outlive its use;
 * ppbench owns one across all figures of a run.
 */
void setResultCache(ResultCache *cache);

/** The cache installed via setResultCache, or nullptr. */
ResultCache *activeResultCache();

/**
 * Run every (config, workload) pair on the worker pool. Pairs whose
 * result is in the active result cache are not simulated; the rest are
 * dispatched longest-job-first (by golden instruction count) so one
 * big workload does not serialise the tail of the pool, then stored
 * back into the cache.
 * @return results[config][workload]
 */
std::vector<std::vector<SimResult>>
runMatrix(const WorkloadSet &suite, const std::vector<SimConfig> &configs);

/** Harmonic-mean IPC across one config's results. */
double meanIpc(const std::vector<SimResult> &row);

/**
 * Print the classic figure table: one row per benchmark plus the
 * harmonic-mean row, one column per category.
 */
void printIpcTable(const WorkloadSet &suite,
                   const std::vector<std::string> &category_names,
                   const std::vector<std::vector<SimResult>> &matrix);

} // namespace polypath

#endif // POLYPATH_BENCH_BENCH_UTIL_HH
