/**
 * @file
 * google-benchmark microbenchmarks for the PolyPath building blocks:
 * the CTX hierarchy comparator, history allocation churn, predictor and
 * confidence table accesses, RegMap checkpointing, store-queue load
 * resolution, and the full core's cycles/second.
 */

#include <benchmark/benchmark.h>

#include "asmkit/assembler.hh"
#include "bpred/confidence.hh"
#include "bpred/gshare.hh"
#include "ctx/hist_alloc.hh"
#include "memsys/store_queue.hh"
#include "rename/regmap.hh"
#include "sim/machine.hh"

namespace polypath
{
namespace
{

void
BM_CtxTagComparator(benchmark::State &state)
{
    CtxTag ancestor;
    ancestor.setPosition(3, true);
    ancestor.setPosition(9, false);
    CtxTag descendant = ancestor.child(12, true).child(1, false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ancestor.isAncestorOrSelf(descendant));
        benchmark::DoNotOptimize(descendant.onWrongSide(12, false));
    }
}
BENCHMARK(BM_CtxTagComparator);

void
BM_HistAllocChurn(benchmark::State &state)
{
    HistAlloc alloc(16);
    for (auto _ : state) {
        u8 a = alloc.alloc();
        u8 b = alloc.alloc();
        alloc.release(a);
        alloc.release(b);
    }
}
BENCHMARK(BM_HistAllocChurn);

void
BM_GsharePredictUpdate(benchmark::State &state)
{
    GsharePredictor pred(static_cast<unsigned>(state.range(0)));
    PredictionQuery q;
    u64 pc = 0x1000;
    for (auto _ : state) {
        q.pc = pc;
        q.ghr = pc * 31;
        bool taken = pred.predict(q);
        pred.update(q.pc, q.ghr, !taken);
        pc += 4;
    }
}
BENCHMARK(BM_GsharePredictUpdate)->Arg(10)->Arg(14)->Arg(16);

void
BM_JrsEstimate(benchmark::State &state)
{
    JrsConfidence conf(14, 1, 1, true);
    PredictionQuery q;
    u64 pc = 0x1000;
    for (auto _ : state) {
        q.pc = pc;
        q.ghr = pc * 17;
        benchmark::DoNotOptimize(conf.estimate(q, true));
        conf.update(q.pc, q.ghr, true, (pc & 8) != 0);
        pc += 4;
    }
}
BENCHMARK(BM_JrsEstimate);

void
BM_RegMapCheckpoint(benchmark::State &state)
{
    RegMap map;
    for (LogReg r = 0; r < 30; ++r)
        map.rename(r, static_cast<PhysReg>(r + 10));
    for (auto _ : state) {
        RegMap checkpoint = map;    // the per-branch checkpoint copy
        benchmark::DoNotOptimize(checkpoint.lookup(7));
    }
}
BENCHMARK(BM_RegMapCheckpoint);

void
BM_StoreQueueLoadQuery(benchmark::State &state)
{
    StoreQueue sq;
    SparseMemory mem;
    CtxTag tag;
    unsigned stores = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < stores; ++i) {
        sq.insert(i + 1, tag, 8);
        sq.setAddress(i + 1, 0x1000 + 8 * i);
        sq.setData(i + 1, i);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sq.queryLoad(stores + 5, tag, 0x1000, 8, mem));
    }
}
BENCHMARK(BM_StoreQueueLoadQuery)->Arg(4)->Arg(16)->Arg(64);

/**
 * The common case the O(1) fast path targets: a load that overlaps no
 * queued store and is blocked by nothing. range(0) = queue depth;
 * range(1) selects the indexed fast path (1) or the legacy walk (0).
 */
void
BM_StoreQueueLoadNoConflict(benchmark::State &state)
{
    StoreQueue sq;
    sq.setFastPathEnabled(state.range(1) != 0);
    SparseMemory mem;
    CtxTag tag;
    unsigned stores = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < stores; ++i) {
        sq.insert(i + 1, tag, 8);
        sq.setAddress(i + 1, 0x1000 + 8 * i);
        sq.setData(i + 1, i);
    }
    // Load far from every store: nothing forwards, nothing blocks.
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sq.queryLoad(stores + 5, tag, 0x90000, 8, mem));
    }
}
BENCHMARK(BM_StoreQueueLoadNoConflict)
    ->Args({0, 1})->Args({0, 0})
    ->Args({16, 1})->Args({16, 0})
    ->Args({64, 1})->Args({64, 0});

/** Deep-queue forwarding hit: the youngest of range(0) stores supplies
 *  the whole load (the walk's best case; the fast path must fall back
 *  without hurting it). */
void
BM_StoreQueueForwardHit(benchmark::State &state)
{
    StoreQueue sq;
    SparseMemory mem;
    CtxTag tag;
    unsigned stores = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < stores; ++i) {
        sq.insert(i + 1, tag, 8);
        sq.setAddress(i + 1, 0x1000 + 8 * (i % 4));
        sq.setData(i + 1, i);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sq.queryLoad(stores + 5, tag, 0x1000, 8, mem));
    }
}
BENCHMARK(BM_StoreQueueForwardHit)->Arg(4)->Arg(64);

/** Unknown-address stall check: one unpublished store forces MustWait.
 *  The unknownAddrCount summary must make the common no-unknowns case
 *  (other benches) cheap without slowing this one. */
void
BM_StoreQueueUnknownAddrStall(benchmark::State &state)
{
    StoreQueue sq;
    SparseMemory mem;
    CtxTag tag;
    unsigned stores = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < stores; ++i) {
        sq.insert(i + 1, tag, 8);
        if (i != 0) {   // the oldest store's address stays unknown
            sq.setAddress(i + 1, 0x1000 + 8 * i);
            sq.setData(i + 1, i);
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sq.queryLoad(stores + 5, tag, 0x90000, 8, mem));
    }
}
BENCHMARK(BM_StoreQueueUnknownAddrStall)->Arg(4)->Arg(64);

/**
 * Wakeup-list churn as the scheduler sees it: dependent instructions
 * enqueue on a producer's physical register and a completion wakes the
 * whole list. Exercises the intrusive tagged-pointer lists through the
 * real core (a tight dependence chain keeps every instruction waiting
 * on its predecessor).
 */
void
BM_WakeupChainedDeps(benchmark::State &state)
{
    Assembler a;
    a.li(1, 200000);
    Label loop = a.here();
    // Serial dependence chain: each op waits on the previous result.
    a.addi(1, -1, 1);
    a.add(2, 1, 2);
    a.add(3, 2, 3);
    a.add(2, 3, 2);
    a.bgt(1, loop);
    a.halt();
    Program p = a.assemble("wakeup_chain");
    InterpResult golden = runGolden(p);

    for (auto _ : state) {
        PolyPathCore core(SimConfig::seeJrs(), p, golden);
        u64 budget = 20000;
        while (!core.halted() && core.cycle() < budget)
            core.tick();
        state.counters["cycles"] = static_cast<double>(core.cycle());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_WakeupChainedDeps)->Unit(benchmark::kMillisecond);

/** Full-core throughput: simulated cycles per second on a small loop. */
void
BM_CoreCyclesPerSecond(benchmark::State &state)
{
    Assembler a;
    a.li(1, 1000000);
    a.li(2, 0);
    Label loop = a.here();
    a.add(2, 1, 2);
    a.xor_(2, 1, 3);
    a.addi(1, -1, 1);
    a.bgt(1, loop);
    a.halt();
    Program p = a.assemble("bench_loop");
    InterpResult golden = runGolden(p);

    for (auto _ : state) {
        PolyPathCore core(SimConfig::seeJrs(), p, golden);
        u64 budget = 20000;
        while (!core.halted() && core.cycle() < budget)
            core.tick();
        state.counters["cycles"] = static_cast<double>(core.cycle());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_CoreCyclesPerSecond)->Unit(benchmark::kMillisecond);

} // anonymous namespace
} // namespace polypath
