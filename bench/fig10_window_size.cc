/**
 * @file
 * Regenerates Figure 10: harmonic-mean IPC vs instruction window size
 * (64..1024 entries) for the four machine categories.
 *
 * Paper reference: oracle saturates above 256 entries, gshare-based
 * machines saturate near 128; SEE still beats monopath by ~9% at a
 * 64-entry window.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"
#include "figures.hh"

using namespace polypath;

namespace polypath::benchfig
{

void
runFig10()
{
    WorkloadSet suite = loadWorkloads(benchScale());

    const unsigned sizes[] = {64, 128, 256, 512, 1024};
    struct Category
    {
        const char *name;
        SimConfig base;
    };
    const Category categories[] = {
        {"gshare/monopath", SimConfig::monopath()},
        {"gshare/JRS", SimConfig::seeJrs()},
        {"gshare/oracle", SimConfig::seeOracleConfidence()},
        {"oracle", SimConfig::oraclePrediction()},
    };

    std::printf("Figure 10: IPC vs instruction window size "
                "(h-mean over all benchmarks)\n\n");
    std::printf("%-18s", "category");
    for (unsigned size : sizes)
        std::printf(" %9u", size);
    std::printf("\n");

    std::vector<double> mono_ipc, see_ipc;
    double occupancy_1024 = 0;
    for (const Category &cat : categories) {
        std::vector<SimConfig> configs;
        for (unsigned size : sizes) {
            SimConfig cfg = cat.base;
            cfg.windowSize = size;
            configs.push_back(cfg);
        }
        auto matrix = runMatrix(suite, configs);
        std::printf("%-18s", cat.name);
        for (size_t i = 0; i < configs.size(); ++i) {
            double ipc = meanIpc(matrix[i]);
            std::printf(" %9.3f", ipc);
            if (std::string(cat.name) == "gshare/monopath")
                mono_ipc.push_back(ipc);
            if (std::string(cat.name) == "gshare/JRS") {
                see_ipc.push_back(ipc);
                if (sizes[i] == 1024) {
                    // §5.3.2: with an effectively unbounded window, how
                    // much do gshare-based machines actually occupy?
                    std::vector<double> occ;
                    for (const SimResult &r : matrix[i])
                        occ.push_back(r.stats.avgWindowOccupancy());
                    occupancy_1024 = arithmeticMean(occ);
                }
            }
        }
        std::printf("\n");
    }
    std::printf("\navg window occupancy of SEE(JRS) at 1024 entries: "
                "%.0f instructions\n(paper: gshare-based usage "
                "saturates at ~145)\n",
                occupancy_1024);

    std::printf("\nSEE(JRS) improvement over monopath per window size "
                "(paper: ~9%% at 64 entries):\n");
    for (size_t i = 0; i < mono_ipc.size(); ++i)
        std::printf("  %4u entries: %+6.1f%%\n", sizes[i],
                    percentChange(mono_ipc[i], see_ipc[i]));
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runFig10();
    return 0;
}
#endif
