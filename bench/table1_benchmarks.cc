/**
 * @file
 * Regenerates Table 1: benchmark characteristics — dynamic instruction
 * count and gshare misprediction rate per benchmark on the baseline
 * (monopath) machine.
 *
 * Paper reference (SPECint95 on Alpha): instruction counts 113.8M-552.7M
 * (we run scaled-down synthetic equivalents, as the paper itself scaled
 * its inputs) and misprediction rates 1.85%..24.80%, average 7.17%.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"
#include "figures.hh"

using namespace polypath;

namespace polypath::benchfig
{

void
runTable1()
{
    WorkloadSet suite = loadWorkloads(benchScale());
    auto matrix = runMatrix(suite, {SimConfig::monopath()});
    const std::vector<SimResult> &runs = matrix[0];

    std::printf("Table 1: benchmark characteristics "
                "(baseline monopath, 14-bit gshare)\n\n");
    std::printf("%-10s %14s %14s %12s %12s\n", "benchmark",
                "instructions", "branches", "mispred %", "paper %");
    std::vector<double> rates;
    for (size_t w = 0; w < suite.size(); ++w) {
        const SimStats &s = runs[w].stats;
        rates.push_back(100 * s.mispredictRate());
        std::printf("%-10s %14llu %14llu %12.2f %12.2f\n",
                    suite.infos[w].name.c_str(),
                    static_cast<unsigned long long>(s.committedInstrs),
                    static_cast<unsigned long long>(s.committedBranches),
                    100 * s.mispredictRate(),
                    suite.infos[w].paperMispredictPct);
    }
    std::printf("%-10s %14s %14s %12.2f %12.2f\n", "average", "", "",
                arithmeticMean(rates), 7.17);
    std::printf("\n(The paper's absolute instruction counts are 114M-553M "
                "SPEC instructions;\nthis reproduction runs scaled-down "
                "synthetic equivalents — the misprediction\nspectrum is "
                "the property the experiments depend on.)\n");
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runTable1();
    return 0;
}
#endif
