/**
 * @file
 * Regenerates Figure 8: baseline performance of all six machine
 * categories on every benchmark, plus the harmonic mean —
 *   gshare/monopath, gshare/JRS (SEE), gshare/oracle (SEE w/ perfect
 *   confidence), oracle (perfect prediction), and the two dual-path
 *   restrictions of §5.2.
 *
 * Paper reference points: SEE(JRS) ~ +14% mean over monopath (+36% go,
 * -8.5% m88ksim); SEE(oracle) recovers ~half of the oracle-prediction
 * headroom (+48%); oracle ~ +94%.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"
#include "figures.hh"

using namespace polypath;

namespace polypath::benchfig
{

void
runFig8()
{
    WorkloadSet suite = loadWorkloads(benchScale());

    std::vector<SimConfig> configs = {
        SimConfig::monopath(),          SimConfig::seeJrs(),
        SimConfig::seeOracleConfidence(), SimConfig::oraclePrediction(),
        SimConfig::dualPathJrs(),
        SimConfig::dualPathOracleConfidence(),
    };
    std::vector<std::string> names;
    for (const SimConfig &cfg : configs)
        names.push_back(cfg.categoryName());

    auto matrix = runMatrix(suite, configs);

    std::printf("Figure 8: baseline performance (IPC)\n\n");
    printIpcTable(suite, names, matrix);

    // Headline speedups vs monopath.
    double mono = meanIpc(matrix[0]);
    std::printf("\nmean speedup over monopath:\n");
    for (size_t c = 1; c < configs.size(); ++c) {
        std::printf("  %-26s %+7.1f%%\n", names[c].c_str(),
                    percentChange(mono, meanIpc(matrix[c])));
    }

    std::printf("\nper-benchmark SEE(JRS) speedup over monopath "
                "(paper: go +36%%, m88ksim -8.5%%, mean +14%%):\n");
    for (size_t w = 0; w < suite.size(); ++w) {
        std::printf("  %-10s %+7.1f%%\n", suite.infos[w].name.c_str(),
                    percentChange(matrix[0][w].ipc(),
                                  matrix[1][w].ipc()));
    }

    // §5.2 dual-path fractions of the SEE improvement.
    double see_jrs = meanIpc(matrix[1]);
    double see_oracle = meanIpc(matrix[2]);
    double dual_jrs = meanIpc(matrix[4]);
    double dual_oracle = meanIpc(matrix[5]);
    auto fraction = [&](double dual, double see) {
        return see > mono ? 100.0 * (dual - mono) / (see - mono) : 0.0;
    };
    std::printf("\ndual-path fraction of SEE improvement "
                "(paper: oracle 58%%, JRS 66%%):\n");
    std::printf("  oracle confidence: %5.1f%%\n",
                fraction(dual_oracle, see_oracle));
    std::printf("  JRS confidence:    %5.1f%%\n",
                fraction(dual_jrs, see_jrs));
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runFig8();
    return 0;
}
#endif
