/**
 * @file
 * Regenerates Figure 11: harmonic-mean IPC vs functional-unit count
 * (1..4 units of each type + memory ports, scaled uniformly as in the
 * paper) for the four machine categories, plus the FU-utilisation
 * observation of §5.3.3.
 *
 * Paper reference: SEE improves monopath by ~14% at >=3 FUs/type and
 * still ~6% at 1 FU/type, by harvesting spare FU capacity (IntType0
 * utilisation 81% -> 85% at 1 FU).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"
#include "figures.hh"

using namespace polypath;

namespace polypath::benchfig
{

void
runFig11()
{
    WorkloadSet suite = loadWorkloads(benchScale());

    const unsigned counts[] = {1, 2, 3, 4};
    struct Category
    {
        const char *name;
        SimConfig base;
    };
    const Category categories[] = {
        {"gshare/monopath", SimConfig::monopath()},
        {"gshare/JRS", SimConfig::seeJrs()},
        {"gshare/oracle", SimConfig::seeOracleConfidence()},
        {"oracle", SimConfig::oraclePrediction()},
    };

    auto with_units = [](SimConfig cfg, unsigned n) {
        cfg.numIntAlu0 = n;
        cfg.numIntAlu1 = n;
        cfg.numFpAdd = n;
        cfg.numFpMul = n;
        cfg.numMemPorts = n;
        return cfg;
    };

    std::printf("Figure 11: IPC vs functional units per type "
                "(h-mean over all benchmarks)\n\n");
    std::printf("%-18s", "category");
    for (unsigned n : counts)
        std::printf(" %9u", n);
    std::printf("\n");

    std::vector<double> mono_ipc, see_ipc;
    std::vector<std::vector<SimResult>> mono_runs, see_runs;
    for (const Category &cat : categories) {
        std::vector<SimConfig> configs;
        for (unsigned n : counts)
            configs.push_back(with_units(cat.base, n));
        auto matrix = runMatrix(suite, configs);
        std::printf("%-18s", cat.name);
        for (size_t i = 0; i < configs.size(); ++i) {
            double ipc = meanIpc(matrix[i]);
            std::printf(" %9.3f", ipc);
            if (std::string(cat.name) == "gshare/monopath") {
                mono_ipc.push_back(ipc);
                mono_runs.push_back(matrix[i]);
            }
            if (std::string(cat.name) == "gshare/JRS") {
                see_ipc.push_back(ipc);
                see_runs.push_back(matrix[i]);
            }
        }
        std::printf("\n");
    }

    std::printf("\nSEE(JRS) improvement over monopath per FU count "
                "(paper: 6%% at 1, ~14%% at >=3):\n");
    for (size_t i = 0; i < mono_ipc.size(); ++i)
        std::printf("  %u FU/type: %+6.1f%%\n", counts[i],
                    percentChange(mono_ipc[i], see_ipc[i]));

    // §5.3.3 utilisation observation at 1 FU/type.
    auto mean_util = [&](const std::vector<SimResult> &runs,
                         ExecClass cls, unsigned units) {
        std::vector<double> vals;
        for (const SimResult &r : runs)
            vals.push_back(100 * r.stats.fuUtilization(cls, units));
        return arithmeticMean(vals);
    };
    std::printf("\nFU utilisation at 1 FU/type "
                "(paper: IntType0 81%%->85%%, IntType1 75%%->80%%, "
                "Dcache 75%%->80%%):\n");
    std::printf("  %-10s %10s %10s\n", "class", "monopath", "SEE");
    std::printf("  %-10s %9.1f%% %9.1f%%\n", "IntType0",
                mean_util(mono_runs[0], ExecClass::IntAlu0, 1),
                mean_util(see_runs[0], ExecClass::IntAlu0, 1));
    std::printf("  %-10s %9.1f%% %9.1f%%\n", "IntType1",
                mean_util(mono_runs[0], ExecClass::IntAlu1, 1),
                mean_util(see_runs[0], ExecClass::IntAlu1, 1));
    std::printf("  %-10s %9.1f%% %9.1f%%\n", "Dcache",
                mean_util(mono_runs[0], ExecClass::Mem, 1),
                mean_util(see_runs[0], ExecClass::Mem, 1));
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runFig11();
    return 0;
}
#endif
