/**
 * @file
 * Registry of the paper-figure benches, callable in-process.
 *
 * Each figure source file defines one runX() entry point containing
 * what used to be its main(); the standalone per-figure binaries keep a
 * main() (compiled out with PP_BENCH_NO_MAIN when the sources are built
 * into the pp_figures library), and tools/ppbench runs any subset of
 * figures through this registry against one shared result cache.
 *
 * sim_speed is deliberately absent: it measures wall-clock simulator
 * throughput, which caching would falsify.
 */

#ifndef POLYPATH_BENCH_FIGURES_HH
#define POLYPATH_BENCH_FIGURES_HH

#include <string>
#include <vector>

namespace polypath::benchfig
{

void runTable1();
void runFig8();
void runSec51();
void runSec52();
void runFig9();
void runFig10();
void runFig11();
void runFig12();
void runAblations();
void runFpExtension();

/** One runnable paper artifact. */
struct FigureBench
{
    std::string name;           //!< matches the standalone binary name
    std::string description;
    void (*fn)();
};

/** All figures, in run_all_experiments.sh order. */
const std::vector<FigureBench> &figureRegistry();

/**
 * Find a figure by exact name or unique prefix ("fig8" matches
 * fig8_baseline). @return nullptr when unknown or ambiguous.
 */
const FigureBench *findFigure(const std::string &name);

} // namespace polypath::benchfig

#endif // POLYPATH_BENCH_FIGURES_HH
