/**
 * @file
 * Ablation benches for the design choices the paper calls out but does
 * not sweep:
 *   - CTX tag width (max in-flight branches / checkpoint budget);
 *   - fetch-bandwidth arbitration policy (§3.2.6 "future work");
 *   - JRS counter width and the enhanced confidence indexing (§4.2);
 *   - speculative vs committed global-history update (§4.2);
 *   - predictor training at resolution vs commit;
 *   - eager-always execution (confidence estimator ablated entirely).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats_util.hh"
#include "figures.hh"

using namespace polypath;

namespace
{

void
runSet(const WorkloadSet &suite, const char *title,
       const std::vector<std::pair<std::string, SimConfig>> &variants)
{
    std::printf("--- %s ---\n", title);
    std::vector<SimConfig> configs;
    for (const auto &[name, cfg] : variants)
        configs.push_back(cfg);
    auto matrix = runMatrix(suite, configs);
    for (size_t i = 0; i < variants.size(); ++i)
        std::printf("  %-34s h-mean IPC %.3f\n",
                    variants[i].first.c_str(), meanIpc(matrix[i]));
    std::printf("\n");
}

} // anonymous namespace

namespace polypath::benchfig
{

void
runAblations()
{
    WorkloadSet suite = loadWorkloads(benchScale(0.5));

    {
        std::vector<std::pair<std::string, SimConfig>> variants;
        for (unsigned width : {4u, 8u, 16u, 32u}) {
            SimConfig cfg = SimConfig::seeJrs();
            cfg.tagWidth = width;
            variants.emplace_back(
                "SEE, tag width " + std::to_string(width), cfg);
        }
        runSet(suite, "CTX tag width (max in-flight branches)",
               variants);
    }

    {
        std::vector<std::pair<std::string, SimConfig>> variants;
        const std::pair<FetchPolicy, const char *> policies[] = {
            {FetchPolicy::ExponentialPriority, "exponential priority"},
            {FetchPolicy::RoundRobin, "round robin"},
            {FetchPolicy::OldestFirst, "oldest first"},
            {FetchPolicy::PredictedFirst,
             "predicted-first (§3.2.7 future work)"},
        };
        for (const auto &[policy, name] : policies) {
            SimConfig cfg = SimConfig::seeJrs();
            cfg.fetchPolicy = policy;
            variants.emplace_back(std::string("SEE, ") + name, cfg);
        }
        runSet(suite, "fetch arbitration policy", variants);
    }

    {
        std::vector<std::pair<std::string, SimConfig>> variants;
        SimConfig jrs1 = SimConfig::seeJrs();
        variants.emplace_back("JRS 1-bit (paper's choice)", jrs1);
        SimConfig jrs2 = SimConfig::seeJrs();
        jrs2.jrsCounterBits = 2;
        jrs2.jrsThreshold = 3;
        variants.emplace_back("JRS 2-bit, threshold 3", jrs2);
        SimConfig jrs4 = SimConfig::seeJrs();
        jrs4.jrsCounterBits = 4;
        jrs4.jrsThreshold = 15;
        variants.emplace_back("JRS 4-bit, threshold 15", jrs4);
        SimConfig orig = SimConfig::seeJrs();
        orig.enhancedConfidenceIndex = false;
        variants.emplace_back("JRS 1-bit, original indexing", orig);
        runSet(suite, "confidence estimator variants (§4.2)", variants);
    }

    {
        std::vector<std::pair<std::string, SimConfig>> variants;
        SimConfig spec = SimConfig::monopath();
        variants.emplace_back("monopath, speculative history", spec);
        SimConfig nonspec = SimConfig::monopath();
        nonspec.speculativeHistoryUpdate = false;
        variants.emplace_back("monopath, committed history", nonspec);
        runSet(suite,
               "speculative global-history update "
               "(paper: ~1% prediction accuracy)",
               variants);
    }

    {
        std::vector<std::pair<std::string, SimConfig>> variants;
        SimConfig commit = SimConfig::seeJrs();
        variants.emplace_back("SEE, train at commit", commit);
        SimConfig resolve = SimConfig::seeJrs();
        resolve.trainAtResolution = true;
        variants.emplace_back("SEE, train at resolution", resolve);
        runSet(suite, "predictor training point", variants);
    }

    {
        // Predictor families (McFarling TN 36) under monopath and SEE:
        // does SEE's benefit survive a stronger baseline predictor?
        std::vector<std::pair<std::string, SimConfig>> variants;
        for (auto [kind, name] :
             {std::pair{PredictorKind::Bimodal, "bimodal"},
              std::pair{PredictorKind::Gshare, "gshare"},
              std::pair{PredictorKind::Combining, "combining"}}) {
            SimConfig mono = SimConfig::monopath();
            mono.predictor = kind;
            variants.emplace_back(std::string(name) + " / monopath",
                                  mono);
            SimConfig see = SimConfig::seeJrs();
            see.predictor = kind;
            variants.emplace_back(std::string(name) + " / SEE(JRS)",
                                  see);
        }
        runSet(suite, "predictor family (McFarling TN 36)", variants);
    }

    {
        std::vector<std::pair<std::string, SimConfig>> variants;
        variants.emplace_back("monopath", SimConfig::monopath());
        variants.emplace_back("SEE (JRS confidence)", SimConfig::seeJrs());
        SimConfig eager = SimConfig::seeJrs();
        eager.confidence = ConfidenceKind::AlwaysLow;
        variants.emplace_back("eager-always (no confidence)", eager);
        runSet(suite,
               "selectivity ablation: why SEE needs a confidence "
               "estimator",
               variants);
    }

    {
        // Beyond the paper: does SEE survive a non-perfect D-cache?
        // Eager paths both pollute the cache and prefetch for the
        // correct path; the net effect is the interesting number.
        std::vector<std::pair<std::string, SimConfig>> variants;
        for (bool see : {false, true}) {
            SimConfig cfg =
                see ? SimConfig::seeJrs() : SimConfig::monopath();
            std::string name = see ? "SEE(JRS)" : "monopath";
            variants.emplace_back(name + ", perfect D$", cfg);
            SimConfig miss = cfg;
            miss.dcache.perfect = false;
            miss.dcache.sizeBytes = 16384;
            miss.dcache.ways = 2;
            miss.dcache.missLatency = 20;
            variants.emplace_back(name + ", 16KB 2-way D$ (20cy miss)",
                                  miss);
        }
        runSet(suite, "D-cache model (extension; paper assumes perfect)",
               variants);
    }

    {
        // The §5.1 "lesson learned": an estimator that monitors its own
        // PVN and reverts to monopath should cap SEE's worst-case loss
        // on low-PVN benchmarks without hurting the winners. Report
        // per-benchmark results, since the interesting effect is the
        // minimum, not the mean.
        std::vector<SimConfig> configs = {SimConfig::monopath(),
                                          SimConfig::seeJrs(),
                                          SimConfig::seeAdaptiveJrs()};
        auto matrix = runMatrix(suite, configs);
        std::printf("--- adaptive confidence (the paper's §5.1 "
                    "future-work suggestion) ---\n");
        std::printf("  %-10s %12s %12s %16s\n", "benchmark", "SEE/JRS",
                    "SEE/adaptive", "(vs monopath)");
        for (size_t w = 0; w < suite.size(); ++w) {
            double mono = matrix[0][w].ipc();
            std::printf("  %-10s %11.3f %12.3f   %+6.1f%% -> %+6.1f%%\n",
                        suite.infos[w].name.c_str(), matrix[1][w].ipc(),
                        matrix[2][w].ipc(),
                        percentChange(mono, matrix[1][w].ipc()),
                        percentChange(mono, matrix[2][w].ipc()));
        }
        std::printf("  %-10s %11.3f %12.3f\n\n", "h-mean",
                    meanIpc(matrix[1]), meanIpc(matrix[2]));
    }
}

} // namespace polypath::benchfig

#ifndef PP_BENCH_NO_MAIN
int
main()
{
    polypath::benchfig::runAblations();
    return 0;
}
#endif
